//! GF(2^8) arithmetic and the Cauchy-matrix Reed–Solomon erasure code
//! behind v4 multi-erasure parity.
//!
//! The field is GF(2^8) with the AES-adjacent primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), realised as compile-time exp/log
//! tables. The code is **systematic MDS**: `k` data shards are protected by
//! `m` parity shards, where parity row `j` holds
//!
//! ```text
//!   parity_j[b] = Σ_i  c[j][i] · data_i[b]        (sum over GF(2^8))
//!   c[j][i]     = 1 / (x_j ⊕ y_i),   x_j = j,  y_i = m + i
//! ```
//!
//! i.e. the generator's parity block is a Cauchy matrix over the disjoint
//! index sets `{0..m}` and `{m..m+k}` (so `k + m ≤ 256`). Every square
//! submatrix of a Cauchy matrix is invertible, which makes the full
//! generator `[I; C]` MDS: *any* `k` surviving shards determine the data,
//! so up to `m` erasures per group are recoverable. With `m = 1` the
//! coefficients are *not* all ones — XOR parity (v3) is deliberately kept
//! as its own scheme so v3 bytes stay bit-identical.
//!
//! Everything operates on untrusted lengths and returns `Option`; rebuilt
//! shards must still be verified against footer CRCs by the caller.

/// Largest supported `k + m` (the two Cauchy index sets must be disjoint
/// subsets of GF(2^8)).
pub const MAX_SHARDS: usize = 256;

const GF_POLY: u16 = 0x11d;

/// exp table doubled so `exp[log a + log b]` never needs a modulo.
const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF_POLY;
        }
        i += 1;
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

static EXP: [u8; 512] = build_exp();
static LOG: [u8; 256] = build_log(&build_exp());

/// Product in GF(2^8).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse; `None` for 0.
#[inline]
pub fn inv(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(EXP[255 - LOG[a as usize] as usize])
    }
}

/// Split low/high-nibble multiplication tables of a fixed coefficient.
///
/// GF(2^8) multiplication distributes over XOR, and any byte splits as
/// `b = (b & 0x0f) ⊕ (b & 0xf0)`, so `c·b = lo[b & 0xf] ⊕ hi[b >> 4]`.
/// Two 16-entry tables replace the historical flat 256-entry table: setup
/// drops from 256 field multiplications per coefficient to 32, and the 32
/// working bytes stay resident in one cache line through the whole encode
/// loop instead of streaming 256 table bytes against the shard data. The
/// two tables are exactly the operand shape of the SSSE3/AVX2 `pshufb`
/// and NEON `vqtbl1q_u8` kernels every fast RS coder uses, so the bulk
/// entry points ([`MulTable::fma_into`]) hand them straight to
/// [`zmesh_kernels::gf256`], which dispatches to real SIMD at runtime
/// (scalar fallback under `ZMESH_FORCE_SCALAR=1` or on older CPUs) with
/// bit-identical results.
pub struct MulTable {
    lo: [u8; 16],
    hi: [u8; 16],
}

impl MulTable {
    /// Tables for multiplying by `c`.
    pub fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        let mut n = 0u8;
        while n < 16 {
            lo[n as usize] = mul(c, n);
            hi[n as usize] = mul(c, n << 4);
            n += 1;
        }
        Self { lo, hi }
    }

    /// `c · b` via two nibble lookups.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0f) as usize] ^ self.hi[(b >> 4) as usize]
    }

    /// XOR-accumulates `c · src[i]` into `acc[i]` over the overlap —
    /// the Reed–Solomon encode/recover/streaming-parity hot loop,
    /// SIMD-dispatched.
    #[inline]
    pub fn fma_into(&self, acc: &mut [u8], src: &[u8]) {
        zmesh_kernels::gf256::fma_into(&self.lo, &self.hi, acc, src);
    }
}

/// Cauchy coefficient `c[j][i]` tying parity shard `j` to data shard `i`
/// under `m` parity shards. `None` when the index sets would overlap
/// (`m + i ≥ 256`), which callers must rule out up front.
#[inline]
pub fn coefficient(j: usize, i: usize, m: usize) -> Option<u8> {
    let x = u8::try_from(j).ok()?;
    let y = u8::try_from(m.checked_add(i)?).ok()?;
    inv(x ^ y)
}

/// XOR-accumulates `c · src[i]` into `acc[..src.len()]`.
fn fma_into(acc: &mut [u8], src: &[u8], c: u8) {
    if c == 0 {
        return;
    }
    MulTable::new(c).fma_into(acc, src);
}

/// Encodes `m` parity shards over `members` (zero-padded to the longest
/// member). Returns `None` when `members.len() + m > 256` or `m == 0`.
pub fn rs_encode(members: &[&[u8]], m: usize) -> Option<Vec<Vec<u8>>> {
    if m == 0 || members.len().checked_add(m)? > MAX_SHARDS {
        return None;
    }
    let shard_len = members.iter().map(|p| p.len()).max().unwrap_or(0);
    let mut shards = vec![vec![0u8; shard_len]; m];
    for (j, shard) in shards.iter_mut().enumerate() {
        for (i, member) in members.iter().enumerate() {
            let c = coefficient(j, i, m)?;
            fma_into(shard, member, c);
        }
    }
    Some(shards)
}

/// Rebuilds the missing data shards of one group from the survivors.
///
/// `members[i]` is `Some(payload)` for an intact data shard, `None` for an
/// erased one; `parity[j]` likewise for the `m` parity shards. `lens[i]`
/// gives each member's true (footer-recorded) length; present members and
/// parity shards are zero-padded to the parity shard length as during
/// encode. Returns the rebuilt members as `(index, bytes)` pairs (bytes
/// truncated to `lens[index]`), or `None` when the erasures exceed the
/// surviving parity, lengths are inconsistent with the parity invariant,
/// or the configuration is out of range. Callers must CRC-verify every
/// rebuilt shard.
pub fn rs_recover(
    members: &[Option<&[u8]>],
    parity: &[Option<&[u8]>],
    lens: &[usize],
) -> Option<Vec<(usize, Vec<u8>)>> {
    let k = members.len();
    let m = parity.len();
    if m == 0 || k != lens.len() || k.checked_add(m)? > MAX_SHARDS {
        return None;
    }
    let missing: Vec<usize> = (0..k).filter(|&i| members[i].is_none()).collect();
    if missing.is_empty() {
        return Some(Vec::new());
    }
    let avail: Vec<usize> = (0..m).filter(|&j| parity[j].is_some()).collect();
    if missing.len() > avail.len() {
        return None;
    }
    // Shard length comes from the surviving parity shards, which the
    // writer sized to the longest member; everything must fit inside it.
    let shard_len = parity[avail[0]]?.len();
    for &j in &avail {
        if parity[j]?.len() != shard_len {
            return None;
        }
    }
    for i in 0..k {
        let stored = members[i].map_or(lens[i], |p| p.len());
        if stored > shard_len {
            return None;
        }
    }

    // For each chosen parity row j:  Σ_{i missing} c[j][i]·d_i = p_j ⊕ Σ_{i present} c[j][i]·d_i.
    let e = missing.len();
    let rows = &avail[..e];
    let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(e);
    let mut a = vec![vec![0u8; e]; e];
    for (r, &j) in rows.iter().enumerate() {
        let mut acc = parity[j]?.to_vec();
        for (i, member) in members.iter().enumerate() {
            if let Some(p) = member {
                fma_into(&mut acc, p, coefficient(j, i, m)?);
            }
        }
        for (s, &i) in missing.iter().enumerate() {
            a[r][s] = coefficient(j, i, m)?;
        }
        rhs.push(acc);
    }

    let inv_a = invert_matrix(a)?;
    let mut rebuilt = Vec::with_capacity(e);
    for (s, &i) in missing.iter().enumerate() {
        let mut shard = vec![0u8; shard_len];
        for (r, row_rhs) in rhs.iter().enumerate() {
            fma_into(&mut shard, row_rhs, inv_a[s][r]);
        }
        if lens[i] > shard.len() {
            return None;
        }
        shard.truncate(lens[i]);
        rebuilt.push((i, shard));
    }
    Some(rebuilt)
}

/// Gauss–Jordan inversion of a small square matrix over GF(2^8). `None`
/// when singular (cannot happen for Cauchy submatrices, but the input is
/// derived from untrusted counts, so never panic).
fn invert_matrix(mut a: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = a.len();
    let mut out: Vec<Vec<u8>> = (0..n)
        .map(|r| (0..n).map(|c| u8::from(r == c)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        out.swap(col, pivot);
        let piv_inv = inv(a[col][col])?;
        for c in 0..n {
            a[col][c] = mul(a[col][c], piv_inv);
            out[col][c] = mul(out[col][c], piv_inv);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                for c in 0..n {
                    let (ac, oc) = (mul(f, a[col][c]), mul(f, out[col][c]));
                    a[r][c] ^= ac;
                    out[r][c] ^= oc;
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold() {
        assert_eq!(mul(0, 7), 0);
        assert_eq!(mul(1, 201), 201);
        for a in 1..=255u8 {
            let ai = inv(a).unwrap();
            assert_eq!(mul(a, ai), 1, "a = {a}");
            // distributivity spot-check against a shifted partner
            let b = a.wrapping_mul(31).wrapping_add(7) | 1;
            assert_eq!(mul(a, b), mul(b, a));
        }
        assert!(inv(0).is_none());
    }

    #[test]
    fn nibble_tables_agree_with_field_mul_for_every_pair() {
        for c in 0..=255u8 {
            let t = MulTable::new(c);
            for b in 0..=255u8 {
                assert_eq!(t.mul(b), mul(c, b), "c = {c}, b = {b}");
            }
        }
    }

    #[test]
    fn nibble_fma_matches_scalar_accumulation() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 29, 142, 255] {
            let mut acc = vec![0xa5u8; src.len()];
            let expect: Vec<u8> = acc.iter().zip(&src).map(|(&a, &s)| a ^ mul(c, s)).collect();
            fma_into(&mut acc, &src, c);
            assert_eq!(acc, expect, "c = {c}");
        }
    }

    fn sample_members(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len + i % 3)
                    .map(|b| (b as u8).wrapping_mul(17).wrapping_add(i as u8))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_every_erasure_pattern_up_to_m() {
        for (k, m) in [(1usize, 1usize), (3, 1), (4, 2), (5, 3), (8, 2)] {
            let members = sample_members(k, 29);
            let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
            let parity = rs_encode(&refs, m).unwrap();
            let lens: Vec<usize> = members.iter().map(Vec::len).collect();
            // every subset of data indices with |subset| ≤ m
            for mask in 0u32..(1 << k) {
                let erased = mask.count_ones() as usize;
                if erased == 0 || erased > m {
                    continue;
                }
                let view: Vec<Option<&[u8]>> = (0..k)
                    .map(|i| (mask >> i & 1 == 0).then_some(members[i].as_slice()))
                    .collect();
                let pview: Vec<Option<&[u8]>> = parity.iter().map(|p| Some(p.as_slice())).collect();
                let rebuilt = rs_recover(&view, &pview, &lens).unwrap();
                assert_eq!(rebuilt.len(), erased);
                for (i, bytes) in rebuilt {
                    assert_eq!(bytes, members[i], "k={k} m={m} mask={mask:b} i={i}");
                }
            }
        }
    }

    #[test]
    fn survives_parity_loss_while_erasures_fit() {
        let members = sample_members(6, 40);
        let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
        let parity = rs_encode(&refs, 3).unwrap();
        let lens: Vec<usize> = members.iter().map(Vec::len).collect();
        // 2 data erasures + 1 parity erasure: still 2 parity rows ≥ 2 missing.
        let mut view: Vec<Option<&[u8]>> = refs.iter().map(|p| Some(*p)).collect();
        view[1] = None;
        view[4] = None;
        let pview = [None, Some(parity[1].as_slice()), Some(parity[2].as_slice())];
        let rebuilt = rs_recover(&view, &pview, &lens).unwrap();
        for (i, bytes) in rebuilt {
            assert_eq!(bytes, members[i]);
        }
    }

    #[test]
    fn refuses_more_erasures_than_parity() {
        let members = sample_members(4, 16);
        let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
        let parity = rs_encode(&refs, 1).unwrap();
        let lens: Vec<usize> = members.iter().map(Vec::len).collect();
        let mut view: Vec<Option<&[u8]>> = refs.iter().map(|p| Some(*p)).collect();
        view[0] = None;
        view[2] = None;
        let pview = [Some(parity[0].as_slice())];
        assert!(rs_recover(&view, &pview, &lens).is_none());
    }

    #[test]
    fn refuses_inconsistent_lengths_and_oversize_configs() {
        let members = sample_members(3, 8);
        let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
        let parity = rs_encode(&refs, 2).unwrap();
        let mut lens: Vec<usize> = members.iter().map(Vec::len).collect();
        lens[0] = 1 << 20; // footer claims more bytes than parity carries
        let mut view: Vec<Option<&[u8]>> = refs.iter().map(|p| Some(*p)).collect();
        view[0] = None;
        let pview: Vec<Option<&[u8]>> = parity.iter().map(|p| Some(p.as_slice())).collect();
        assert!(rs_recover(&view, &pview, &lens).is_none());

        let big = vec![&[][..]; 256];
        assert!(rs_encode(&big, 1).is_none());
        assert!(rs_encode(&refs, 0).is_none());
    }

    #[test]
    fn m1_rs_differs_from_xor() {
        // Guard for the format invariant: RS with one parity shard is NOT
        // plain XOR, which is why Xor remains a distinct scheme (v3).
        let members = sample_members(4, 12);
        let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
        let rs = rs_encode(&refs, 1).unwrap();
        let xor = crate::parity::build_group_parity(refs.iter().copied());
        assert_ne!(rs[0], xor);
    }
}
