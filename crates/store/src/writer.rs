//! The store writer: reorder → chunk → compress → indexed container.
//!
//! The encode fans out over **fields × chunks**: every (field, chunk)
//! pair is one independent compression job, so a write scales with cores
//! even for a single field (the in-situ setting the paper's overhead
//! experiments assume). The payload layout is deterministic — field-major,
//! chunks in stream order — regardless of how many threads ran the jobs,
//! so outputs are byte-identical at any parallelism.
//!
//! Two paths share that job list:
//!
//! - [`StoreWriter::write`] — the buffered path: every compressed chunk is
//!   collected and the whole container assembled in one `Vec<u8>`;
//! - [`StoreWriter::write_to_sink`] — the streaming path: chunks flow
//!   through a fixed-size compress→write **window** into a [`ByteSink`].
//!   Encoder threads compress ahead (admission bounded by
//!   [`StreamOptions::window_bytes`] of raw input) while the caller's
//!   thread writes finished chunks to the sink *in layout order*, so the
//!   output is byte-identical to the buffered path at any window size or
//!   thread count — but peak encode-buffer memory is O(window), not
//!   O(container). Parity accumulates incrementally (XOR folds, GF(2⁸)
//!   fused multiply-adds) as members stream past, so no data chunk is
//!   retained after it is written.

use crate::cache::RecipeCache;
use crate::chunk::{plan_chunks, ChunkPlan, DEFAULT_CHUNK_TARGET_BYTES};
use crate::format::{assemble, container_tail, write_header, FieldEntry, StoreError, StoreHeader};
use crate::gf256;
use crate::parity::{build_group_parity, group_count, group_members, xor_into, Parity, ParityMeta};
use crate::reader::{RetryPolicy, RetryStats};
use crate::sink::{persist_store, ByteSink};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Instant;
use zmesh::{codec_for, crc32, CompressionConfig, GroupingMode, Pipeline, ZmeshError};
use zmesh_amr::AmrField;
use zmesh_codecs::{CodecError, CodecParams, ErrorControl, ValueType};

/// Wall-time and size accounting for one store write.
///
/// The reorder and encode phases report both **wall** time (elapsed, as a
/// caller experiences it) and **CPU** time (summed across the parallel
/// jobs). Their ratio, [`StoreWriteStats::encode_parallelism`], is the
/// effective speedup the parallel encode achieved — ~1.0 on one core,
/// approaching the thread count when the chunk jobs saturate the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreWriteStats {
    /// Nanoseconds to obtain the restore recipe (build or cache hit).
    pub recipe_ns: u64,
    /// Whether the recipe came from the cache.
    pub recipe_cache_hit: bool,
    /// Wall nanoseconds of the reorder phase (all fields, in parallel).
    pub reorder_ns: u64,
    /// CPU nanoseconds of the reorder phase, summed over per-field jobs.
    pub reorder_cpu_ns: u64,
    /// Wall nanoseconds of the encode phase (fields × chunks jobs; for the
    /// streaming path this is the overlapped compress+write phase).
    pub encode_ns: u64,
    /// CPU nanoseconds of the encode phase, summed over every
    /// (field, chunk) compression job.
    pub encode_cpu_ns: u64,
    /// Worker threads available to the encode fan-out.
    pub encode_threads: usize,
    /// Fields written.
    pub n_fields: usize,
    /// Chunks per field.
    pub n_chunks: usize,
    /// Uncompressed bytes across all fields.
    pub raw_bytes: usize,
    /// Total store size.
    pub container_bytes: usize,
    /// Compressed chunk payload bytes.
    pub payload_bytes: usize,
    /// Parity section bytes — XOR chunks (v3) or Reed–Solomon shards
    /// (v4); 0 when parity is disabled.
    pub parity_bytes: usize,
    /// Parity groups across all fields.
    pub parity_groups: usize,
    /// Header + footer + trailer bytes (everything except data and parity
    /// payloads).
    pub metadata_bytes: usize,
    /// Whether this write streamed through a bounded window
    /// ([`StoreWriter::write_to_sink`]) instead of assembling the
    /// container in memory.
    pub streamed: bool,
    /// The configured [`StreamOptions::window_bytes`] (0 for the buffered
    /// path or an unbounded window).
    pub window_bytes: usize,
    /// Peak compressed chunk bytes resident in the encode buffer at once:
    /// the entire payload for the buffered path; bounded by the window for
    /// the streaming path (admission is gated on raw chunk bytes, so this
    /// stays ≤ `window_bytes` whenever chunks do not expand under
    /// compression).
    pub peak_buffer_bytes: usize,
    /// Process peak resident set size (`VmHWM`) sampled at the end of the
    /// write, in bytes; 0 when the platform does not expose it.
    pub peak_rss_bytes: usize,
    /// Transient sink-write failures retried (and given up on) by the
    /// streaming path under its [`RetryPolicy`]; all-zero for the
    /// buffered path.
    pub retry: RetryStats,
}

impl StoreWriteStats {
    /// Compression ratio over the full store, metadata included.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.container_bytes as f64
    }

    /// Effective encode speedup: CPU time over wall time. Values near 1.0
    /// mean the encode ran serially; values near `encode_threads` mean the
    /// fan-out saturated the pool.
    pub fn encode_parallelism(&self) -> f64 {
        if self.encode_ns == 0 {
            1.0
        } else {
            self.encode_cpu_ns as f64 / self.encode_ns as f64
        }
    }

    /// Parity section size relative to the data payload — ≈ 1/group-width
    /// when chunk sizes are uniform, 0.0 with parity disabled.
    pub fn parity_overhead(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.parity_bytes as f64 / self.payload_bytes as f64
        }
    }
}

/// Process peak resident set size (`VmHWM` from `/proc/self/status`) in
/// bytes — the observable the streaming write path's O(window) memory
/// claim is judged by. Returns 0 on platforms without procfs.
pub fn process_peak_rss() -> usize {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: usize = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Tunable knobs of a [`StoreWriter`] beyond the compression config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreWriteOptions {
    /// Uncompressed bytes each chunk targets (the last chunk may be short).
    pub chunk_target_bytes: u32,
    /// Erasure-protection scheme. The scheme picks the emitted format
    /// version: [`Parity::None`] ⇒ byte-identical **v2** (interop with
    /// pre-parity readers), [`Parity::Xor`] ⇒ byte-identical **v3**,
    /// [`Parity::Rs`] ⇒ **v4** with `parity` shards per group and a
    /// trailing commit record.
    pub parity: Parity,
}

impl Default for StoreWriteOptions {
    fn default() -> Self {
        Self {
            chunk_target_bytes: DEFAULT_CHUNK_TARGET_BYTES,
            parity: Parity::default(),
        }
    }
}

/// Knobs of the streaming write path ([`StoreWriter::write_to_sink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Ceiling on raw (uncompressed) chunk bytes admitted into the
    /// compress→write window at once — the encode-buffer memory bound.
    /// `0` disables the bound (every job may be in flight at once). A
    /// window smaller than one chunk degrades gracefully to one job at a
    /// time; it never deadlocks.
    pub window_bytes: usize,
    /// Retry policy for transient sink-write failures (`EINTR`, `EAGAIN`,
    /// `EIO`): same backoff discipline as the read side. Retried writes
    /// are idempotent — sinks append at a tracked offset that only
    /// advances on success.
    pub retry: RetryPolicy,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            window_bytes: 8 << 20,
            retry: RetryPolicy::default(),
        }
    }
}

/// Output of [`StoreWriter::write`].
#[derive(Debug, Clone)]
pub struct StoreWritten {
    /// The serialized store.
    pub bytes: Vec<u8>,
    /// Timing and size accounting.
    pub stats: StoreWriteStats,
}

/// Writes chunked, indexed v2 stores. Reusing one writer (or sharing its
/// [`RecipeCache`]) across fields, timesteps, or whole runs amortizes the
/// recipe build — the Nth write against the same mesh skips the parallel
/// sort entirely.
#[derive(Debug, Clone)]
pub struct StoreWriter {
    config: CompressionConfig,
    options: StoreWriteOptions,
    cache: std::sync::Arc<RecipeCache>,
}

/// Everything both write paths need after the shared preamble: recipe,
/// chunk plan, reordered streams, and the serialized header.
struct Prepared {
    recipe_ns: u64,
    recipe_cache_hit: bool,
    reorder_ns: u64,
    reorder_cpu_ns: u64,
    /// Per field: reordered stream, resolved absolute bound, reorder CPU ns.
    reordered: Vec<(Vec<f64>, Option<f64>, u64)>,
    plan: ChunkPlan,
    header_bytes: Vec<u8>,
    params: CodecParams,
    raw_bytes: usize,
}

impl StoreWriter {
    /// Writer with default [`StoreWriteOptions`] and a private cache.
    pub fn new(config: CompressionConfig) -> Self {
        Self::with_options(config, StoreWriteOptions::default())
    }

    /// Writer with explicit options and a private cache.
    pub fn with_options(config: CompressionConfig, options: StoreWriteOptions) -> Self {
        Self {
            config,
            options: StoreWriteOptions {
                chunk_target_bytes: options.chunk_target_bytes.max(8),
                ..options
            },
            cache: std::sync::Arc::new(RecipeCache::new()),
        }
    }

    /// Sets the uncompressed bytes each chunk targets (min 8 = one value).
    pub fn with_chunk_target_bytes(mut self, bytes: u32) -> Self {
        self.options.chunk_target_bytes = bytes.max(8);
        self
    }

    /// Sets the erasure-protection scheme (and with it the emitted format
    /// version).
    pub fn with_parity(mut self, parity: Parity) -> Self {
        self.options.parity = parity;
        self
    }

    /// Back-compat knob: an XOR group width (`0` disables parity ⇒ v2
    /// output, `w > 0` ⇒ v3 XOR groups of `w`).
    pub fn with_parity_group_width(self, width: u32) -> Self {
        self.with_parity(if width == 0 {
            Parity::None
        } else {
            Parity::Xor { width }
        })
    }

    /// Shares a recipe cache with other writers/readers.
    pub fn with_cache(mut self, cache: std::sync::Arc<RecipeCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The writer's recipe cache.
    pub fn cache(&self) -> &std::sync::Arc<RecipeCache> {
        &self.cache
    }

    /// The compression configuration in use.
    pub fn config(&self) -> CompressionConfig {
        self.config
    }

    /// The write options in use.
    pub fn options(&self) -> StoreWriteOptions {
        self.options
    }

    /// Shared preamble of both write paths: validate inputs, obtain the
    /// recipe (build or cache hit), plan chunks, reorder every field in
    /// parallel, and serialize the header. Everything downstream of this
    /// is pure per-(field, chunk) compression plus layout.
    fn prepare(&self, fields: &[(&str, &AmrField)]) -> Result<Prepared, StoreError> {
        self.options.parity.validate()?;
        let (_, first) = fields
            .first()
            .ok_or(StoreError::Zmesh(ZmeshError::Mismatch(
                "no fields to write",
            )))?;
        let tree = first.tree();
        let mode = first.mode();
        for (_, f) in fields {
            if !std::sync::Arc::ptr_eq(f.tree(), tree) {
                return Err(ZmeshError::Mismatch("fields on different trees").into());
            }
            if f.mode() != mode {
                return Err(ZmeshError::Mismatch("fields with different storage modes").into());
            }
        }

        let grouping = GroupingMode::from_storage_mode(mode);
        let structure = tree.structure_bytes();
        let t0 = Instant::now();
        let (recipe, recipe_cache_hit) =
            self.cache
                .get_or_build(tree, &structure, self.config.policy, grouping);
        let recipe_ns = t0.elapsed().as_nanos() as u64;

        let chunk_values = (self.options.chunk_target_bytes as usize / 8).max(1);
        let plan: ChunkPlan =
            plan_chunks(tree, &recipe, self.config.policy, grouping, chunk_values);

        let params = CodecParams {
            control: self.config.control,
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };

        // Reorder, one parallel job per field. Each job also resolves the
        // error bound against its *whole* stream, so every chunk of a
        // field honors the same pointwise absolute bound and the result is
        // distortion-identical to the monolithic path.
        let t1 = Instant::now();
        let reordered: Vec<(Vec<f64>, Option<f64>, u64)> = fields
            .par_iter()
            .map(|(_, field)| {
                let t = Instant::now();
                let stream = recipe.apply(field.values());
                let resolved_bound = self.config.control.absolute_bound(&stream);
                (stream, resolved_bound, t.elapsed().as_nanos() as u64)
            })
            .collect();
        let reorder_ns = t1.elapsed().as_nanos() as u64;
        let reorder_cpu_ns = reordered.iter().map(|(_, _, ns)| ns).sum();

        let header = StoreHeader {
            version: self.options.parity.store_version(),
            policy: self.config.policy,
            mode,
            codec: self.config.codec,
            value_type: ValueType::F64,
            chunk_target_bytes: self.options.chunk_target_bytes,
            parity_group_width: self.options.parity.width(),
            parity_shards: self.options.parity.shards(),
            structure,
            header_bytes: 0,
        };

        let raw_bytes: usize = fields.iter().map(|(_, f)| f.nbytes()).sum();
        Ok(Prepared {
            recipe_ns,
            recipe_cache_hit,
            reorder_ns,
            reorder_cpu_ns,
            reordered,
            plan,
            header_bytes: write_header(&header),
            params,
            raw_bytes,
        })
    }

    /// Compresses `fields` (sharing one mesh) into a chunked, indexed
    /// store. The stream framing (and hence the index size) is identical
    /// for every ordering policy; only payload bytes differ.
    pub fn write(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError> {
        let prep = self.prepare(fields)?;
        let codec = codec_for(self.config.codec);

        // Compress, one parallel job per (field, chunk). A flat job list
        // (instead of nesting per-chunk parallelism inside a per-field
        // loop) keeps the pool saturated even when field and chunk counts
        // are individually smaller than the core count.
        let n_chunks = prep.plan.metas.len();
        let jobs: Vec<(usize, usize)> = (0..fields.len())
            .flat_map(|f| (0..n_chunks).map(move |c| (f, c)))
            .collect();
        let t2 = Instant::now();
        let compressed: Vec<(Vec<u8>, u32, u64)> = jobs
            .par_iter()
            .map(|&(f, c)| {
                let t = Instant::now();
                let (stream, bound, _) = &prep.reordered[f];
                let mut params = prep.params;
                if let Some(bound) = bound {
                    params.control = ErrorControl::Absolute(*bound);
                }
                let bytes = codec.compress(&stream[prep.plan.stream_range(c)], &params)?;
                let crc = crc32(&bytes);
                Ok((bytes, crc, t.elapsed().as_nanos() as u64))
            })
            .collect::<Result<_, CodecError>>()?;
        let encode_ns = t2.elapsed().as_nanos() as u64;
        let encode_cpu_ns = compressed.iter().map(|(_, _, ns)| ns).sum();

        // The index is only honest if every planned chunk produced exactly
        // one payload. A mismatch is a bug in this library — fail hard
        // instead of zip-truncating into an index that lies.
        if compressed.len() != fields.len() * n_chunks {
            return Err(StoreError::Internal(
                "compressed payload count mismatches the chunk plan",
            ));
        }

        // Deterministic layout: field-major, chunks in stream order,
        // independent of how many threads ran the jobs above.
        let mut payload: Vec<u8> = Vec::new();
        let mut entries: Vec<FieldEntry> = Vec::with_capacity(fields.len());
        for (f, (name, _)) in fields.iter().enumerate() {
            let mut chunks = Vec::with_capacity(n_chunks);
            for (c, meta) in prep.plan.metas.iter().enumerate() {
                let (bytes, crc, _) = &compressed[f * n_chunks + c];
                let mut meta = *meta;
                meta.offset = payload.len() as u64;
                meta.len = bytes.len() as u64;
                meta.crc = *crc;
                payload.extend_from_slice(bytes);
                chunks.push(meta);
            }
            entries.push(FieldEntry {
                name: (*name).to_string(),
                resolved_bound: prep.reordered[f].1,
                // Unbounded controls leave no resolved bound to re-encode
                // from, so the footer records the control itself — this is
                // what lets `repair --from-raw` reproduce fixed-rate /
                // fixed-precision fields bit-exactly.
                control: prep.reordered[f].1.is_none().then_some(self.config.control),
                chunks,
                parity: Vec::new(),
            });
        }
        let payload_bytes = payload.len();

        // Parity section, appended after the data payload in the same
        // field-major order. One XOR chunk (v3) or `m` Reed–Solomon shards
        // (v4) per group of `width` data chunks; offsets stay relative to
        // the payload span like the data chunks', so readers slice both
        // through one code path.
        let width = self.options.parity.width() as usize;
        let mut parity_groups = 0usize;
        if width > 0 {
            for (f, entry) in entries.iter_mut().enumerate() {
                let groups = group_count(n_chunks, width);
                parity_groups += groups;
                for g in 0..groups {
                    let members = group_members(g, width, n_chunks);
                    let shards: Vec<Vec<u8>> = match self.options.parity {
                        Parity::None => unreachable!("width > 0"),
                        Parity::Xor { .. } => vec![build_group_parity(
                            members.map(|c| compressed[f * n_chunks + c].0.as_slice()),
                        )],
                        Parity::Rs { parity: m, .. } => {
                            let payloads: Vec<&[u8]> = members
                                .map(|c| compressed[f * n_chunks + c].0.as_slice())
                                .collect();
                            gf256::rs_encode(&payloads, m as usize).ok_or(StoreError::Internal(
                                "rs encode rejected validated geometry",
                            ))?
                        }
                    };
                    for bytes in shards {
                        entry.parity.push(ParityMeta {
                            offset: payload.len() as u64,
                            len: bytes.len() as u64,
                            crc: crc32(&bytes),
                        });
                        payload.extend_from_slice(&bytes);
                    }
                }
            }
        }
        let parity_bytes = payload.len() - payload_bytes;

        let bytes = assemble(prep.header_bytes, &payload, &entries);

        Ok(StoreWritten {
            stats: StoreWriteStats {
                recipe_ns: prep.recipe_ns,
                recipe_cache_hit: prep.recipe_cache_hit,
                reorder_ns: prep.reorder_ns,
                reorder_cpu_ns: prep.reorder_cpu_ns,
                encode_ns,
                encode_cpu_ns,
                encode_threads: rayon::current_num_threads(),
                n_fields: fields.len(),
                n_chunks,
                raw_bytes: prep.raw_bytes,
                container_bytes: bytes.len(),
                payload_bytes,
                parity_bytes,
                parity_groups,
                metadata_bytes: bytes.len() - payload_bytes - parity_bytes,
                streamed: false,
                window_bytes: 0,
                // The buffered path holds every compressed chunk at once.
                peak_buffer_bytes: payload_bytes + parity_bytes,
                peak_rss_bytes: process_peak_rss(),
                retry: RetryStats::default(),
            },
            bytes,
        })
    }
}

/// Admission state of the streaming window: encoder threads take the next
/// job in layout order only when its raw bytes fit the window (or nothing
/// is in flight — the progress guarantee for chunks larger than the whole
/// window).
struct WindowState {
    next_job: usize,
    inflight_jobs: usize,
    inflight_bytes: usize,
    abort: bool,
}

/// Raw (uncompressed) bytes of chunk `c` — the admission cost of its job.
fn chunk_cost(plan: &ChunkPlan, c: usize) -> usize {
    plan.stream_range(c).len() * 8
}

/// One `write_all` under the retry policy: transient sink failures back
/// off and retry (append offsets only advance on success, so a retry is
/// idempotent); everything else surfaces immediately.
fn sink_write<K: ByteSink + ?Sized>(
    sink: &mut K,
    buf: &[u8],
    policy: &RetryPolicy,
    stats: &mut RetryStats,
) -> Result<(), StoreError> {
    let mut attempt = 0u32;
    loop {
        match sink.write_all(buf) {
            Err(e) if e.is_transient() => {
                attempt += 1;
                if attempt >= policy.attempts {
                    stats.gave_up += 1;
                    return Err(e);
                }
                stats.retries += 1;
                let backoff = policy
                    .base
                    .saturating_mul(1u32 << (attempt - 1).min(16))
                    .min(policy.cap);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            other => return other,
        }
    }
}

/// Folds one freshly written data chunk into its parity group accumulator
/// (`cur`, one buffer per shard), pushing finished groups onto `done` in
/// the field-major order the parity section is laid out in. Incremental
/// accumulation is exact: XOR is order-free, and a Reed–Solomon shard is
/// a GF(2⁸)-linear combination of its members, so member-at-a-time fused
/// multiply-adds reproduce [`gf256::rs_encode`] byte for byte.
fn accumulate_parity(
    parity: Parity,
    n_chunks: usize,
    f: usize,
    c: usize,
    bytes: &[u8],
    cur: &mut Vec<Vec<u8>>,
    done: &mut Vec<(usize, Vec<u8>)>,
) -> Result<(), StoreError> {
    let width = parity.width() as usize;
    if width == 0 {
        return Ok(());
    }
    let member = c % width;
    if member == 0 {
        debug_assert!(cur.is_empty(), "previous group not drained");
        cur.resize(parity.shards() as usize, Vec::new());
    }
    match parity {
        Parity::None => {}
        Parity::Xor { .. } => xor_into(&mut cur[0], bytes),
        Parity::Rs { parity: m, .. } => {
            for (j, shard) in cur.iter_mut().enumerate() {
                // A shard is as long as the group's longest member.
                if shard.len() < bytes.len() {
                    shard.resize(bytes.len(), 0);
                }
                let coeff = gf256::coefficient(j, member, m as usize).ok_or(
                    StoreError::Internal("rs coefficient out of range for validated geometry"),
                )?;
                gf256::MulTable::new(coeff).fma_into(shard, bytes);
            }
        }
    }
    if member + 1 == width || c + 1 == n_chunks {
        for shard in cur.drain(..) {
            done.push((f, shard));
        }
    }
    Ok(())
}

impl StoreWriter {
    /// Streams `fields` into `sink` through a bounded compress→write
    /// window: encoder threads compress (field, chunk) jobs ahead of the
    /// writer while this thread appends finished chunks in layout order,
    /// then the parity section, footer, trailer, and commit record, and
    /// finally calls [`ByteSink::commit`]. The emitted bytes are
    /// **byte-identical** to [`StoreWriter::write`] at any window size and
    /// thread count; peak encode-buffer memory is bounded by
    /// [`StreamOptions::window_bytes`] (with parity enabled, the
    /// accumulated parity shards — ≈ payload/width bytes — additionally
    /// stay resident until the parity section is written).
    ///
    /// Transient sink-write failures retry under [`StreamOptions::retry`]
    /// (accounted in [`StoreWriteStats::retry`]); any other failure aborts
    /// the write — a [`crate::FileSink`] then removes its temp file on
    /// drop, leaving a pre-existing destination untouched.
    pub fn write_to_sink<K: ByteSink + ?Sized>(
        &self,
        fields: &[(&str, &AmrField)],
        sink: &mut K,
        opts: &StreamOptions,
    ) -> Result<StoreWriteStats, StoreError> {
        let prep = self.prepare(fields)?;
        let codec = codec_for(self.config.codec);
        let codec = &*codec;
        let n_chunks = prep.plan.metas.len();
        let n_fields = fields.len();
        let total_jobs = n_fields * n_chunks;
        let window = opts.window_bytes;
        let policy = opts.retry;
        let mut rstats = RetryStats::default();

        let mut entries: Vec<FieldEntry> = fields
            .iter()
            .enumerate()
            .map(|(f, (name, _))| FieldEntry {
                name: (*name).to_string(),
                resolved_bound: prep.reordered[f].1,
                control: prep.reordered[f].1.is_none().then_some(self.config.control),
                chunks: Vec::with_capacity(n_chunks),
                parity: Vec::new(),
            })
            .collect();

        sink_write(sink, &prep.header_bytes, &policy, &mut rstats)?;

        let n_workers = rayon::current_num_threads().clamp(1, total_jobs.max(1));
        let state = Mutex::new(WindowState {
            next_job: 0,
            inflight_jobs: 0,
            inflight_bytes: 0,
            abort: false,
        });
        let admit = Condvar::new();
        // Compressed bytes currently resident between encoder and sink —
        // the observable the O(window) claim is asserted on.
        let resident = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);

        let mut encode_cpu_ns = 0u64;
        let mut payload_pos = 0u64; // relative to the payload span
        let mut group_acc: Vec<Vec<u8>> = Vec::new();
        let mut parity_done: Vec<(usize, Vec<u8>)> = Vec::new();

        let t2 = Instant::now();
        type JobResult = Result<(Vec<u8>, u32, u64), CodecError>;
        let (tx, rx) = mpsc::channel::<(usize, JobResult)>();
        let data_phase: Result<(), StoreError> = std::thread::scope(|scope| {
            for _ in 0..n_workers {
                let tx = tx.clone();
                let (state, admit) = (&state, &admit);
                let (resident, peak) = (&resident, &peak);
                let prep = &prep;
                scope.spawn(move || loop {
                    // Admission: take the next job in layout order once its
                    // raw bytes fit the window. `inflight_jobs == 0` is the
                    // progress guarantee for oversized chunks.
                    let job = {
                        let mut st = state.lock().expect("window state poisoned");
                        loop {
                            if st.abort || st.next_job >= total_jobs {
                                return;
                            }
                            let cost = chunk_cost(&prep.plan, st.next_job % n_chunks);
                            if st.inflight_jobs == 0
                                || window == 0
                                || st.inflight_bytes + cost <= window
                            {
                                let j = st.next_job;
                                st.next_job += 1;
                                st.inflight_jobs += 1;
                                st.inflight_bytes += cost;
                                break j;
                            }
                            st = admit.wait(st).expect("window state poisoned");
                        }
                    };
                    let (f, c) = (job / n_chunks, job % n_chunks);
                    let t = Instant::now();
                    let (stream, bound, _) = &prep.reordered[f];
                    let mut params = prep.params;
                    if let Some(bound) = bound {
                        params.control = ErrorControl::Absolute(*bound);
                    }
                    let result: JobResult = codec
                        .compress(&stream[prep.plan.stream_range(c)], &params)
                        .map(|bytes| {
                            let now =
                                resident.fetch_add(bytes.len(), Ordering::Relaxed) + bytes.len();
                            peak.fetch_max(now, Ordering::Relaxed);
                            let crc = crc32(&bytes);
                            (bytes, crc, t.elapsed().as_nanos() as u64)
                        });
                    let failed = result.is_err();
                    let _ = tx.send((job, result));
                    if failed {
                        return;
                    }
                });
            }
            drop(tx);

            // Consumer (this thread): reorder out-of-order completions and
            // write strictly in layout order, releasing window budget as
            // each chunk lands in the sink.
            let mut consume = || -> Result<(), StoreError> {
                let mut pending: BTreeMap<usize, (Vec<u8>, u32, u64)> = BTreeMap::new();
                let mut next_write = 0usize;
                while next_write < total_jobs {
                    let (idx, result) = rx.recv().map_err(|_| {
                        StoreError::Internal("encode pipeline ended before the last chunk")
                    })?;
                    pending.insert(idx, result?);
                    while let Some((bytes, crc, ns)) = pending.remove(&next_write) {
                        encode_cpu_ns += ns;
                        sink_write(sink, &bytes, &policy, &mut rstats)?;
                        let (f, c) = (next_write / n_chunks, next_write % n_chunks);
                        let mut meta = prep.plan.metas[c];
                        meta.offset = payload_pos;
                        meta.len = bytes.len() as u64;
                        meta.crc = crc;
                        entries[f].chunks.push(meta);
                        payload_pos += bytes.len() as u64;
                        accumulate_parity(
                            self.options.parity,
                            n_chunks,
                            f,
                            c,
                            &bytes,
                            &mut group_acc,
                            &mut parity_done,
                        )?;
                        resident.fetch_sub(bytes.len(), Ordering::Relaxed);
                        {
                            let mut st = state.lock().expect("window state poisoned");
                            st.inflight_jobs -= 1;
                            st.inflight_bytes -= chunk_cost(&prep.plan, c);
                        }
                        admit.notify_all();
                        next_write += 1;
                    }
                }
                Ok(())
            };
            let out = consume();
            // Wake any encoder still parked on admission so the scope can
            // join — harmless when everything already drained.
            state.lock().expect("window state poisoned").abort = true;
            admit.notify_all();
            out
        });
        data_phase?;
        let payload_bytes = payload_pos as usize;

        // Parity section: finished group shards, already in field-major
        // group order because data chunks complete in layout order.
        for (f, shard) in &parity_done {
            entries[*f].parity.push(ParityMeta {
                offset: payload_pos,
                len: shard.len() as u64,
                crc: crc32(shard),
            });
            sink_write(sink, shard, &policy, &mut rstats)?;
            payload_pos += shard.len() as u64;
        }
        let parity_bytes = payload_pos as usize - payload_bytes;
        let width = self.options.parity.width() as usize;
        let parity_groups = if width > 0 {
            n_fields * group_count(n_chunks, width)
        } else {
            0
        };

        // Footer, trailer, and (v4) commit record — identical bytes to
        // `assemble`, then the sink's own durable publish.
        let tail = container_tail(&prep.header_bytes, payload_pos, &entries);
        sink_write(sink, &tail, &policy, &mut rstats)?;
        let encode_ns = t2.elapsed().as_nanos() as u64;
        sink.flush()?;
        sink.commit()?;

        let container_bytes = prep.header_bytes.len() + payload_pos as usize + tail.len();
        Ok(StoreWriteStats {
            recipe_ns: prep.recipe_ns,
            recipe_cache_hit: prep.recipe_cache_hit,
            reorder_ns: prep.reorder_ns,
            reorder_cpu_ns: prep.reorder_cpu_ns,
            encode_ns,
            encode_cpu_ns,
            encode_threads: n_workers,
            n_fields,
            n_chunks,
            raw_bytes: prep.raw_bytes,
            container_bytes,
            payload_bytes,
            parity_bytes,
            parity_groups,
            metadata_bytes: container_bytes - payload_bytes - parity_bytes,
            streamed: true,
            window_bytes: window,
            peak_buffer_bytes: peak.load(Ordering::Relaxed),
            peak_rss_bytes: process_peak_rss(),
            retry: rstats,
        })
    }

    /// [`StoreWriter::write_to_sink`] into a crash-consistent
    /// [`crate::FileSink`] at `path`: bytes stream into `<path>.tmp` in
    /// O(window) memory and the commit publishes them atomically. On any
    /// error the temp file is removed and a pre-existing `path` is
    /// untouched; `ENOSPC` surfaces as [`StoreError::NoSpace`].
    #[cfg(unix)]
    pub fn write_streaming_to_path(
        &self,
        fields: &[(&str, &AmrField)],
        path: &Path,
        opts: &StreamOptions,
    ) -> Result<StoreWriteStats, StoreError> {
        let mut sink = crate::sink::FileSink::create(path)?;
        self.write_to_sink(fields, &mut sink, opts)
    }
}

impl StoreWriter {
    /// [`StoreWriter::write`] followed by a crash-consistent
    /// [`persist_store`] to `path`: readers see either the previous file
    /// or the complete new store, never a torn intermediate.
    pub fn write_to_path(
        &self,
        fields: &[(&str, &AmrField)],
        path: &Path,
    ) -> Result<StoreWritten, StoreError> {
        let out = self.write(fields)?;
        persist_store(&out.bytes, path)?;
        Ok(out)
    }
}

/// Chunked-store entry point hung off the core [`Pipeline`]: `pack` is to
/// the v2 store what [`Pipeline::compress`] is to the v1 container.
pub trait PipelineStoreExt {
    /// Packs `fields` into a chunked, indexed v2 store using this
    /// pipeline's configuration and default chunking.
    fn pack(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError>;
}

impl PipelineStoreExt for Pipeline {
    fn pack(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError> {
        StoreWriter::new(self.config()).write(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{tmp_path, VecSink};
    use zmesh_amr::{datasets, StorageMode};

    fn small_fields(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
    }

    #[test]
    fn write_produces_parseable_store() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(2048);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert!(crate::format::is_store(&out.bytes));
        assert!(out.stats.n_chunks >= 2, "want multiple chunks");
        assert_eq!(out.stats.n_fields, ds.fields.len());
        assert_eq!(
            out.stats.container_bytes,
            out.stats.payload_bytes + out.stats.parity_bytes + out.stats.metadata_bytes
        );
        assert!(out.stats.parity_groups > 0);
        assert!(out.stats.ratio() > 1.0);
        assert!(!out.stats.streamed);
    }

    #[test]
    fn parity_overhead_is_bounded_by_group_width() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity_group_width(4);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert!(out.stats.parity_bytes > 0);
        // Each group's parity chunk is as long as its *largest* member, so
        // the overhead can exceed 1/width when chunk sizes vary — but never
        // by more than ~2x for these well-behaved payloads.
        assert!(
            out.stats.parity_overhead() <= 2.0 / 4.0,
            "overhead {} too large",
            out.stats.parity_overhead()
        );
    }

    #[test]
    fn zero_parity_width_writes_a_v2_store() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(2048)
            .with_parity_group_width(0);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert_eq!(out.stats.parity_bytes, 0);
        assert_eq!(out.stats.parity_groups, 0);
        let (header, fields, _) = crate::format::open(&out.bytes).unwrap();
        assert_eq!(header.version, 2);
        assert!(!header.capabilities().parity);
        assert!(fields.iter().all(|f| f.parity.is_empty()));
    }

    #[test]
    fn rs_parity_writes_a_v4_store_with_m_shards_per_group() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity(Parity::Rs { data: 4, parity: 2 });
        let out = writer.write(&small_fields(&ds)).unwrap();
        let (header, fields, _) = crate::format::open(&out.bytes).unwrap();
        assert_eq!(header.version, 4);
        assert_eq!(header.scheme(), Parity::Rs { data: 4, parity: 2 });
        assert_eq!(header.capabilities().erasure_budget, 2);
        let groups = group_count(out.stats.n_chunks, 4);
        for f in &fields {
            assert_eq!(f.parity.len(), groups * 2);
        }
        // Two shards per group cost roughly twice one XOR chunk.
        assert!(out.stats.parity_overhead() > 0.0);
        assert!(out.stats.parity_overhead() <= 2.0 * 2.0 / 4.0);
    }

    #[test]
    fn rs_output_is_byte_identical_at_any_parallelism() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity(Parity::Rs { data: 4, parity: 3 });
        let parallel = writer.write(&small_fields(&ds)).unwrap();
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| writer.write(&small_fields(&ds)).unwrap());
        assert_eq!(parallel.bytes, serial.bytes);
    }

    #[test]
    fn invalid_parity_geometry_is_rejected_up_front() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        for parity in [
            Parity::Rs { data: 0, parity: 2 },
            Parity::Rs { data: 8, parity: 0 },
            Parity::Rs {
                data: 250,
                parity: 10,
            },
            Parity::Xor { width: 0 },
        ] {
            let writer = StoreWriter::new(CompressionConfig::zmesh_default()).with_parity(parity);
            assert!(
                matches!(
                    writer.write(&small_fields(&ds)),
                    Err(StoreError::InvalidOptions(_))
                ),
                "{parity:?} must be rejected"
            );
        }
    }

    #[test]
    fn persist_replaces_the_target_atomically() {
        let dir = std::env::temp_dir().join(format!("zmesh-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.zms");
        std::fs::write(&path, b"old contents").unwrap();
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let out = writer.write_to_path(&small_fields(&ds), &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), out.bytes);
        assert!(
            !tmp_path(&path).exists(),
            "temp file must not survive a successful persist"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_write_hits_the_recipe_cache() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let first = writer.write(&small_fields(&ds)).unwrap();
        let second = writer.write(&small_fields(&ds)).unwrap();
        assert!(!first.stats.recipe_cache_hit);
        assert!(second.stats.recipe_cache_hit);
        assert_eq!(writer.cache().stats().hits, 1);
    }

    #[test]
    fn output_is_byte_identical_at_any_parallelism() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(1024);
        let parallel = writer.write(&small_fields(&ds)).unwrap();
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| writer.write(&small_fields(&ds)).unwrap());
        assert_eq!(parallel.bytes, serial.bytes);
        assert!(parallel.stats.n_chunks >= 4);
    }

    #[test]
    fn stats_split_wall_and_cpu_time() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Small);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(4096);
        let out = writer.write(&small_fields(&ds)).unwrap();
        let s = out.stats;
        assert!(s.encode_ns > 0);
        assert!(s.encode_cpu_ns > 0);
        assert!(s.reorder_cpu_ns > 0);
        assert!(s.encode_threads >= 1);
        assert!(s.encode_parallelism() > 0.0);
        // CPU time is a sum over jobs: with more than one worker it can
        // exceed wall time, but it can never be wildly below it (each
        // job's time is contained in the phase).
        assert!(
            s.encode_cpu_ns <= s.encode_ns.saturating_mul(s.encode_threads as u64 + 1),
            "cpu {} vs wall {} on {} threads",
            s.encode_cpu_ns,
            s.encode_ns,
            s.encode_threads
        );
    }

    #[test]
    fn rejects_mixed_inputs() {
        let a = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let b = datasets::front2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let mixed = vec![("x", &a.fields[0].1), ("y", &b.fields[0].1)];
        assert!(matches!(
            writer.write(&mixed),
            Err(StoreError::Zmesh(ZmeshError::Mismatch(_)))
        ));
        assert!(writer.write(&[]).is_err());
    }

    #[test]
    fn pipeline_pack_wires_through() {
        let ds = datasets::advect2d(StorageMode::LeafOnly, datasets::Scale::Tiny);
        let out = Pipeline::new(CompressionConfig::zmesh_default())
            .pack(&small_fields(&ds))
            .unwrap();
        assert!(crate::format::is_store(&out.bytes));
    }

    #[test]
    fn streaming_is_byte_identical_to_buffered_for_every_scheme() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        for parity in [
            Parity::None,
            Parity::Xor { width: 3 },
            Parity::Rs { data: 4, parity: 2 },
        ] {
            let writer = StoreWriter::new(CompressionConfig::zmesh_default())
                .with_chunk_target_bytes(1024)
                .with_parity(parity);
            let buffered = writer.write(&small_fields(&ds)).unwrap();
            for window in [0usize, 1024, 3 * 1024, 1 << 30] {
                let mut sink = VecSink::new();
                let stats = writer
                    .write_to_sink(
                        &small_fields(&ds),
                        &mut sink,
                        &StreamOptions {
                            window_bytes: window,
                            ..StreamOptions::default()
                        },
                    )
                    .unwrap();
                assert_eq!(
                    sink.bytes(),
                    &buffered.bytes[..],
                    "{parity:?} window={window}"
                );
                assert!(stats.streamed);
                assert_eq!(stats.window_bytes, window);
                assert_eq!(stats.container_bytes, buffered.stats.container_bytes);
                assert_eq!(stats.payload_bytes, buffered.stats.payload_bytes);
                assert_eq!(stats.parity_bytes, buffered.stats.parity_bytes);
                assert_eq!(stats.parity_groups, buffered.stats.parity_groups);
                assert_eq!(stats.retry, RetryStats::default());
            }
        }
    }

    #[test]
    fn streaming_window_bounds_the_encode_buffer() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Small);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(1024);
        // A window of three chunks, far below the raw dataset size.
        let window = 3 * 1024;
        let mut sink = VecSink::new();
        let stats = writer
            .write_to_sink(
                &small_fields(&ds),
                &mut sink,
                &StreamOptions {
                    window_bytes: window,
                    ..StreamOptions::default()
                },
            )
            .unwrap();
        assert!(
            stats.raw_bytes > window,
            "dataset must exceed the window for the bound to mean anything"
        );
        assert!(stats.peak_buffer_bytes > 0);
        assert!(
            stats.peak_buffer_bytes <= window,
            "peak encode buffer {} exceeds window {window}",
            stats.peak_buffer_bytes
        );
        // The unbounded window produces the same bytes. (Its peak buffer
        // is *usually* larger but depends on scheduling, so only the
        // bounded invariant above is asserted.)
        let mut unbounded = VecSink::new();
        writer
            .write_to_sink(
                &small_fields(&ds),
                &mut unbounded,
                &StreamOptions {
                    window_bytes: 0,
                    ..StreamOptions::default()
                },
            )
            .unwrap();
        assert_eq!(unbounded.bytes(), sink.bytes());
    }

    #[test]
    fn streaming_is_byte_identical_across_thread_counts() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity(Parity::Rs { data: 3, parity: 2 });
        let opts = StreamOptions {
            window_bytes: 2048,
            ..StreamOptions::default()
        };
        let mut parallel = VecSink::new();
        writer
            .write_to_sink(&small_fields(&ds), &mut parallel, &opts)
            .unwrap();
        let mut serial = VecSink::new();
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| {
                writer
                    .write_to_sink(&small_fields(&ds), &mut serial, &opts)
                    .unwrap()
            });
        assert_eq!(parallel.bytes(), serial.bytes());
    }

    #[cfg(unix)]
    #[test]
    fn write_streaming_to_path_round_trips() {
        let dir = std::env::temp_dir().join(format!("zmesh-stream-path-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.zms");
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(1024);
        let buffered = writer.write(&small_fields(&ds)).unwrap();
        let stats = writer
            .write_streaming_to_path(
                &small_fields(&ds),
                &path,
                &StreamOptions {
                    window_bytes: 4096,
                    ..StreamOptions::default()
                },
            )
            .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), buffered.bytes);
        assert_eq!(stats.container_bytes, buffered.bytes.len());
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn process_peak_rss_reports_on_linux() {
        let rss = process_peak_rss();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM must be readable on linux");
        }
    }
}
