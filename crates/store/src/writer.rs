//! The store writer: reorder → chunk → compress → indexed container.
//!
//! The encode fans out over **fields × chunks**: every (field, chunk)
//! pair is one independent compression job on the rayon pool, so a write
//! scales with cores even for a single field (the in-situ setting the
//! paper's overhead experiments assume). The payload layout is
//! deterministic — field-major, chunks in stream order — regardless of
//! how many threads ran the jobs, so outputs are byte-identical at any
//! parallelism.

use crate::cache::RecipeCache;
use crate::chunk::{plan_chunks, ChunkPlan, DEFAULT_CHUNK_TARGET_BYTES};
use crate::format::{assemble, write_header, FieldEntry, StoreError, StoreHeader};
use crate::gf256;
use crate::parity::{build_group_parity, group_count, group_members, Parity, ParityMeta};
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use zmesh::{codec_for, crc32, CompressionConfig, GroupingMode, Pipeline, ZmeshError};
use zmesh_amr::AmrField;
use zmesh_codecs::{CodecError, CodecParams, ErrorControl, ValueType};

/// Wall-time and size accounting for one store write.
///
/// The reorder and encode phases report both **wall** time (elapsed, as a
/// caller experiences it) and **CPU** time (summed across the parallel
/// jobs). Their ratio, [`StoreWriteStats::encode_parallelism`], is the
/// effective speedup the parallel encode achieved — ~1.0 on one core,
/// approaching the thread count when the chunk jobs saturate the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreWriteStats {
    /// Nanoseconds to obtain the restore recipe (build or cache hit).
    pub recipe_ns: u64,
    /// Whether the recipe came from the cache.
    pub recipe_cache_hit: bool,
    /// Wall nanoseconds of the reorder phase (all fields, in parallel).
    pub reorder_ns: u64,
    /// CPU nanoseconds of the reorder phase, summed over per-field jobs.
    pub reorder_cpu_ns: u64,
    /// Wall nanoseconds of the encode phase (fields × chunks jobs).
    pub encode_ns: u64,
    /// CPU nanoseconds of the encode phase, summed over every
    /// (field, chunk) compression job.
    pub encode_cpu_ns: u64,
    /// Worker threads available to the encode fan-out.
    pub encode_threads: usize,
    /// Fields written.
    pub n_fields: usize,
    /// Chunks per field.
    pub n_chunks: usize,
    /// Uncompressed bytes across all fields.
    pub raw_bytes: usize,
    /// Total store size.
    pub container_bytes: usize,
    /// Compressed chunk payload bytes.
    pub payload_bytes: usize,
    /// Parity section bytes — XOR chunks (v3) or Reed–Solomon shards
    /// (v4); 0 when parity is disabled.
    pub parity_bytes: usize,
    /// Parity groups across all fields.
    pub parity_groups: usize,
    /// Header + footer + trailer bytes (everything except data and parity
    /// payloads).
    pub metadata_bytes: usize,
}

impl StoreWriteStats {
    /// Compression ratio over the full store, metadata included.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.container_bytes as f64
    }

    /// Effective encode speedup: CPU time over wall time. Values near 1.0
    /// mean the encode ran serially; values near `encode_threads` mean the
    /// fan-out saturated the pool.
    pub fn encode_parallelism(&self) -> f64 {
        if self.encode_ns == 0 {
            1.0
        } else {
            self.encode_cpu_ns as f64 / self.encode_ns as f64
        }
    }

    /// Parity section size relative to the data payload — ≈ 1/group-width
    /// when chunk sizes are uniform, 0.0 with parity disabled.
    pub fn parity_overhead(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.parity_bytes as f64 / self.payload_bytes as f64
        }
    }
}

/// Tunable knobs of a [`StoreWriter`] beyond the compression config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreWriteOptions {
    /// Uncompressed bytes each chunk targets (the last chunk may be short).
    pub chunk_target_bytes: u32,
    /// Erasure-protection scheme. The scheme picks the emitted format
    /// version: [`Parity::None`] ⇒ byte-identical **v2** (interop with
    /// pre-parity readers), [`Parity::Xor`] ⇒ byte-identical **v3**,
    /// [`Parity::Rs`] ⇒ **v4** with `parity` shards per group and a
    /// trailing commit record.
    pub parity: Parity,
}

impl Default for StoreWriteOptions {
    fn default() -> Self {
        Self {
            chunk_target_bytes: DEFAULT_CHUNK_TARGET_BYTES,
            parity: Parity::default(),
        }
    }
}

/// Output of [`StoreWriter::write`].
#[derive(Debug, Clone)]
pub struct StoreWritten {
    /// The serialized store.
    pub bytes: Vec<u8>,
    /// Timing and size accounting.
    pub stats: StoreWriteStats,
}

/// Writes chunked, indexed v2 stores. Reusing one writer (or sharing its
/// [`RecipeCache`]) across fields, timesteps, or whole runs amortizes the
/// recipe build — the Nth write against the same mesh skips the parallel
/// sort entirely.
#[derive(Debug, Clone)]
pub struct StoreWriter {
    config: CompressionConfig,
    options: StoreWriteOptions,
    cache: Arc<RecipeCache>,
}

impl StoreWriter {
    /// Writer with default [`StoreWriteOptions`] and a private cache.
    pub fn new(config: CompressionConfig) -> Self {
        Self::with_options(config, StoreWriteOptions::default())
    }

    /// Writer with explicit options and a private cache.
    pub fn with_options(config: CompressionConfig, options: StoreWriteOptions) -> Self {
        Self {
            config,
            options: StoreWriteOptions {
                chunk_target_bytes: options.chunk_target_bytes.max(8),
                ..options
            },
            cache: Arc::new(RecipeCache::new()),
        }
    }

    /// Sets the uncompressed bytes each chunk targets (min 8 = one value).
    pub fn with_chunk_target_bytes(mut self, bytes: u32) -> Self {
        self.options.chunk_target_bytes = bytes.max(8);
        self
    }

    /// Sets the erasure-protection scheme (and with it the emitted format
    /// version).
    pub fn with_parity(mut self, parity: Parity) -> Self {
        self.options.parity = parity;
        self
    }

    /// Back-compat knob: an XOR group width (`0` disables parity ⇒ v2
    /// output, `w > 0` ⇒ v3 XOR groups of `w`).
    pub fn with_parity_group_width(self, width: u32) -> Self {
        self.with_parity(if width == 0 {
            Parity::None
        } else {
            Parity::Xor { width }
        })
    }

    /// Shares a recipe cache with other writers/readers.
    pub fn with_cache(mut self, cache: Arc<RecipeCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The writer's recipe cache.
    pub fn cache(&self) -> &Arc<RecipeCache> {
        &self.cache
    }

    /// The compression configuration in use.
    pub fn config(&self) -> CompressionConfig {
        self.config
    }

    /// The write options in use.
    pub fn options(&self) -> StoreWriteOptions {
        self.options
    }

    /// Compresses `fields` (sharing one mesh) into a chunked, indexed
    /// store. The stream framing (and hence the index size) is identical
    /// for every ordering policy; only payload bytes differ.
    pub fn write(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError> {
        self.options.parity.validate()?;
        let (_, first) = fields
            .first()
            .ok_or(StoreError::Zmesh(ZmeshError::Mismatch(
                "no fields to write",
            )))?;
        let tree = first.tree();
        let mode = first.mode();
        for (_, f) in fields {
            if !Arc::ptr_eq(f.tree(), tree) {
                return Err(ZmeshError::Mismatch("fields on different trees").into());
            }
            if f.mode() != mode {
                return Err(ZmeshError::Mismatch("fields with different storage modes").into());
            }
        }

        let grouping = GroupingMode::from_storage_mode(mode);
        let structure = tree.structure_bytes();
        let t0 = Instant::now();
        let (recipe, recipe_cache_hit) =
            self.cache
                .get_or_build(tree, &structure, self.config.policy, grouping);
        let recipe_ns = t0.elapsed().as_nanos() as u64;

        let chunk_values = (self.options.chunk_target_bytes as usize / 8).max(1);
        let plan: ChunkPlan =
            plan_chunks(tree, &recipe, self.config.policy, grouping, chunk_values);

        let codec = codec_for(self.config.codec);
        let params = CodecParams {
            control: self.config.control,
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };

        // Phase 1 — reorder, one parallel job per field. Each job also
        // resolves the error bound against its *whole* stream, so every
        // chunk of a field honors the same pointwise absolute bound and
        // the result is distortion-identical to the monolithic path.
        let t1 = Instant::now();
        let reordered: Vec<(Vec<f64>, Option<f64>, u64)> = fields
            .par_iter()
            .map(|(_, field)| {
                let t = Instant::now();
                let stream = recipe.apply(field.values());
                let resolved_bound = self.config.control.absolute_bound(&stream);
                (stream, resolved_bound, t.elapsed().as_nanos() as u64)
            })
            .collect();
        let reorder_ns = t1.elapsed().as_nanos() as u64;
        let reorder_cpu_ns = reordered.iter().map(|(_, _, ns)| ns).sum();

        // Phase 2 — compress, one parallel job per (field, chunk). A flat
        // job list (instead of nesting per-chunk parallelism inside a
        // per-field loop) keeps the pool saturated even when field and
        // chunk counts are individually smaller than the core count.
        let n_chunks = plan.metas.len();
        let jobs: Vec<(usize, usize)> = (0..fields.len())
            .flat_map(|f| (0..n_chunks).map(move |c| (f, c)))
            .collect();
        let t2 = Instant::now();
        let compressed: Vec<(Vec<u8>, u32, u64)> = jobs
            .par_iter()
            .map(|&(f, c)| {
                let t = Instant::now();
                let (stream, bound, _) = &reordered[f];
                let mut params = params;
                if let Some(bound) = bound {
                    params.control = ErrorControl::Absolute(*bound);
                }
                let bytes = codec.compress(&stream[plan.stream_range(c)], &params)?;
                let crc = crc32(&bytes);
                Ok((bytes, crc, t.elapsed().as_nanos() as u64))
            })
            .collect::<Result<_, CodecError>>()?;
        let encode_ns = t2.elapsed().as_nanos() as u64;
        let encode_cpu_ns = compressed.iter().map(|(_, _, ns)| ns).sum();

        // The index is only honest if every planned chunk produced exactly
        // one payload. A mismatch is a bug in this library — fail hard
        // instead of zip-truncating into an index that lies.
        if compressed.len() != fields.len() * n_chunks {
            return Err(StoreError::Internal(
                "compressed payload count mismatches the chunk plan",
            ));
        }

        // Phase 3 — deterministic layout: field-major, chunks in stream
        // order, independent of how many threads ran the jobs above.
        let mut payload: Vec<u8> = Vec::new();
        let mut entries: Vec<FieldEntry> = Vec::with_capacity(fields.len());
        for (f, (name, _)) in fields.iter().enumerate() {
            let mut chunks = Vec::with_capacity(n_chunks);
            for (c, meta) in plan.metas.iter().enumerate() {
                let (bytes, crc, _) = &compressed[f * n_chunks + c];
                let mut meta = *meta;
                meta.offset = payload.len() as u64;
                meta.len = bytes.len() as u64;
                meta.crc = *crc;
                payload.extend_from_slice(bytes);
                chunks.push(meta);
            }
            entries.push(FieldEntry {
                name: (*name).to_string(),
                resolved_bound: reordered[f].1,
                // Unbounded controls leave no resolved bound to re-encode
                // from, so the footer records the control itself — this is
                // what lets `repair --from-raw` reproduce fixed-rate /
                // fixed-precision fields bit-exactly.
                control: reordered[f].1.is_none().then_some(self.config.control),
                chunks,
                parity: Vec::new(),
            });
        }
        let payload_bytes = payload.len();

        // Phase 4 — parity section, appended after the data payload in the
        // same field-major order. One XOR chunk (v3) or `m` Reed–Solomon
        // shards (v4) per group of `width` data chunks; offsets stay
        // relative to the payload span like the data chunks', so readers
        // slice both through one code path.
        let width = self.options.parity.width() as usize;
        let mut parity_groups = 0usize;
        if width > 0 {
            for (f, entry) in entries.iter_mut().enumerate() {
                let groups = group_count(n_chunks, width);
                parity_groups += groups;
                for g in 0..groups {
                    let members = group_members(g, width, n_chunks);
                    let shards: Vec<Vec<u8>> = match self.options.parity {
                        Parity::None => unreachable!("width > 0"),
                        Parity::Xor { .. } => vec![build_group_parity(
                            members.map(|c| compressed[f * n_chunks + c].0.as_slice()),
                        )],
                        Parity::Rs { parity: m, .. } => {
                            let payloads: Vec<&[u8]> = members
                                .map(|c| compressed[f * n_chunks + c].0.as_slice())
                                .collect();
                            gf256::rs_encode(&payloads, m as usize).ok_or(StoreError::Internal(
                                "rs encode rejected validated geometry",
                            ))?
                        }
                    };
                    for bytes in shards {
                        entry.parity.push(ParityMeta {
                            offset: payload.len() as u64,
                            len: bytes.len() as u64,
                            crc: crc32(&bytes),
                        });
                        payload.extend_from_slice(&bytes);
                    }
                }
            }
        }
        let parity_bytes = payload.len() - payload_bytes;

        let header = StoreHeader {
            version: self.options.parity.store_version(),
            policy: self.config.policy,
            mode,
            codec: self.config.codec,
            value_type: ValueType::F64,
            chunk_target_bytes: self.options.chunk_target_bytes,
            parity_group_width: self.options.parity.width(),
            parity_shards: self.options.parity.shards(),
            structure,
            header_bytes: 0,
        };
        let bytes = assemble(write_header(&header), &payload, &entries);

        let raw_bytes: usize = fields.iter().map(|(_, f)| f.nbytes()).sum();
        Ok(StoreWritten {
            stats: StoreWriteStats {
                recipe_ns,
                recipe_cache_hit,
                reorder_ns,
                reorder_cpu_ns,
                encode_ns,
                encode_cpu_ns,
                encode_threads: rayon::current_num_threads(),
                n_fields: fields.len(),
                n_chunks: plan.metas.len(),
                raw_bytes,
                container_bytes: bytes.len(),
                payload_bytes,
                parity_bytes,
                parity_groups,
                metadata_bytes: bytes.len() - payload_bytes - parity_bytes,
            },
            bytes,
        })
    }
}

impl StoreWriter {
    /// [`StoreWriter::write`] followed by a crash-consistent [`persist`]
    /// to `path`: readers see either the previous file or the complete
    /// new store, never a torn intermediate.
    pub fn write_to_path(
        &self,
        fields: &[(&str, &AmrField)],
        path: &Path,
    ) -> Result<StoreWritten, StoreError> {
        let out = self.write(fields)?;
        persist(&out.bytes, path)
            .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
        Ok(out)
    }
}

/// Atomically replaces `path` with `bytes`: write `<path>.tmp`, fsync the
/// file, rename over the target, then fsync the parent directory so the
/// rename itself is durable. A crash at any point leaves either the old
/// file or the new one — the v4 commit record covers the one remaining
/// hole (a torn `.tmp` copied into place by some other tool).
pub fn persist(bytes: &[u8], path: &Path) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = tmp_path(path);
    let result = (|| {
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// `<path>.tmp` — appended, not an extension swap, so `store.zst` and
/// `store` cannot collide with a sibling's temp file.
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    // Directory handles are not fsync-able portably; the rename is still
    // atomic on the filesystems we target.
    Ok(())
}

/// Chunked-store entry point hung off the core [`Pipeline`]: `pack` is to
/// the v2 store what [`Pipeline::compress`] is to the v1 container.
pub trait PipelineStoreExt {
    /// Packs `fields` into a chunked, indexed v2 store using this
    /// pipeline's configuration and default chunking.
    fn pack(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError>;
}

impl PipelineStoreExt for Pipeline {
    fn pack(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError> {
        StoreWriter::new(self.config()).write(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zmesh_amr::{datasets, StorageMode};

    fn small_fields(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
    }

    #[test]
    fn write_produces_parseable_store() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(2048);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert!(crate::format::is_store(&out.bytes));
        assert!(out.stats.n_chunks >= 2, "want multiple chunks");
        assert_eq!(out.stats.n_fields, ds.fields.len());
        assert_eq!(
            out.stats.container_bytes,
            out.stats.payload_bytes + out.stats.parity_bytes + out.stats.metadata_bytes
        );
        assert!(out.stats.parity_groups > 0);
        assert!(out.stats.ratio() > 1.0);
    }

    #[test]
    fn parity_overhead_is_bounded_by_group_width() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity_group_width(4);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert!(out.stats.parity_bytes > 0);
        // Each group's parity chunk is as long as its *largest* member, so
        // the overhead can exceed 1/width when chunk sizes vary — but never
        // by more than ~2x for these well-behaved payloads.
        assert!(
            out.stats.parity_overhead() <= 2.0 / 4.0,
            "overhead {} too large",
            out.stats.parity_overhead()
        );
    }

    #[test]
    fn zero_parity_width_writes_a_v2_store() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(2048)
            .with_parity_group_width(0);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert_eq!(out.stats.parity_bytes, 0);
        assert_eq!(out.stats.parity_groups, 0);
        let (header, fields, _) = crate::format::open(&out.bytes).unwrap();
        assert_eq!(header.version, 2);
        assert!(!header.capabilities().parity);
        assert!(fields.iter().all(|f| f.parity.is_empty()));
    }

    #[test]
    fn rs_parity_writes_a_v4_store_with_m_shards_per_group() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity(Parity::Rs { data: 4, parity: 2 });
        let out = writer.write(&small_fields(&ds)).unwrap();
        let (header, fields, _) = crate::format::open(&out.bytes).unwrap();
        assert_eq!(header.version, 4);
        assert_eq!(header.scheme(), Parity::Rs { data: 4, parity: 2 });
        assert_eq!(header.capabilities().erasure_budget, 2);
        let groups = group_count(out.stats.n_chunks, 4);
        for f in &fields {
            assert_eq!(f.parity.len(), groups * 2);
        }
        // Two shards per group cost roughly twice one XOR chunk.
        assert!(out.stats.parity_overhead() > 0.0);
        assert!(out.stats.parity_overhead() <= 2.0 * 2.0 / 4.0);
    }

    #[test]
    fn rs_output_is_byte_identical_at_any_parallelism() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(1024)
            .with_parity(Parity::Rs { data: 4, parity: 3 });
        let parallel = writer.write(&small_fields(&ds)).unwrap();
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| writer.write(&small_fields(&ds)).unwrap());
        assert_eq!(parallel.bytes, serial.bytes);
    }

    #[test]
    fn invalid_parity_geometry_is_rejected_up_front() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        for parity in [
            Parity::Rs { data: 0, parity: 2 },
            Parity::Rs { data: 8, parity: 0 },
            Parity::Rs {
                data: 250,
                parity: 10,
            },
            Parity::Xor { width: 0 },
        ] {
            let writer = StoreWriter::new(CompressionConfig::zmesh_default()).with_parity(parity);
            assert!(
                matches!(
                    writer.write(&small_fields(&ds)),
                    Err(StoreError::InvalidOptions(_))
                ),
                "{parity:?} must be rejected"
            );
        }
    }

    #[test]
    fn persist_replaces_the_target_atomically() {
        let dir = std::env::temp_dir().join(format!("zmesh-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.zms");
        std::fs::write(&path, b"old contents").unwrap();
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let out = writer.write_to_path(&small_fields(&ds), &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), out.bytes);
        assert!(
            !tmp_path(&path).exists(),
            "temp file must not survive a successful persist"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_write_hits_the_recipe_cache() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let first = writer.write(&small_fields(&ds)).unwrap();
        let second = writer.write(&small_fields(&ds)).unwrap();
        assert!(!first.stats.recipe_cache_hit);
        assert!(second.stats.recipe_cache_hit);
        assert_eq!(writer.cache().stats().hits, 1);
    }

    #[test]
    fn output_is_byte_identical_at_any_parallelism() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(1024);
        let parallel = writer.write(&small_fields(&ds)).unwrap();
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| writer.write(&small_fields(&ds)).unwrap());
        assert_eq!(parallel.bytes, serial.bytes);
        assert!(parallel.stats.n_chunks >= 4);
    }

    #[test]
    fn stats_split_wall_and_cpu_time() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Small);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(4096);
        let out = writer.write(&small_fields(&ds)).unwrap();
        let s = out.stats;
        assert!(s.encode_ns > 0);
        assert!(s.encode_cpu_ns > 0);
        assert!(s.reorder_cpu_ns > 0);
        assert!(s.encode_threads >= 1);
        assert!(s.encode_parallelism() > 0.0);
        // CPU time is a sum over jobs: with more than one worker it can
        // exceed wall time, but it can never be wildly below it (each
        // job's time is contained in the phase).
        assert!(
            s.encode_cpu_ns <= s.encode_ns.saturating_mul(s.encode_threads as u64 + 1),
            "cpu {} vs wall {} on {} threads",
            s.encode_cpu_ns,
            s.encode_ns,
            s.encode_threads
        );
    }

    #[test]
    fn rejects_mixed_inputs() {
        let a = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let b = datasets::front2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let mixed = vec![("x", &a.fields[0].1), ("y", &b.fields[0].1)];
        assert!(matches!(
            writer.write(&mixed),
            Err(StoreError::Zmesh(ZmeshError::Mismatch(_)))
        ));
        assert!(writer.write(&[]).is_err());
    }

    #[test]
    fn pipeline_pack_wires_through() {
        let ds = datasets::advect2d(StorageMode::LeafOnly, datasets::Scale::Tiny);
        let out = Pipeline::new(CompressionConfig::zmesh_default())
            .pack(&small_fields(&ds))
            .unwrap();
        assert!(crate::format::is_store(&out.bytes));
    }
}
