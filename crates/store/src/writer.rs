//! The store writer: reorder → chunk → compress → indexed container.

use crate::cache::RecipeCache;
use crate::chunk::{plan_chunks, ChunkPlan, DEFAULT_CHUNK_TARGET_BYTES};
use crate::format::{assemble, write_header, FieldEntry, StoreError, StoreHeader};
use std::sync::Arc;
use std::time::Instant;
use zmesh::{codec_for, crc32, CompressionConfig, GroupingMode, Pipeline, ZmeshError};
use zmesh_amr::AmrField;
use zmesh_codecs::{CodecParams, ValueType};

/// Wall-time and size accounting for one store write.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreWriteStats {
    /// Nanoseconds to obtain the restore recipe (build or cache hit).
    pub recipe_ns: u64,
    /// Whether the recipe came from the cache.
    pub recipe_cache_hit: bool,
    /// Nanoseconds to permute all fields into stream order.
    pub reorder_ns: u64,
    /// Nanoseconds inside the codec across all chunks and fields.
    pub encode_ns: u64,
    /// Fields written.
    pub n_fields: usize,
    /// Chunks per field.
    pub n_chunks: usize,
    /// Uncompressed bytes across all fields.
    pub raw_bytes: usize,
    /// Total store size.
    pub container_bytes: usize,
    /// Compressed chunk payload bytes.
    pub payload_bytes: usize,
    /// Header + footer + trailer bytes (everything except payloads).
    pub metadata_bytes: usize,
}

impl StoreWriteStats {
    /// Compression ratio over the full store, metadata included.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.container_bytes as f64
    }
}

/// Output of [`StoreWriter::write`].
#[derive(Debug, Clone)]
pub struct StoreWritten {
    /// The serialized store.
    pub bytes: Vec<u8>,
    /// Timing and size accounting.
    pub stats: StoreWriteStats,
}

/// Writes chunked, indexed v2 stores. Reusing one writer (or sharing its
/// [`RecipeCache`]) across fields, timesteps, or whole runs amortizes the
/// recipe build — the Nth write against the same mesh skips the parallel
/// sort entirely.
#[derive(Debug, Clone)]
pub struct StoreWriter {
    config: CompressionConfig,
    chunk_target_bytes: u32,
    cache: Arc<RecipeCache>,
}

impl StoreWriter {
    /// Writer with [`DEFAULT_CHUNK_TARGET_BYTES`] and a private cache.
    pub fn new(config: CompressionConfig) -> Self {
        Self {
            config,
            chunk_target_bytes: DEFAULT_CHUNK_TARGET_BYTES,
            cache: Arc::new(RecipeCache::new()),
        }
    }

    /// Sets the uncompressed bytes each chunk targets (min 8 = one value).
    pub fn with_chunk_target_bytes(mut self, bytes: u32) -> Self {
        self.chunk_target_bytes = bytes.max(8);
        self
    }

    /// Shares a recipe cache with other writers/readers.
    pub fn with_cache(mut self, cache: Arc<RecipeCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The writer's recipe cache.
    pub fn cache(&self) -> &Arc<RecipeCache> {
        &self.cache
    }

    /// The compression configuration in use.
    pub fn config(&self) -> CompressionConfig {
        self.config
    }

    /// Compresses `fields` (sharing one mesh) into a chunked, indexed
    /// store. The stream framing (and hence the index size) is identical
    /// for every ordering policy; only payload bytes differ.
    pub fn write(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError> {
        let (_, first) = fields
            .first()
            .ok_or(StoreError::Zmesh(ZmeshError::Mismatch(
                "no fields to write",
            )))?;
        let tree = first.tree();
        let mode = first.mode();
        for (_, f) in fields {
            if !Arc::ptr_eq(f.tree(), tree) {
                return Err(ZmeshError::Mismatch("fields on different trees").into());
            }
            if f.mode() != mode {
                return Err(ZmeshError::Mismatch("fields with different storage modes").into());
            }
        }

        let grouping = GroupingMode::from_storage_mode(mode);
        let structure = tree.structure_bytes();
        let t0 = Instant::now();
        let (recipe, recipe_cache_hit) =
            self.cache
                .get_or_build(tree, &structure, self.config.policy, grouping);
        let recipe_ns = t0.elapsed().as_nanos() as u64;

        let chunk_values = (self.chunk_target_bytes as usize / 8).max(1);
        let plan: ChunkPlan =
            plan_chunks(tree, &recipe, self.config.policy, grouping, chunk_values);

        let codec = codec_for(self.config.codec);
        let params = CodecParams {
            control: self.config.control,
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };

        let mut payload: Vec<u8> = Vec::new();
        let mut entries: Vec<FieldEntry> = Vec::with_capacity(fields.len());
        let mut reorder_ns = 0u64;
        let mut encode_ns = 0u64;
        for (name, field) in fields {
            let t1 = Instant::now();
            let stream = recipe.apply(field.values());
            reorder_ns += t1.elapsed().as_nanos() as u64;

            let t2 = Instant::now();
            let chunked = codec.compress_chunks(&stream, &params, chunk_values)?;
            encode_ns += t2.elapsed().as_nanos() as u64;
            debug_assert_eq!(chunked.payloads.len(), plan.metas.len());

            let mut chunks = Vec::with_capacity(plan.metas.len());
            for (meta, bytes) in plan.metas.iter().zip(&chunked.payloads) {
                let mut meta = *meta;
                meta.offset = payload.len() as u64;
                meta.len = bytes.len() as u64;
                meta.crc = crc32(bytes);
                payload.extend_from_slice(bytes);
                chunks.push(meta);
            }
            entries.push(FieldEntry {
                name: (*name).to_string(),
                resolved_bound: chunked.resolved_bound,
                chunks,
            });
        }

        let header = StoreHeader {
            policy: self.config.policy,
            mode,
            codec: self.config.codec,
            value_type: ValueType::F64,
            chunk_target_bytes: self.chunk_target_bytes,
            structure,
            header_bytes: 0,
        };
        let bytes = assemble(write_header(&header), &payload, &entries);

        let raw_bytes: usize = fields.iter().map(|(_, f)| f.nbytes()).sum();
        let payload_bytes = payload.len();
        Ok(StoreWritten {
            stats: StoreWriteStats {
                recipe_ns,
                recipe_cache_hit,
                reorder_ns,
                encode_ns,
                n_fields: fields.len(),
                n_chunks: plan.metas.len(),
                raw_bytes,
                container_bytes: bytes.len(),
                payload_bytes,
                metadata_bytes: bytes.len() - payload_bytes,
            },
            bytes,
        })
    }
}

/// Chunked-store entry point hung off the core [`Pipeline`]: `pack` is to
/// the v2 store what [`Pipeline::compress`] is to the v1 container.
pub trait PipelineStoreExt {
    /// Packs `fields` into a chunked, indexed v2 store using this
    /// pipeline's configuration and default chunking.
    fn pack(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError>;
}

impl PipelineStoreExt for Pipeline {
    fn pack(&self, fields: &[(&str, &AmrField)]) -> Result<StoreWritten, StoreError> {
        StoreWriter::new(self.config()).write(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zmesh_amr::{datasets, StorageMode};

    fn small_fields(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
    }

    #[test]
    fn write_produces_parseable_store() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer =
            StoreWriter::new(CompressionConfig::zmesh_default()).with_chunk_target_bytes(2048);
        let out = writer.write(&small_fields(&ds)).unwrap();
        assert!(crate::format::is_store(&out.bytes));
        assert!(out.stats.n_chunks >= 2, "want multiple chunks");
        assert_eq!(out.stats.n_fields, ds.fields.len());
        assert_eq!(
            out.stats.container_bytes,
            out.stats.payload_bytes + out.stats.metadata_bytes
        );
        assert!(out.stats.ratio() > 1.0);
    }

    #[test]
    fn second_write_hits_the_recipe_cache() {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let first = writer.write(&small_fields(&ds)).unwrap();
        let second = writer.write(&small_fields(&ds)).unwrap();
        assert!(!first.stats.recipe_cache_hit);
        assert!(second.stats.recipe_cache_hit);
        assert_eq!(writer.cache().stats().hits, 1);
    }

    #[test]
    fn rejects_mixed_inputs() {
        let a = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let b = datasets::front2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let writer = StoreWriter::new(CompressionConfig::zmesh_default());
        let mixed = vec![("x", &a.fields[0].1), ("y", &b.fields[0].1)];
        assert!(matches!(
            writer.write(&mixed),
            Err(StoreError::Zmesh(ZmeshError::Mismatch(_)))
        ));
        assert!(writer.write(&[]).is_err());
    }

    #[test]
    fn pipeline_pack_wires_through() {
        let ds = datasets::advect2d(StorageMode::LeafOnly, datasets::Scale::Tiny);
        let out = Pipeline::new(CompressionConfig::zmesh_default())
            .pack(&small_fields(&ds))
            .unwrap();
        assert!(crate::format::is_store(&out.bytes));
    }
}
