//! Container formats v2/v3/v4 (`ZMS2`): byte layout, typed errors, and
//! the header/footer (de)serializers.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ header   magic "ZMS2" · version u16 · policy u8 · mode u8 ·      │
//! │          codec u8 · value-type u8 · chunk-target-bytes u32 ·     │
//! │          [v3+: parity group width u32] ·                         │
//! │          [v4: parity shard count u32] ·                          │
//! │          structure len u64 · structure bytes                     │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ payload  per field, per chunk: one self-describing codec stream  │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ parity   [v3] per field, per group: XOR parity payload           │
//! │          [v4] per field, per group: m Reed–Solomon shards        │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ footer   per field: name (u16 + bytes) · control tag u8 ·        │
//! │          control payload f64 · chunk count u64 ·                 │
//! │          chunk metas (64 B each) ·                               │
//! │          [v3+: parity count u64 · parity metas (20 B each)]      │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ trailer  footer offset u64 · crc32(header ∥ footer) u32 ·        │
//! │          magic "ZMSI"                                            │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ commit   [v4] magic "ZMSCMT01" · footer crc u32 ·                │
//! │          crc32(first 12 commit bytes) u32                        │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Version negotiation: this crate writes v2 (no parity), v3 (XOR
//! parity), or [`STORE_VERSION`] = v4 (Reed–Solomon parity + commit
//! record), and reads every version in
//! [`MIN_STORE_VERSION`]`..=`[`STORE_VERSION`]. What a parsed store can do
//! is exposed as [`StoreCapabilities`] — a v2 store simply has no parity,
//! so it opens, queries, and unpacks exactly as before, and scrub reports
//! "no parity available" instead of erroring.
//!
//! The v4 **commit record** is the crash-consistency witness: the writer
//! emits it last, so a store whose tail is not a valid commit record was
//! torn mid-write ([`StoreError::Torn`]) rather than corrupted at rest —
//! readers can tell "re-pack from raw data" apart from "bytes rotted".
//!
//! Every chunk/parity meta is **fixed width**, and the variable parts of
//! the footer (names, structure) do not depend on the ordering policy — so
//! the total metadata size is policy-independent, preserving the paper's
//! no-recipe-storage claim: the restore recipe is regenerated from
//! `structure`, never stored. Parity *payload* bytes scale with compressed
//! payload size (≈ 1/group-width), not with the permutation.

use crate::chunk::{ChunkMeta, CHUNK_META_BYTES};
use crate::gf256;
use crate::parity::{group_count, Parity, ParityMeta, PARITY_META_BYTES};
use crate::source::{self, ByteSource, SliceSource};
use std::fmt;
use zmesh::{crc32, GroupingMode, OrderingPolicy, ZmeshError};
use zmesh_amr::{AmrError, StorageMode};
use zmesh_codecs::{CodecError, CodecKind, ErrorControl, ValueType};

/// Leading magic of a v2/v3 store.
pub const STORE_MAGIC: [u8; 4] = *b"ZMS2";
/// Trailing magic of the index trailer.
pub const INDEX_MAGIC: [u8; 4] = *b"ZMSI";
/// Newest format version this crate writes (v4: Reed–Solomon parity +
/// commit record; v3/v2 are still emitted for XOR/no parity).
pub const STORE_VERSION: u16 = 4;
/// Oldest format version this crate still reads (v2: no parity section).
pub const MIN_STORE_VERSION: u16 = 2;
/// Fixed trailer size: footer offset + footer crc + index magic.
pub const TRAILER_BYTES: usize = 8 + 4 + 4;
/// Magic opening the v4 commit record.
pub const COMMIT_MAGIC: [u8; 8] = *b"ZMSCMT01";
/// Fixed commit-record size: magic + footer crc + self crc.
pub const COMMIT_RECORD_BYTES: usize = 8 + 4 + 4;

/// Typed failures from writing, opening, or querying a store. Each variant
/// maps to a distinct CLI exit code (see `zmesh-cli`).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The buffer does not start with [`STORE_MAGIC`] / end with
    /// [`INDEX_MAGIC`].
    BadMagic,
    /// The container declares a version this reader does not understand.
    UnsupportedVersion(u16),
    /// The buffer ends before a structure the header/footer promises.
    Truncated {
        /// Bytes the parser needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Structurally invalid metadata (bad tags, inconsistent offsets…).
    Corrupt(&'static str),
    /// A chunk payload failed its CRC check.
    ChunkCrc {
        /// Field the chunk belongs to.
        field: String,
        /// Chunk index within the field.
        chunk: usize,
    },
    /// A parity chunk failed its CRC check (the protected data chunks may
    /// all be fine, but the store is no longer fully self-healing).
    ParityCrc {
        /// Field the parity group belongs to.
        field: String,
        /// Parity group index within the field.
        group: usize,
    },
    /// The footer failed its CRC check.
    IndexCrc,
    /// A v4 store is missing its commit record: the write never completed
    /// (crash or truncation mid-`pack`), as opposed to completed-then-
    /// corrupted. Recoverable by re-encoding from the raw dataset
    /// (`zmesh repair --from-raw`).
    Torn,
    /// Invalid [`crate::StoreWriteOptions`] (caller error, not corrupt
    /// input) — e.g. a Reed–Solomon geometry with `k + m > 256`.
    InvalidOptions(&'static str),
    /// An underlying filesystem operation failed while persisting a store.
    Io(String),
    /// The destination filesystem ran out of space (`ENOSPC`) while
    /// persisting a store. Separated from [`StoreError::Io`] because it is
    /// the one write failure an operator fixes by freeing space and
    /// rerunning — the abort is clean: no temp file survives and a
    /// pre-existing destination is untouched.
    NoSpace(String),
    /// An underlying read failed in a way that is plausibly transient
    /// (`EINTR`, `EAGAIN`, `EIO`, timeouts): the same read may succeed if
    /// retried. [`crate::StoreReader`] retries these under its
    /// [`crate::RetryPolicy`] before surfacing them.
    IoTransient(String),
    /// A requested field name is not present.
    UnknownField(String),
    /// A query argument is malformed (inverted box, empty level mask…).
    BadQuery(&'static str),
    /// An internal invariant of this library was violated (a bug in
    /// zmesh-store, not in the input). Raised instead of silently
    /// truncating when, e.g., the number of compressed chunk payloads
    /// disagrees with the chunk plan.
    Internal(&'static str),
    /// Underlying codec failure.
    Codec(CodecError),
    /// Underlying AMR structure failure.
    Amr(AmrError),
    /// Failure from the core pipeline layer.
    Zmesh(ZmeshError),
}

impl StoreError {
    /// Whether retrying the failed operation may succeed — true only for
    /// [`StoreError::IoTransient`]. Corruption, truncation, and permanent
    /// I/O failures are never transient.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::IoTransient(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a ZMS2 store"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Truncated { needed, have } => {
                write!(f, "truncated store: needed {needed} bytes, have {have}")
            }
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::ChunkCrc { field, chunk } => {
                write!(f, "crc mismatch in field {field:?} chunk {chunk}")
            }
            StoreError::ParityCrc { field, group } => {
                write!(f, "crc mismatch in field {field:?} parity group {group}")
            }
            StoreError::IndexCrc => write!(f, "crc mismatch in store index"),
            StoreError::Torn => write!(
                f,
                "torn store: the write never completed (missing or invalid commit record)"
            ),
            StoreError::InvalidOptions(what) => write!(f, "invalid store options: {what}"),
            StoreError::Io(what) => write!(f, "i/o: {what}"),
            StoreError::NoSpace(what) => write!(f, "no space left on device: {what}"),
            StoreError::IoTransient(what) => write!(f, "transient i/o: {what}"),
            StoreError::UnknownField(name) => write!(f, "no field named {name:?} in store"),
            StoreError::BadQuery(what) => write!(f, "bad query: {what}"),
            StoreError::Internal(what) => {
                write!(
                    f,
                    "internal store error: {what} (this is a zmesh-store bug)"
                )
            }
            StoreError::Codec(e) => write!(f, "codec: {e}"),
            StoreError::Amr(e) => write!(f, "amr: {e}"),
            StoreError::Zmesh(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::Amr(e) => Some(e),
            StoreError::Zmesh(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<AmrError> for StoreError {
    fn from(e: AmrError) -> Self {
        StoreError::Amr(e)
    }
}

impl From<ZmeshError> for StoreError {
    fn from(e: ZmeshError) -> Self {
        StoreError::Zmesh(e)
    }
}

/// What a parsed store of some version can do — the read path branches on
/// these instead of comparing raw version numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCapabilities {
    /// Chunks are grouped under parity; damaged chunks per group are
    /// reconstructible up to `erasure_budget` (v3/v4 with nonzero width).
    pub parity: bool,
    /// Maximum CRC-failing data chunks per group that parity alone can
    /// rebuild: `0` (v2), `1` (v3 XOR), or `m` (v4 Reed–Solomon).
    pub erasure_budget: u32,
}

/// Parsed fixed header of a store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHeader {
    /// Format version the store declares (within
    /// [`MIN_STORE_VERSION`]`..=`[`STORE_VERSION`]).
    pub version: u16,
    /// Stream ordering the payloads were written under.
    pub policy: OrderingPolicy,
    /// AMR storage convention of the fields.
    pub mode: StorageMode,
    /// Codec all chunks use.
    pub codec: CodecKind,
    /// Source precision of the values.
    pub value_type: ValueType,
    /// Uncompressed bytes each chunk targets (the last chunk may be short).
    pub chunk_target_bytes: u32,
    /// Data chunks per parity group; `0` means no parity section (always
    /// `0` for v2 stores).
    pub parity_group_width: u32,
    /// Parity shards per group: `0` without parity, `1` for v3 XOR, `m`
    /// for v4 Reed–Solomon.
    pub parity_shards: u32,
    /// Serialized `AmrTree` structure — the only mesh metadata stored; the
    /// restore recipe is regenerated from it.
    pub structure: Vec<u8>,
    /// Total serialized header size in bytes.
    pub header_bytes: usize,
}

impl StoreHeader {
    /// Grouping mode implied by the storage mode.
    pub fn grouping(&self) -> GroupingMode {
        GroupingMode::from_storage_mode(self.mode)
    }

    /// The erasure-protection scheme this store was written under.
    pub fn scheme(&self) -> Parity {
        if self.version >= 4 {
            Parity::Rs {
                data: self.parity_group_width,
                parity: self.parity_shards,
            }
        } else if self.version >= 3 && self.parity_group_width > 0 {
            Parity::Xor {
                width: self.parity_group_width,
            }
        } else {
            Parity::None
        }
    }

    /// What this store's version/parameters support.
    pub fn capabilities(&self) -> StoreCapabilities {
        let budget = self.scheme().shards();
        StoreCapabilities {
            parity: budget > 0,
            erasure_budget: budget,
        }
    }
}

/// One field's footer entry: name, resolved bound, chunk + parity index.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldEntry {
    /// Field name.
    pub name: String,
    /// Absolute pointwise error bound every chunk of this field honors
    /// (`None` under fixed-rate / fixed-precision control).
    pub resolved_bound: Option<f64>,
    /// The *original* precision control, recorded only when no resolved
    /// absolute bound exists to reproduce the encode (fixed-rate /
    /// fixed-precision fields; control tags 2/3 in the footer). Bounded
    /// controls need no record: re-encoding with
    /// `Absolute(resolved_bound)` is exactly what the writer did. `None`
    /// with `resolved_bound == None` marks a store written before control
    /// tagging — `repair --from-raw` cannot re-encode such fields and says
    /// so explicitly.
    pub control: Option<ErrorControl>,
    /// Per-chunk metadata, in stream order.
    pub chunks: Vec<ChunkMeta>,
    /// Per-parity-shard metadata (empty for v2 stores / parity disabled);
    /// group `g` protects data chunks `g*width..(g+1)*width` and owns
    /// shards `g*m..(g+1)*m` of this vector (`m = 1` for v3 XOR, so the
    /// v3 index is simply the group index).
    pub parity: Vec<ParityMeta>,
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over the serialized store.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::Corrupt("length overflow"))?;
        if end > self.bytes.len() {
            return Err(StoreError::Truncated {
                needed: end,
                have: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Serializes the fixed header for `header.version` (v2 omits the parity
/// group width, so width-0 v2 output stays byte-identical to historical
/// v2 writers).
pub(crate) fn write_header(header: &StoreHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + 4 + 4 + 4 + 8 + header.structure.len());
    out.extend_from_slice(&STORE_MAGIC);
    put_u16(&mut out, header.version);
    out.push(header.policy.tag());
    out.push(header.mode.tag());
    out.push(header.codec.tag());
    out.push(header.value_type.tag());
    put_u32(&mut out, header.chunk_target_bytes);
    if header.version >= 3 {
        put_u32(&mut out, header.parity_group_width);
    }
    if header.version >= 4 {
        put_u32(&mut out, header.parity_shards);
    }
    put_u64(&mut out, header.structure.len() as u64);
    out.extend_from_slice(&header.structure);
    out
}

/// Parses the fixed header from the front of `bytes`, accepting every
/// version in [`MIN_STORE_VERSION`]`..=`[`STORE_VERSION`].
pub(crate) fn read_header(bytes: &[u8]) -> Result<StoreHeader, StoreError> {
    let mut c = Cursor::new(bytes);
    if c.take(4)? != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = c.u16()?;
    if !(MIN_STORE_VERSION..=STORE_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let policy = OrderingPolicy::from_tag(c.u8()?).ok_or(StoreError::Corrupt("policy tag"))?;
    let mode = StorageMode::from_tag(c.u8()?).ok_or(StoreError::Corrupt("storage-mode tag"))?;
    let codec = CodecKind::from_tag(c.u8()?).ok_or(StoreError::Corrupt("codec tag"))?;
    let value_type = ValueType::from_tag(c.u8()?).ok_or(StoreError::Corrupt("value-type tag"))?;
    let chunk_target_bytes = c.u32()?;
    if chunk_target_bytes == 0 {
        return Err(StoreError::Corrupt("zero chunk target"));
    }
    let parity_group_width = if version >= 3 { c.u32()? } else { 0 };
    let parity_shards = if version >= 4 {
        let m = c.u32()?;
        if parity_group_width == 0 || m == 0 {
            return Err(StoreError::Corrupt("v4 store without parity geometry"));
        }
        if parity_group_width as usize + m as usize > gf256::MAX_SHARDS {
            return Err(StoreError::Corrupt("parity geometry exceeds 256 shards"));
        }
        m
    } else {
        u32::from(parity_group_width > 0)
    };
    let structure_len = c.u64()? as usize;
    let structure = c.take(structure_len)?.to_vec();
    Ok(StoreHeader {
        version,
        policy,
        mode,
        codec,
        value_type,
        chunk_target_bytes,
        parity_group_width,
        parity_shards,
        structure,
        header_bytes: c.pos(),
    })
}

/// Parses just the fixed header from the front of `bytes`, without
/// requiring a footer, trailer, or commit record. This is the only parse
/// that works on a **torn** store — `zmesh repair --from-raw` uses it to
/// recover the write parameters for a full re-encode.
pub fn peek_header(bytes: &[u8]) -> Result<StoreHeader, StoreError> {
    read_header(bytes)
}

/// Serializes the footer (field entries) for `version`.
pub(crate) fn write_footer(fields: &[FieldEntry], version: u16) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, fields.len() as u32);
    for field in fields {
        put_u16(&mut out, field.name.len() as u16);
        out.extend_from_slice(field.name.as_bytes());
        // Control tag + one f64 payload slot. Tag 1 (resolved absolute
        // bound) keeps historical bytes; tags 2/3 reuse the same slot to
        // persist the original unbounded control instead of writing the
        // legacy "nothing recorded" tag 0.
        let (tag, payload) = match (field.resolved_bound, field.control) {
            (Some(bound), _) => (1u8, bound.to_bits()),
            (None, Some(ErrorControl::FixedRate(rate))) => (2, rate.to_bits()),
            (None, Some(ErrorControl::FixedPrecision(p))) => (3, u64::from(p)),
            (None, _) => (0, 0),
        };
        out.push(tag);
        put_u64(&mut out, payload);
        put_u64(&mut out, field.chunks.len() as u64);
        for chunk in &field.chunks {
            chunk.write(&mut out);
        }
        if version >= 3 {
            put_u64(&mut out, field.parity.len() as u64);
            for parity in &field.parity {
                parity.write(&mut out);
            }
        }
    }
    out
}

/// Parses the footer of a `version` store.
pub(crate) fn read_footer(bytes: &[u8], version: u16) -> Result<Vec<FieldEntry>, StoreError> {
    let mut c = Cursor::new(bytes);
    let n_fields = c.u32()? as usize;
    let mut fields = Vec::with_capacity(n_fields.min(1024));
    for _ in 0..n_fields {
        let name_len = c.u16()? as usize;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| StoreError::Corrupt("field name not utf-8"))?
            .to_string();
        let control_tag = c.u8()?;
        let control_bits = c.u64()?;
        let (resolved_bound, control) = match control_tag {
            0 => (None, None),
            1 => (Some(f64::from_bits(control_bits)), None),
            2 => (
                None,
                Some(ErrorControl::FixedRate(f64::from_bits(control_bits))),
            ),
            3 => {
                let p = u32::try_from(control_bits)
                    .map_err(|_| StoreError::Corrupt("fixed-precision payload"))?;
                (None, Some(ErrorControl::FixedPrecision(p)))
            }
            _ => return Err(StoreError::Corrupt("control tag")),
        };
        let n_chunks = c.u64()? as usize;
        // Bound allocation by what the *unread* buffer can actually hold;
        // both counts are attacker-controlled, so every size computation
        // on them is checked/saturating (an overflowed product would
        // otherwise pass a `> len` guard and reserve absurd capacity).
        let remaining = bytes.len() - c.pos();
        if n_chunks.saturating_mul(CHUNK_META_BYTES) > remaining {
            return Err(StoreError::Corrupt("chunk count exceeds footer"));
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            chunks.push(ChunkMeta::read(&mut c)?);
        }
        let mut parity = Vec::new();
        if version >= 3 {
            let n_parity = c.u64()? as usize;
            let remaining = bytes.len() - c.pos();
            if n_parity.saturating_mul(PARITY_META_BYTES) > remaining {
                return Err(StoreError::Corrupt("parity count exceeds footer"));
            }
            parity.reserve(n_parity);
            for _ in 0..n_parity {
                parity.push(ParityMeta::read(&mut c)?);
            }
        }
        fields.push(FieldEntry {
            name,
            resolved_bound,
            control,
            chunks,
            parity,
        });
    }
    if c.pos() != bytes.len() {
        return Err(StoreError::Corrupt("trailing bytes after footer"));
    }
    Ok(fields)
}

/// Assembles a complete store from its parts (`payload` already contains
/// the parity section, when there is one). v4 stores get the trailing
/// commit record — written last, so its presence proves the store bytes
/// before it are complete.
pub(crate) fn assemble(header_bytes: Vec<u8>, payload: &[u8], fields: &[FieldEntry]) -> Vec<u8> {
    let tail = container_tail(&header_bytes, payload.len() as u64, fields);
    let mut out = header_bytes;
    out.extend_from_slice(payload);
    out.extend_from_slice(&tail);
    out
}

/// Everything after the payload span — footer, trailer, and (v4) commit
/// record — for a store whose header is `header_bytes` and whose payload
/// (data chunks + parity section) is `payload_len` bytes. [`assemble`] and
/// the streaming writer both emit `header ∥ payload ∥ container_tail(…)`,
/// so the two paths are byte-identical by construction.
pub(crate) fn container_tail(
    header_bytes: &[u8],
    payload_len: u64,
    fields: &[FieldEntry],
) -> Vec<u8> {
    let version = u16::from_le_bytes(header_bytes[4..6].try_into().expect("header present"));
    debug_assert_eq!(fields_header_len(header_bytes), header_bytes.len());
    let footer_offset = header_bytes.len() as u64 + payload_len;
    let footer = write_footer(fields, version);
    let mut crc_bytes = header_bytes.to_vec();
    crc_bytes.extend_from_slice(&footer);
    let crc = crc32(&crc_bytes);
    let mut out = footer;
    put_u64(&mut out, footer_offset);
    put_u32(&mut out, crc);
    out.extend_from_slice(&INDEX_MAGIC);
    if version >= 4 {
        let start = out.len();
        out.extend_from_slice(&COMMIT_MAGIC);
        put_u32(&mut out, crc);
        let self_crc = crc32(&out[start..start + 12]);
        put_u32(&mut out, self_crc);
        debug_assert_eq!(out.len() - start, COMMIT_RECORD_BYTES);
    }
    out
}

/// Header length of an assembled buffer (used to scope the index CRC).
fn fields_header_len(bytes: &[u8]) -> usize {
    // Magic(4) + version(2) + tags(4) + chunk target(4)
    // + [v3+: parity width(4)] + [v4: parity shards(4)] + structure len(8).
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("header present"));
    let fixed = match version {
        0..=2 => 22,
        3 => 26,
        _ => 30,
    };
    let structure_len =
        u64::from_le_bytes(bytes[fixed - 8..fixed].try_into().expect("header present")) as usize;
    fixed + structure_len
}

/// Splits an assembled store into `(header, footer fields, payload span)`,
/// verifying magics and the index CRC. Public (re-exported as
/// `zmesh_store::open_parts`) so tools and fuzzers can parse the framing
/// without building a full [`crate::StoreReader`]; the bytes are treated
/// as untrusted — any input returns a typed error, never a panic.
pub fn open(
    bytes: &[u8],
) -> Result<(StoreHeader, Vec<FieldEntry>, std::ops::Range<usize>), StoreError> {
    // The slice path is the ranged path over a zero-copy source — one
    // parser, so the two can never drift in validation order or typed
    // errors (the panic-safety property suite pins this equivalence).
    let (header, fields, payload) = open_source(&SliceSource::new(bytes))?;
    Ok((header, fields, payload.start as usize..payload.end as usize))
}

/// Validates the v4 commit record at the tail of `src` and returns the
/// committed body length. A missing or invalid record means the write
/// never finished — [`StoreError::Torn`]; a valid record whose footer CRC
/// disagrees with the index trailer means the write finished and the
/// bytes changed afterwards — corrupt.
fn split_committed_source<S: ByteSource + ?Sized>(src: &S, total: u64) -> Result<u64, StoreError> {
    let Some(body_len) = total.checked_sub(COMMIT_RECORD_BYTES as u64) else {
        return Err(StoreError::Torn);
    };
    let record = src.read_vec(body_len, COMMIT_RECORD_BYTES)?;
    if record[..8] != COMMIT_MAGIC {
        return Err(StoreError::Torn);
    }
    let self_crc = u32::from_le_bytes(record[12..16].try_into().unwrap());
    if crc32(&record[..12]) != self_crc {
        return Err(StoreError::Torn);
    }
    if body_len < TRAILER_BYTES as u64 {
        return Err(StoreError::Torn);
    }
    let trailer = src.read_vec(body_len - TRAILER_BYTES as u64, TRAILER_BYTES)?;
    if trailer[12..16] != INDEX_MAGIC {
        return Err(StoreError::Corrupt("commit record without index trailer"));
    }
    let committed_crc = u32::from_le_bytes(record[8..12].try_into().unwrap());
    let trailer_crc = u32::from_le_bytes(trailer[8..12].try_into().unwrap());
    if committed_crc != trailer_crc {
        return Err(StoreError::Corrupt("commit record disagrees with trailer"));
    }
    Ok(body_len)
}

/// Reads and parses the header from the front of a source without pulling
/// in the payload: a ≤30-byte probe resolves the structure length, then
/// exactly the header span is fetched. `body_len` is the committed body
/// size (everything before a v4 commit record), which scopes `Truncated`
/// errors exactly like the slice parser's buffer length does.
fn read_header_source<S: ByteSource + ?Sized>(
    src: &S,
    body_len: u64,
) -> Result<StoreHeader, StoreError> {
    // Largest fixed (pre-structure) header part across versions: v4's 30.
    const FIXED_MAX: u64 = 30;
    let probe_len = body_len.min(FIXED_MAX);
    let probe = source::fetch(src, 0, probe_len)?;
    // Callers validated magic + version range already, so the fixed size
    // is known; `read_header` re-validates both on the exact span anyway.
    let version = u16::from_le_bytes(probe[4..6].try_into().unwrap());
    let fixed: u64 = match version {
        0..=2 => 22,
        3 => 26,
        _ => 30,
    };
    let span = if probe_len < fixed {
        probe_len
    } else {
        let structure_len = u64::from_le_bytes(
            probe[fixed as usize - 8..fixed as usize]
                .try_into()
                .unwrap(),
        );
        fixed
            .checked_add(structure_len)
            .ok_or(StoreError::Corrupt("length overflow"))?
            .min(body_len)
    };
    let raw = source::fetch(src, 0, span)?;
    read_header(&raw).map_err(|e| match e {
        // The slice parser sees the whole body, so its overrun errors
        // report the body length, not the probed span.
        StoreError::Truncated { needed, .. } => StoreError::Truncated {
            needed,
            have: body_len as usize,
        },
        e => e,
    })
}

/// Ranged-read counterpart of [`open`]: splits a store reachable through
/// any [`ByteSource`] into `(header, footer fields, payload span)` while
/// fetching only the framing — head probe, commit record, trailer,
/// header, and footer — never the payload. Re-exported as
/// `zmesh_store::open_parts_source`; the slice [`open`] is a thin wrapper
/// over this, so both paths share one validation order and error surface.
pub fn open_source<S: ByteSource + ?Sized>(
    src: &S,
) -> Result<(StoreHeader, Vec<FieldEntry>, std::ops::Range<u64>), StoreError> {
    let total = src.len();
    if total < 6 {
        return Err(StoreError::Truncated {
            needed: 6,
            have: total as usize,
        });
    }
    let head = src.read_vec(0, 6)?;
    if head[..4] != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes(head[4..6].try_into().unwrap());
    if !(MIN_STORE_VERSION..=STORE_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion(version));
    }
    // A v4 store is validated commit-record-first: a bad tail means the
    // write never completed (Torn), and only a committed body is parsed
    // further — so every later failure is genuine corruption.
    let body_len = if version >= 4 {
        split_committed_source(src, total)?
    } else {
        total
    };
    if body_len < (4 + TRAILER_BYTES) as u64 {
        return Err(StoreError::Truncated {
            needed: 4 + TRAILER_BYTES,
            have: body_len as usize,
        });
    }
    let header = read_header_source(src, body_len)?;
    let trailer = src.read_vec(body_len - TRAILER_BYTES as u64, TRAILER_BYTES)?;
    if trailer[12..16] != INDEX_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(trailer[8..12].try_into().unwrap());
    let footer_end = body_len - TRAILER_BYTES as u64;
    if footer_offset < header.header_bytes as u64 || footer_offset > footer_end {
        return Err(StoreError::Corrupt("footer offset out of range"));
    }
    let header_raw = source::fetch(src, 0, header.header_bytes as u64)?;
    let footer_raw = source::fetch(src, footer_offset, footer_end - footer_offset)?;
    let mut crc_bytes = header_raw.into_owned();
    crc_bytes.extend_from_slice(&footer_raw);
    if crc32(&crc_bytes) != stored_crc {
        return Err(StoreError::IndexCrc);
    }
    let fields = read_footer(&footer_raw, header.version)?;
    let width = header.parity_group_width as usize;
    let shards = header.scheme().shards() as usize;
    for field in &fields {
        // Both factors derive from attacker-controlled header/footer
        // counts: the product must be checked, not assumed.
        let expect = group_count(field.chunks.len(), width)
            .checked_mul(shards)
            .ok_or(StoreError::Corrupt("parity shard count overflow"))?;
        if field.parity.len() != expect {
            return Err(StoreError::Corrupt("parity group count mismatch"));
        }
    }
    let payload = header.header_bytes as u64..footer_offset;
    Ok((header, fields, payload))
}

/// Whether `bytes` looks like a v2 store (magic check only).
pub fn is_store(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == STORE_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> StoreHeader {
        StoreHeader {
            version: 3,
            policy: OrderingPolicy::Hilbert,
            mode: StorageMode::AllCells,
            codec: CodecKind::Sz,
            value_type: ValueType::F64,
            chunk_target_bytes: 4096,
            parity_group_width: 8,
            parity_shards: 1,
            structure: vec![1, 2, 3, 4, 5],
            header_bytes: 0,
        }
    }

    fn sample_v4_header() -> StoreHeader {
        let mut h = sample_header();
        h.version = STORE_VERSION;
        h.parity_shards = 2;
        h
    }

    #[test]
    fn header_round_trips() {
        let h = sample_header();
        let bytes = write_header(&h);
        let parsed = read_header(&bytes).unwrap();
        assert_eq!(parsed.version, 3);
        assert_eq!(parsed.policy, h.policy);
        assert_eq!(parsed.codec, h.codec);
        assert_eq!(parsed.parity_group_width, 8);
        assert_eq!(parsed.parity_shards, 1);
        assert_eq!(parsed.scheme(), Parity::Xor { width: 8 });
        assert_eq!(parsed.structure, h.structure);
        assert_eq!(parsed.header_bytes, bytes.len());
        assert!(parsed.capabilities().parity);
        assert_eq!(parsed.capabilities().erasure_budget, 1);
    }

    #[test]
    fn v4_header_round_trips_with_shard_count() {
        let h = sample_v4_header();
        let bytes = write_header(&h);
        // v4 fixed part is 4 bytes longer (parity shard count).
        assert_eq!(bytes.len(), write_header(&sample_header()).len() + 4);
        let parsed = read_header(&bytes).unwrap();
        assert_eq!(parsed.version, STORE_VERSION);
        assert_eq!(parsed.parity_shards, 2);
        assert_eq!(parsed.scheme(), Parity::Rs { data: 8, parity: 2 });
        assert_eq!(parsed.capabilities().erasure_budget, 2);
        assert_eq!(parsed.header_bytes, bytes.len());
    }

    #[test]
    fn v4_header_rejects_degenerate_geometry() {
        for (width, shards) in [(0u32, 2u32), (8, 0), (200, 100)] {
            let mut h = sample_v4_header();
            h.parity_group_width = width;
            h.parity_shards = shards;
            let bytes = write_header(&h);
            assert!(
                matches!(read_header(&bytes), Err(StoreError::Corrupt(_))),
                "geometry {width}+{shards} must be rejected"
            );
        }
    }

    #[test]
    fn v2_header_round_trips_without_parity() {
        let mut h = sample_header();
        h.version = 2;
        h.parity_group_width = 0;
        h.parity_shards = 0;
        let bytes = write_header(&h);
        // v2 fixed part is 4 bytes shorter (no parity width field).
        assert_eq!(bytes.len() + 4, write_header(&sample_header()).len());
        let parsed = read_header(&bytes).unwrap();
        assert_eq!(parsed.version, 2);
        assert_eq!(parsed.parity_group_width, 0);
        assert_eq!(parsed.scheme(), Parity::None);
        assert_eq!(parsed.structure, h.structure);
        assert!(!parsed.capabilities().parity);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut bytes = write_header(&sample_header());
        assert!(matches!(
            read_header(&bytes[..3]),
            Err(StoreError::Truncated { .. })
        ));
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(read_header(&wrong), Err(StoreError::BadMagic));
        for bad in [0u8, 1, 5, 99] {
            bytes[4] = bad;
            assert!(
                matches!(read_header(&bytes), Err(StoreError::UnsupportedVersion(_))),
                "version {bad} must be rejected"
            );
        }
    }

    #[test]
    fn assembled_store_round_trips_and_detects_index_corruption() {
        let mut header = sample_header();
        // One chunk at width 8 ⇒ exactly one parity group.
        header.parity_group_width = 8;
        let payload = vec![9u8; 100];
        let fields = vec![FieldEntry {
            name: "density".into(),
            resolved_bound: Some(1e-4),
            control: None,
            chunks: vec![ChunkMeta::test_sample(0, 100)],
            parity: vec![ParityMeta {
                offset: 0,
                len: 100,
                crc: crc32(&payload),
            }],
        }];
        let bytes = assemble(write_header(&header), &payload, &fields);
        let (h, f, span) = open(&bytes).unwrap();
        assert_eq!(h.policy, header.policy);
        assert_eq!(f, fields);
        assert_eq!(span.len(), 100);

        // Truncation anywhere is detected.
        for cut in [2, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(open(&bytes[..cut]).is_err(), "cut = {cut}");
        }
        // A flipped bit in the footer region fails the index CRC.
        let mut flipped = bytes.clone();
        let idx = bytes.len() - TRAILER_BYTES - 10;
        flipped[idx] ^= 1;
        assert!(matches!(
            open(&flipped),
            Err(StoreError::IndexCrc) | Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn footer_round_trips_every_control_tag() {
        let entry = |resolved_bound, control| FieldEntry {
            name: "density".into(),
            resolved_bound,
            control,
            chunks: vec![ChunkMeta::test_sample(0, 100)],
            parity: Vec::new(),
        };
        let fields = vec![
            entry(Some(1e-4), None),
            entry(None, Some(ErrorControl::FixedRate(12.5))),
            entry(None, Some(ErrorControl::FixedPrecision(24))),
            entry(None, None),
        ];
        let bytes = write_footer(&fields, 2);
        assert_eq!(read_footer(&bytes, 2).unwrap(), fields);

        // An unknown control tag is corrupt, not silently ignored.
        let mut bad = write_footer(&fields[..1], 2);
        let tag_at = 4 + 2 + "density".len();
        assert_eq!(bad[tag_at], 1);
        bad[tag_at] = 9;
        assert!(matches!(
            read_footer(&bad, 2),
            Err(StoreError::Corrupt("control tag"))
        ));
    }

    fn sample_v4_store() -> (Vec<u8>, Vec<FieldEntry>) {
        let header = sample_v4_header();
        let payload = vec![9u8; 100];
        let fields = vec![FieldEntry {
            name: "density".into(),
            resolved_bound: Some(1e-4),
            control: None,
            chunks: vec![ChunkMeta::test_sample(0, 100)],
            parity: vec![
                ParityMeta {
                    offset: 0,
                    len: 100,
                    crc: crc32(&payload),
                },
                ParityMeta {
                    offset: 0,
                    len: 100,
                    crc: crc32(&payload),
                },
            ],
        }];
        (assemble(write_header(&header), &payload, &fields), fields)
    }

    #[test]
    fn v4_store_round_trips_with_commit_record() {
        let (bytes, fields) = sample_v4_store();
        assert_eq!(
            &bytes[bytes.len() - COMMIT_RECORD_BYTES..][..8],
            &COMMIT_MAGIC
        );
        let (h, f, span) = open(&bytes).unwrap();
        assert_eq!(h.version, STORE_VERSION);
        assert_eq!(h.scheme(), Parity::Rs { data: 8, parity: 2 });
        assert_eq!(f, fields);
        assert_eq!(span.len(), 100);
    }

    #[test]
    fn v4_truncation_reads_as_torn_not_corrupt() {
        let (bytes, _) = sample_v4_store();
        // Any cut that keeps magic + version but loses the commit record.
        for cut in [6, 10, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                open(&bytes[..cut]).unwrap_err(),
                StoreError::Torn,
                "cut = {cut}"
            );
        }
        // Cuts inside magic/version cannot even prove the format.
        for cut in [0, 3, 5] {
            assert!(matches!(
                open(&bytes[..cut]),
                Err(StoreError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn v4_corruption_after_commit_is_corrupt_not_torn() {
        let (bytes, _) = sample_v4_store();
        // A flipped footer bit with an intact commit record: the write
        // completed, so this is corruption, not a torn write.
        let mut flipped = bytes.clone();
        let idx = bytes.len() - COMMIT_RECORD_BYTES - TRAILER_BYTES - 10;
        flipped[idx] ^= 1;
        assert!(matches!(
            open(&flipped),
            Err(StoreError::IndexCrc) | Err(StoreError::Corrupt(_))
        ));
        // A trailer CRC that disagrees with the commit record likewise.
        let mut mismatched = bytes.clone();
        let crc_at = bytes.len() - COMMIT_RECORD_BYTES - 8;
        mismatched[crc_at] ^= 0xff;
        assert!(matches!(open(&mismatched), Err(StoreError::Corrupt(_))));
        // A damaged commit record itself means torn.
        let mut torn = bytes;
        let tail = torn.len() - 4;
        torn[tail] ^= 1;
        assert_eq!(open(&torn).unwrap_err(), StoreError::Torn);
    }

    #[test]
    fn footer_rejects_absurd_chunk_counts() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1);
        put_u16(&mut bytes, 1);
        bytes.push(b'x');
        bytes.push(0);
        put_u64(&mut bytes, 0);
        put_u64(&mut bytes, u64::MAX); // absurd chunk count
        assert!(read_footer(&bytes, STORE_VERSION).is_err());
        assert!(read_footer(&bytes, 2).is_err());
    }

    #[test]
    fn footer_rejects_absurd_parity_counts() {
        let fields = vec![FieldEntry {
            name: "x".into(),
            resolved_bound: None,
            control: None,
            chunks: vec![],
            parity: vec![],
        }];
        let mut bytes = write_footer(&fields, STORE_VERSION);
        // The final u64 is the parity count: make it absurd.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_footer(&bytes, STORE_VERSION).is_err());
    }

    #[test]
    fn footer_round_trips_across_versions() {
        let v3_fields = vec![FieldEntry {
            name: "rho".into(),
            resolved_bound: None,
            control: None,
            chunks: vec![ChunkMeta::test_sample(0, 64)],
            parity: vec![ParityMeta {
                offset: 64,
                len: 64,
                crc: 7,
            }],
        }];
        let bytes = write_footer(&v3_fields, STORE_VERSION);
        assert_eq!(read_footer(&bytes, STORE_VERSION).unwrap(), v3_fields);

        let v2_fields = vec![FieldEntry {
            name: "rho".into(),
            resolved_bound: None,
            control: None,
            chunks: vec![ChunkMeta::test_sample(0, 64)],
            parity: vec![],
        }];
        let bytes = write_footer(&v2_fields, 2);
        assert_eq!(read_footer(&bytes, 2).unwrap(), v2_fields);
    }
}
