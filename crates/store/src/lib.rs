//! # zmesh-store — chunked, indexed, random-access containers
//!
//! The core [`zmesh`] container (v1) compresses each field as one opaque
//! payload: reading anything means decoding everything. This crate adds a
//! **v2 container** built for partial reads:
//!
//! - the reordered stream is framed into fixed-target-size **chunks**, each
//!   compressed independently with its own CRC;
//! - a **footer index** records, per chunk, the curve-index range, level
//!   mask, and bounding box it covers;
//! - a [`StoreReader`] answers bounding-box / level queries by decomposing
//!   the box into space-filling-curve ranges ([`zmesh_sfc::bbox_ranges_2d`])
//!   and decoding **only the overlapping chunks**, in parallel;
//! - a [`RecipeCache`] keyed by the tree structure makes multi-field and
//!   time-series writes reuse one restore recipe — hits are verified
//!   against the structure bytes, so a hash collision can never hand out
//!   the wrong permutation;
//! - reads run under a [`ReadPolicy`]: `Strict` (default) fails on the
//!   first integrity error, `Salvage` first rebuilds corrupt chunks from
//!   their XOR parity group (v3) and only then skips, returning the
//!   surviving cells plus a [`DamageReport`] naming exactly what was
//!   repaired or lost;
//! - the **v3 format** protects chunks with per-group XOR parity (default
//!   8 data + 1 parity, configurable via [`StoreWriteOptions`]); [`scrub`]
//!   audits every chunk's CRC without decoding and [`repair`] rewrites a
//!   damaged store back to byte-identity with the original (optionally
//!   pulling chunks parity cannot reach from a replica). v2 stores stay
//!   fully readable — they simply have no parity to heal from.
//!
//! The zMesh invariant is preserved: no permutation data is stored. Chunk
//! framing is by value count, so the index is byte-identical across
//! ordering policies — only chunk payload bytes differ (and parity bytes,
//! which track payload size, not the permutation).
//!
//! ```
//! use zmesh::{CompressionConfig, Pipeline};
//! use zmesh_amr::{datasets, StorageMode};
//! use zmesh_store::{PipelineStoreExt, Query, StoreReader};
//!
//! let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
//! let fields: Vec<(&str, &zmesh_amr::AmrField)> =
//!     ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
//! let store = Pipeline::new(CompressionConfig::zmesh_default())
//!     .pack(&fields)
//!     .unwrap();
//! let reader = StoreReader::open(&store.bytes).unwrap();
//! let region = reader
//!     .query("density", &Query::bbox([0, 0, 0], [7, 7, 0]))
//!     .unwrap();
//! assert!(region.chunks_decoded <= region.chunks_total);
//! ```

mod cache;
mod chunk;
mod chunk_cache;
#[cfg(any(test, feature = "testing"))]
pub mod faultinject;
mod format;
pub mod gf256;
mod parity;
#[cfg(test)]
mod proptests;
mod reader;
mod repair;
mod sink;
mod source;
mod writer;

pub use cache::{CacheStats, RecipeCache};
pub use chunk::{plan_chunks, ChunkMeta, ChunkPlan, CHUNK_META_BYTES, DEFAULT_CHUNK_TARGET_BYTES};
pub use chunk_cache::{ChunkCache, ChunkCacheStats, ChunkKey, ChunkValues};
pub use format::{
    is_store, open as open_parts, open_source as open_parts_source, peek_header, FieldEntry,
    StoreCapabilities, StoreError, StoreHeader, COMMIT_MAGIC, COMMIT_RECORD_BYTES,
    MIN_STORE_VERSION, STORE_MAGIC, STORE_VERSION, TRAILER_BYTES,
};
pub use parity::{Parity, ParityMeta, DEFAULT_PARITY_GROUP_WIDTH, PARITY_META_BYTES};
pub use reader::{
    DamageReport, DamageStatus, DamagedChunk, DamagedParity, GroupDamage, Query, QueryResult,
    ReadPolicy, RetryPolicy, RetryStats, SalvageFill, StoreReader,
};
pub use repair::{
    repair, repair_with, repair_with_sources, salvage_torn, scrub, scrub_source, ChunkKind,
    LostChunk, RawSource, RepairOutcome, RepairSource, RepairedChunk, ScrubChunk, ScrubReport,
    TornSalvage,
};
#[cfg(unix)]
pub use sink::FileSink;
pub use sink::{persist_store, ByteSink, VecSink};
#[cfg(unix)]
pub use source::FileSource;
#[cfg(all(unix, feature = "mmap"))]
pub use source::MmapSource;
pub use source::{ByteSource, SliceSource};
pub use writer::{
    process_peak_rss, PipelineStoreExt, StoreWriteOptions, StoreWriteStats, StoreWriter,
    StoreWritten, StreamOptions,
};
