//! Scrub & repair: offline integrity audit and reconstruction of stores.
//!
//! [`scrub`] walks every data and parity chunk of a container and verifies
//! CRCs **without decoding payloads** — it answers "is this store healthy,
//! and if not, can parity still save it?" cheaply enough to run in a
//! monitoring loop. [`repair`] actually rewrites the store: every damaged
//! data chunk that its XOR parity group can reconstruct is rebuilt (and
//! re-verified against its footer CRC), parity chunks are recomputed from
//! the recovered data, and chunks parity cannot reach can optionally be
//! pulled from a structurally identical `replica` store. Because the
//! writer's layout is deterministic (field-major data, then field-major
//! parity), a successful repair of a writer-produced store is
//! **byte-identical** to the pre-damage original.
//!
//! Both operations work on v2 stores too: there is simply no parity to
//! verify or reconstruct from, so scrub reports damage as unrecoverable
//! (`parity_available: false`) and repair can only use a replica.

use crate::format::{self, assemble, write_header, FieldEntry, StoreError, StoreHeader};
use crate::parity::{build_group_parity, group_members, group_of, reconstruct, ParityMeta};
use std::ops::Range;
use zmesh::crc32;

/// Which chunk of a field a scrub/repair record points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Data chunk `i` (stream order).
    Data(usize),
    /// Parity chunk of group `g`.
    Parity(usize),
}

impl ChunkKind {
    fn kind_str(self) -> &'static str {
        match self {
            ChunkKind::Data(_) => "data",
            ChunkKind::Parity(_) => "parity",
        }
    }

    fn index(self) -> usize {
        match self {
            ChunkKind::Data(i) | ChunkKind::Parity(i) => i,
        }
    }
}

/// One chunk scrub found damaged.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubChunk {
    /// Field the chunk belongs to.
    pub field: String,
    /// Data or parity chunk, with its index.
    pub chunk: ChunkKind,
    /// Whether parity alone can recover it (no replica considered).
    pub recoverable: bool,
    /// Byte range within the store buffer (saturated).
    pub byte_range: Range<usize>,
    /// Why the chunk failed verification.
    pub error: StoreError,
}

/// Outcome of [`scrub`]: per-chunk health of a store, CRCs only.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// Format version the store declares.
    pub version: u16,
    /// Data chunks per parity group (0 ⇒ no parity section).
    pub parity_group_width: u32,
    /// Whether the store carries parity at all.
    pub parity_available: bool,
    /// Fields in the store.
    pub fields: usize,
    /// Data chunks verified across all fields.
    pub data_chunks: usize,
    /// Parity chunks verified across all fields.
    pub parity_chunks: usize,
    /// Every damaged chunk, in (field, data-before-parity, index) order.
    pub damaged: Vec<ScrubChunk>,
}

impl ScrubReport {
    /// No damage at all.
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }

    /// Damaged chunks parity can recover.
    pub fn recoverable(&self) -> usize {
        self.damaged.iter().filter(|d| d.recoverable).count()
    }

    /// Damaged chunks parity cannot recover (replica or data loss).
    pub fn unrecoverable(&self) -> usize {
        self.damaged.len() - self.recoverable()
    }

    /// Machine-readable JSON summary (hand-rolled: no serde in tree).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"version\":{},\"parity_group_width\":{},\"parity_available\":{},\
             \"fields\":{},\"data_chunks\":{},\"parity_chunks\":{},\
             \"recoverable\":{},\"unrecoverable\":{},\"clean\":{},\"damaged\":[",
            self.version,
            self.parity_group_width,
            self.parity_available,
            self.fields,
            self.data_chunks,
            self.parity_chunks,
            self.recoverable(),
            self.unrecoverable(),
            self.is_clean(),
        ));
        for (i, d) in self.damaged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"field\":\"{}\",\"kind\":\"{}\",\"index\":{},\"recoverable\":{},\
                 \"byte_range\":[{},{}],\"error\":\"{}\"}}",
                json_escape(&d.field),
                d.chunk.kind_str(),
                d.chunk.index(),
                d.recoverable,
                d.byte_range.start,
                d.byte_range.end,
                json_escape(&d.error.to_string()),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Saturated byte range for damage records.
fn report_range(payload: &Range<usize>, offset: u64, len: u64) -> Range<usize> {
    let lo = payload
        .start
        .saturating_add(offset as usize)
        .min(payload.end);
    let hi = lo.saturating_add(len as usize).min(payload.end);
    lo..hi
}

/// Bounds-checked CRC verification of one payload span. Returns the slice
/// on success.
fn verified_slice<'a>(
    bytes: &'a [u8],
    payload: &Range<usize>,
    offset: u64,
    len: u64,
    crc: u32,
    on_crc_fail: impl FnOnce() -> StoreError,
) -> Result<&'a [u8], StoreError> {
    let lo = payload
        .start
        .checked_add(offset as usize)
        .ok_or(StoreError::Corrupt("chunk offset overflow"))?;
    let hi = lo
        .checked_add(len as usize)
        .ok_or(StoreError::Corrupt("chunk length overflow"))?;
    if hi > payload.end {
        return Err(StoreError::Truncated {
            needed: hi,
            have: payload.end,
        });
    }
    let slice = &bytes[lo..hi];
    if crc32(slice) != crc {
        return Err(on_crc_fail());
    }
    Ok(slice)
}

fn data_slice<'a>(
    bytes: &'a [u8],
    payload: &Range<usize>,
    entry: &FieldEntry,
    i: usize,
) -> Result<&'a [u8], StoreError> {
    let meta = &entry.chunks[i];
    verified_slice(bytes, payload, meta.offset, meta.len, meta.crc, || {
        StoreError::ChunkCrc {
            field: entry.name.clone(),
            chunk: i,
        }
    })
}

fn parity_slice<'a>(
    bytes: &'a [u8],
    payload: &Range<usize>,
    entry: &FieldEntry,
    g: usize,
) -> Result<&'a [u8], StoreError> {
    let meta = &entry.parity[g];
    verified_slice(bytes, payload, meta.offset, meta.len, meta.crc, || {
        StoreError::ParityCrc {
            field: entry.name.clone(),
            group: g,
        }
    })
}

/// Verifies every data and parity chunk of a store (CRCs only, no payload
/// decoding) and classifies each failure as parity-recoverable or not.
/// Container-level damage (bad magic, truncated/CRC-failing index) is
/// returned as an error — there is no per-chunk story to tell without a
/// trustworthy index.
pub fn scrub(bytes: &[u8]) -> Result<ScrubReport, StoreError> {
    let (header, fields, payload) = format::open(bytes)?;
    let width = header.parity_group_width as usize;
    let parity_available = header.capabilities().parity;
    let mut report = ScrubReport {
        version: header.version,
        parity_group_width: header.parity_group_width,
        parity_available,
        fields: fields.len(),
        data_chunks: fields.iter().map(|f| f.chunks.len()).sum(),
        parity_chunks: fields.iter().map(|f| f.parity.len()).sum(),
        damaged: Vec::new(),
    };
    for entry in &fields {
        let data_ok: Vec<bool> = (0..entry.chunks.len())
            .map(|i| data_slice(bytes, &payload, entry, i).is_ok())
            .collect();
        let parity_ok: Vec<bool> = (0..entry.parity.len())
            .map(|g| parity_slice(bytes, &payload, entry, g).is_ok())
            .collect();
        let failures_in = |g: usize| -> usize {
            group_members(g, width, entry.chunks.len())
                .filter(|&c| !data_ok[c])
                .count()
        };
        for (i, ok) in data_ok.iter().enumerate() {
            if *ok {
                continue;
            }
            let error = data_slice(bytes, &payload, entry, i).unwrap_err();
            let recoverable = parity_available && {
                let g = group_of(i, width);
                failures_in(g) == 1 && parity_ok.get(g).copied().unwrap_or(false)
            };
            let meta = &entry.chunks[i];
            report.damaged.push(ScrubChunk {
                field: entry.name.clone(),
                chunk: ChunkKind::Data(i),
                recoverable,
                byte_range: report_range(&payload, meta.offset, meta.len),
                error,
            });
        }
        for (g, ok) in parity_ok.iter().enumerate() {
            if *ok {
                continue;
            }
            let error = parity_slice(bytes, &payload, entry, g).unwrap_err();
            // A parity chunk is recomputable whenever all the data it
            // protects is intact.
            let recoverable = failures_in(g) == 0;
            let meta = &entry.parity[g];
            report.damaged.push(ScrubChunk {
                field: entry.name.clone(),
                chunk: ChunkKind::Parity(g),
                recoverable,
                byte_range: report_range(&payload, meta.offset, meta.len),
                error,
            });
        }
    }
    Ok(report)
}

/// Where a repaired chunk's bytes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSource {
    /// Rebuilt from the XOR parity group.
    Parity,
    /// Copied from the replica store.
    Replica,
}

/// One data chunk [`repair`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedChunk {
    /// Field the chunk belongs to.
    pub field: String,
    /// Data chunk index.
    pub chunk: usize,
    /// How it was recovered.
    pub source: RepairSource,
}

/// One data chunk [`repair`] could not recover.
#[derive(Debug, Clone, PartialEq)]
pub struct LostChunk {
    /// Field the chunk belongs to.
    pub field: String,
    /// Data chunk index.
    pub chunk: usize,
    /// Why every recovery avenue failed.
    pub error: StoreError,
}

/// Outcome of [`repair`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The rewritten, fully verified store — `Some` only when **every**
    /// data chunk was recovered (a partially repaired store would verify
    /// clean while silently missing data, so none is emitted).
    pub bytes: Option<Vec<u8>>,
    /// Data chunks recovered, with their source.
    pub repaired: Vec<RepairedChunk>,
    /// Parity chunks rewritten (recomputed from the recovered data).
    pub parity_rebuilt: usize,
    /// Data chunks no avenue could recover.
    pub lost: Vec<LostChunk>,
}

/// Checks that `replica` is structurally interchangeable with the store
/// being repaired: same mesh structure bytes and same encoding parameters,
/// so equal (chunk index → payload) mappings are meaningful.
fn replica_compatible(ours: &StoreHeader, theirs: &StoreHeader) -> bool {
    ours.structure == theirs.structure
        && ours.policy == theirs.policy
        && ours.mode == theirs.mode
        && ours.codec == theirs.codec
        && ours.value_type == theirs.value_type
        && ours.chunk_target_bytes == theirs.chunk_target_bytes
}

/// Rewrites `bytes` as a clean store: damaged data chunks are rebuilt from
/// parity where a group has exactly one failure, then (optionally) pulled
/// from `replica` when parity cannot help; all parity chunks are
/// recomputed from the recovered data. Every recovered payload is verified
/// against its footer CRC before use. Container-level damage errors out —
/// repair needs a trustworthy index.
pub fn repair(bytes: &[u8], replica: Option<&[u8]>) -> Result<RepairOutcome, StoreError> {
    let (header, fields, payload) = format::open(bytes)?;
    let width = header.parity_group_width as usize;

    // Parse and vet the replica once, up front. An incompatible replica is
    // a caller error, not a silent no-op.
    let replica_parts = match replica {
        None => None,
        Some(r) => {
            let (rh, rf, rp) = format::open(r)?;
            if !replica_compatible(&header, &rh) {
                return Err(StoreError::Corrupt(
                    "replica store does not match (structure or encoding differ)",
                ));
            }
            Some((r, rf, rp))
        }
    };
    let replica_chunk = |field_name: &str, i: usize, meta_len: u64, meta_crc: u32| {
        let (rbytes, rfields, rpayload) = replica_parts.as_ref()?;
        let rentry = rfields.iter().find(|f| f.name == field_name)?;
        let rmeta = rentry.chunks.get(i)?;
        // The replica's copy must be the *same* chunk (length and CRC
        // agree with our footer), not merely a chunk at the same index.
        if rmeta.len != meta_len || rmeta.crc != meta_crc {
            return None;
        }
        data_slice(rbytes, rpayload, rentry, i).ok()
    };

    let mut outcome = RepairOutcome {
        bytes: None,
        repaired: Vec::new(),
        parity_rebuilt: 0,
        lost: Vec::new(),
    };

    // Phase 1 — recover every data chunk, field by field.
    let mut recovered: Vec<Vec<Vec<u8>>> = Vec::with_capacity(fields.len());
    for entry in &fields {
        let mut chunks: Vec<Option<Vec<u8>>> = (0..entry.chunks.len())
            .map(|i| {
                data_slice(bytes, &payload, entry, i)
                    .ok()
                    .map(<[u8]>::to_vec)
            })
            .collect();
        for i in 0..entry.chunks.len() {
            if chunks[i].is_some() {
                continue;
            }
            let meta = &entry.chunks[i];
            // Avenue 1: XOR parity (single failure in the group, parity
            // intact, every sibling intact).
            let from_parity = (width > 0)
                .then(|| {
                    let g = group_of(i, width);
                    let members = group_members(g, width, entry.chunks.len());
                    if members.clone().filter(|&c| chunks[c].is_none()).count() != 1 {
                        return None;
                    }
                    let parity = parity_slice(bytes, &payload, entry, g).ok()?;
                    let siblings = members
                        .filter(|&c| c != i)
                        .map(|c| chunks[c].as_deref().expect("siblings intact"))
                        .collect::<Vec<_>>();
                    let rebuilt = reconstruct(parity, siblings, meta.len as usize)?;
                    (crc32(&rebuilt) == meta.crc).then_some(rebuilt)
                })
                .flatten();
            let (payload_bytes, source) = match from_parity {
                Some(p) => (Some(p), RepairSource::Parity),
                None => (
                    replica_chunk(&entry.name, i, meta.len, meta.crc).map(<[u8]>::to_vec),
                    RepairSource::Replica,
                ),
            };
            match payload_bytes {
                Some(p) => {
                    chunks[i] = Some(p);
                    outcome.repaired.push(RepairedChunk {
                        field: entry.name.clone(),
                        chunk: i,
                        source,
                    });
                }
                None => outcome.lost.push(LostChunk {
                    field: entry.name.clone(),
                    chunk: i,
                    error: data_slice(bytes, &payload, entry, i).unwrap_err(),
                }),
            }
        }
        recovered.push(chunks.into_iter().map(|c| c.unwrap_or_default()).collect());
    }

    if !outcome.lost.is_empty() {
        return Ok(outcome);
    }

    // Phase 2 — reassemble with the writer's deterministic layout
    // (field-major data, then field-major parity), recomputing every
    // offset and parity payload. For a writer-produced store this
    // reproduces the pre-damage bytes exactly.
    let mut new_payload: Vec<u8> = Vec::with_capacity(payload.len());
    let mut entries: Vec<FieldEntry> = Vec::with_capacity(fields.len());
    for (f, entry) in fields.iter().enumerate() {
        let mut chunks = Vec::with_capacity(entry.chunks.len());
        for (i, meta) in entry.chunks.iter().enumerate() {
            let mut meta = *meta;
            meta.offset = new_payload.len() as u64;
            new_payload.extend_from_slice(&recovered[f][i]);
            chunks.push(meta);
        }
        entries.push(FieldEntry {
            name: entry.name.clone(),
            resolved_bound: entry.resolved_bound,
            chunks,
            parity: Vec::new(),
        });
    }
    for (f, entry) in fields.iter().enumerate() {
        for g in 0..entry.parity.len() {
            let members = group_members(g, width, entry.chunks.len());
            let parity_bytes = build_group_parity(members.map(|c| recovered[f][c].as_slice()));
            let crc = crc32(&parity_bytes);
            if parity_slice(bytes, &payload, entry, g).is_err() || crc != entry.parity[g].crc {
                outcome.parity_rebuilt += 1;
            }
            entries[f].parity.push(ParityMeta {
                offset: new_payload.len() as u64,
                len: parity_bytes.len() as u64,
                crc,
            });
            new_payload.extend_from_slice(&parity_bytes);
        }
    }
    outcome.bytes = Some(assemble(write_header(&header), &new_payload, &entries));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject;
    use crate::writer::StoreWriter;
    use zmesh::CompressionConfig;
    use zmesh_amr::{datasets, AmrField, StorageMode};

    fn store(width: u32) -> Vec<u8> {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let fields: Vec<(&str, &AmrField)> =
            ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
        StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(512)
            .with_parity_group_width(width)
            .write(&fields)
            .unwrap()
            .bytes
    }

    #[test]
    fn scrub_is_clean_on_a_fresh_store_and_json_parses_shape() {
        let bytes = store(8);
        let report = scrub(&bytes).unwrap();
        assert!(report.is_clean());
        assert!(report.parity_available);
        assert!(report.data_chunks > 0);
        assert!(report.parity_chunks > 0);
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"damaged\":[]"));
    }

    #[test]
    fn scrub_classifies_recoverable_and_unrecoverable_damage() {
        let mut bytes = store(8);
        faultinject::flip_data_chunk(&mut bytes, 0, 1);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.damaged.len(), 1);
        assert!(report.damaged[0].recoverable);
        assert_eq!(report.recoverable(), 1);
        assert_eq!(report.unrecoverable(), 0);

        // Second failure in the same group makes both unrecoverable.
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.damaged.len(), 2);
        assert_eq!(report.unrecoverable(), 2);
    }

    #[test]
    fn scrub_reports_v2_damage_as_unrecoverable() {
        let mut bytes = store(0);
        let report = scrub(&bytes).unwrap();
        assert!(report.is_clean());
        assert!(!report.parity_available);
        assert_eq!(report.parity_chunks, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.unrecoverable(), 1);
        assert!(report.to_json().contains("\"parity_available\":false"));
    }

    #[test]
    fn repair_restores_byte_identity_from_parity() {
        let clean = store(8);
        let mut bytes = clean.clone();
        faultinject::flip_data_chunk(&mut bytes, 0, 1);
        faultinject::flip_data_chunk(&mut bytes, 1, 3);
        let outcome = repair(&bytes, None).unwrap();
        assert_eq!(outcome.repaired.len(), 2);
        assert!(outcome.lost.is_empty());
        assert!(outcome
            .repaired
            .iter()
            .all(|r| r.source == RepairSource::Parity));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_rebuilds_damaged_parity() {
        let clean = store(8);
        let mut bytes = clean.clone();
        faultinject::flip_parity_chunk(&mut bytes, 0, 0);
        let outcome = repair(&bytes, None).unwrap();
        assert!(outcome.repaired.is_empty());
        assert_eq!(outcome.parity_rebuilt, 1);
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_pulls_from_replica_when_parity_cannot_help() {
        let clean = store(8);
        let mut bytes = clean.clone();
        // Two failures in one group: beyond XOR parity.
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        let outcome = repair(&bytes, None).unwrap();
        assert_eq!(outcome.lost.len(), 2);
        assert!(outcome.bytes.is_none());

        let outcome = repair(&bytes, Some(&clean)).unwrap();
        assert!(outcome.lost.is_empty());
        // Recovery cascades: once the replica restores the first chunk,
        // the group is back to a single failure and parity finishes the
        // job — so both sources appear.
        assert!(outcome
            .repaired
            .iter()
            .any(|r| r.source == RepairSource::Replica));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_rejects_mismatched_replica() {
        let mut bytes = store(8);
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        let other = {
            let ds = datasets::front2d(StorageMode::AllCells, datasets::Scale::Tiny);
            let fields: Vec<(&str, &AmrField)> =
                ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
            StoreWriter::new(CompressionConfig::zmesh_default())
                .with_chunk_target_bytes(512)
                .write(&fields)
                .unwrap()
                .bytes
        };
        assert!(matches!(
            repair(&bytes, Some(&other)),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn repair_of_a_clean_store_is_the_identity() {
        for width in [8u32, 0] {
            let clean = store(width);
            let outcome = repair(&clean, None).unwrap();
            assert!(outcome.repaired.is_empty());
            assert_eq!(outcome.parity_rebuilt, 0);
            assert_eq!(outcome.bytes.unwrap(), clean, "width {width}");
        }
    }
}
