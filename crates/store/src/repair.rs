//! Scrub & repair: offline integrity audit and reconstruction of stores.
//!
//! [`scrub`] walks every data and parity chunk of a container and verifies
//! CRCs **without decoding payloads** — it answers "is this store healthy,
//! and if not, can parity still save it?" cheaply enough to run in a
//! monitoring loop. [`repair`] actually rewrites the store: every damaged
//! data chunk its parity group can reconstruct is rebuilt (and re-verified
//! against its footer CRC), parity chunks are recomputed from the
//! recovered data, and chunks parity cannot reach can be pulled from a
//! structurally identical `replica` store or — via [`repair_with`] and a
//! [`RawSource`] — **re-encoded from the original field data** through the
//! writer's chunk pipeline. Recovery avenues cascade to a fixpoint
//! (parity → replica → raw, then parity again with the group refilled), so
//! a replica or raw copy of one chunk can put a group back inside its
//! erasure budget. Because the writer's layout is deterministic
//! (field-major data, then field-major parity), a successful repair of a
//! writer-produced store is **byte-identical** to the pre-damage original.
//!
//! The erasure budget follows the store's scheme: v3 XOR groups tolerate
//! one failure per group, v4 Reed–Solomon groups tolerate up to `m`
//! ([`crate::StoreHeader::scheme`]). Both operations work on v2 stores
//! too: there is simply no parity to verify or reconstruct from, so scrub
//! reports damage as unrecoverable (`parity_available: false`) and repair
//! can only use a replica or raw source.

use crate::cache::RecipeCache;
use crate::format::{self, assemble, write_header, FieldEntry, StoreError, StoreHeader};
use crate::gf256;
use crate::parity::{
    build_group_parity, group_count, group_members, group_of, reconstruct, Parity, ParityMeta,
};
use crate::source::{self, ByteSource, SliceSource};
use std::borrow::Cow;
use std::ops::Range;
use zmesh::{codec_for, crc32, GroupingMode};
use zmesh_amr::AmrField;
use zmesh_codecs::{CodecParams, ErrorControl};

/// Which chunk of a field a scrub/repair record points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Data chunk `i` (stream order).
    Data(usize),
    /// Parity slot `s` — group `s / shards`, shard `s % shards` (v3 has
    /// one shard per group, so slot = group).
    Parity(usize),
}

impl ChunkKind {
    fn kind_str(self) -> &'static str {
        match self {
            ChunkKind::Data(_) => "data",
            ChunkKind::Parity(_) => "parity",
        }
    }

    fn index(self) -> usize {
        match self {
            ChunkKind::Data(i) | ChunkKind::Parity(i) => i,
        }
    }
}

/// One chunk scrub found damaged.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubChunk {
    /// Field the chunk belongs to.
    pub field: String,
    /// Data or parity chunk, with its index.
    pub chunk: ChunkKind,
    /// Whether parity alone can recover it (no replica considered).
    pub recoverable: bool,
    /// Byte range within the store buffer (saturated).
    pub byte_range: Range<usize>,
    /// Why the chunk failed verification.
    pub error: StoreError,
}

/// Outcome of [`scrub`]: per-chunk health of a store, CRCs only.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// Format version the store declares.
    pub version: u16,
    /// Data chunks per parity group (0 ⇒ no parity section).
    pub parity_group_width: u32,
    /// Parity shards per group — the per-group erasure budget (1 for XOR
    /// v3, `m` for Reed–Solomon v4, 0 without parity).
    pub parity_shards: u32,
    /// Whether the store carries parity at all.
    pub parity_available: bool,
    /// Fields in the store.
    pub fields: usize,
    /// Data chunks verified across all fields.
    pub data_chunks: usize,
    /// Parity chunks verified across all fields.
    pub parity_chunks: usize,
    /// Every damaged chunk, in (field, data-before-parity, index) order.
    pub damaged: Vec<ScrubChunk>,
    /// Bytes the scrub actually read from its source (the whole buffer
    /// for in-memory scrubs; framing + chunk spans for ranged ones).
    pub bytes_read: u64,
    /// Total size of the store being scrubbed.
    pub store_bytes: u64,
    /// Wall-clock seconds the CRC walk took.
    pub elapsed_secs: f64,
    /// Scrub throughput (`bytes_read` / `elapsed_secs`, rounded down) —
    /// the walk is CRC-bound, so this surfaces which
    /// [`zmesh_kernels::crc32`] tier the runtime probe dispatched to.
    pub bytes_per_s: u64,
}

impl ScrubReport {
    /// No damage at all.
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }

    /// Damaged chunks parity can recover.
    pub fn recoverable(&self) -> usize {
        self.damaged.iter().filter(|d| d.recoverable).count()
    }

    /// Damaged chunks parity cannot recover (replica or data loss).
    pub fn unrecoverable(&self) -> usize {
        self.damaged.len() - self.recoverable()
    }

    /// Machine-readable JSON summary (hand-rolled: no serde in tree).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"version\":{},\"parity_group_width\":{},\"parity_shards\":{},\
             \"parity_available\":{},\
             \"fields\":{},\"data_chunks\":{},\"parity_chunks\":{},\
             \"recoverable\":{},\"unrecoverable\":{},\"clean\":{},\
             \"bytes_read\":{},\"store_bytes\":{},\
             \"elapsed_secs\":{:.6},\"bytes_per_s\":{},\"damaged\":[",
            self.version,
            self.parity_group_width,
            self.parity_shards,
            self.parity_available,
            self.fields,
            self.data_chunks,
            self.parity_chunks,
            self.recoverable(),
            self.unrecoverable(),
            self.is_clean(),
            self.bytes_read,
            self.store_bytes,
            self.elapsed_secs,
            self.bytes_per_s,
        ));
        for (i, d) in self.damaged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"field\":\"{}\",\"kind\":\"{}\",\"index\":{},\"recoverable\":{},\
                 \"byte_range\":[{},{}],\"error\":\"{}\"}}",
                json_escape(&d.field),
                d.chunk.kind_str(),
                d.chunk.index(),
                d.recoverable,
                d.byte_range.start,
                d.byte_range.end,
                json_escape(&d.error.to_string()),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Saturated byte range for damage records.
fn report_range(payload: &Range<u64>, offset: u64, len: u64) -> Range<usize> {
    let lo = payload.start.saturating_add(offset).min(payload.end);
    let hi = lo.saturating_add(len).min(payload.end);
    lo as usize..hi as usize
}

/// Bounds-checked CRC verification of one payload span. Returns the bytes
/// on success (borrowed zero-copy from resident sources).
fn verified_span<'s, S: ByteSource + ?Sized>(
    src: &'s S,
    payload: &Range<u64>,
    offset: u64,
    len: u64,
    crc: u32,
    on_crc_fail: impl FnOnce() -> StoreError,
) -> Result<Cow<'s, [u8]>, StoreError> {
    let lo = payload
        .start
        .checked_add(offset)
        .ok_or(StoreError::Corrupt("chunk offset overflow"))?;
    let hi = lo
        .checked_add(len)
        .ok_or(StoreError::Corrupt("chunk length overflow"))?;
    if hi > payload.end {
        return Err(StoreError::Truncated {
            needed: hi as usize,
            have: payload.end as usize,
        });
    }
    let span = source::fetch(src, lo, hi - lo)?;
    if crc32(&span) != crc {
        return Err(on_crc_fail());
    }
    Ok(span)
}

fn data_span<'s, S: ByteSource + ?Sized>(
    src: &'s S,
    payload: &Range<u64>,
    entry: &FieldEntry,
    i: usize,
) -> Result<Cow<'s, [u8]>, StoreError> {
    let meta = &entry.chunks[i];
    verified_span(src, payload, meta.offset, meta.len, meta.crc, || {
        StoreError::ChunkCrc {
            field: entry.name.clone(),
            chunk: i,
        }
    })
}

fn parity_span<'s, S: ByteSource + ?Sized>(
    src: &'s S,
    payload: &Range<u64>,
    entry: &FieldEntry,
    slot: usize,
    shards: usize,
) -> Result<Cow<'s, [u8]>, StoreError> {
    let meta = &entry.parity[slot];
    verified_span(src, payload, meta.offset, meta.len, meta.crc, || {
        StoreError::ParityCrc {
            field: entry.name.clone(),
            group: slot / shards.max(1),
        }
    })
}

/// Verifies every data and parity chunk of an in-memory store. See
/// [`scrub_source`].
pub fn scrub(bytes: &[u8]) -> Result<ScrubReport, StoreError> {
    scrub_source(&SliceSource::new(bytes))
}

/// Verifies every data and parity chunk of a store (CRCs only, no payload
/// decoding) and classifies each failure as parity-recoverable or not.
/// Container-level damage (bad magic, torn commit, truncated/CRC-failing
/// index) is returned as an error — there is no per-chunk story to tell
/// without a trustworthy index. Through a ranged source (e.g.
/// [`crate::FileSource`]) the scrub streams chunk spans instead of loading
/// the file; [`ScrubReport::bytes_read`] records the actual traffic.
pub fn scrub_source<S: ByteSource + ?Sized>(src: &S) -> Result<ScrubReport, StoreError> {
    let started = std::time::Instant::now();
    let (header, fields, payload) = format::open_source(src)?;
    let width = header.parity_group_width as usize;
    let scheme = header.scheme();
    let shards = scheme.shards() as usize;
    let parity_available = header.capabilities().parity;
    let mut report = ScrubReport {
        version: header.version,
        parity_group_width: header.parity_group_width,
        parity_shards: scheme.shards(),
        parity_available,
        fields: fields.len(),
        data_chunks: fields.iter().map(|f| f.chunks.len()).sum(),
        parity_chunks: fields.iter().map(|f| f.parity.len()).sum(),
        damaged: Vec::new(),
        bytes_read: 0,
        store_bytes: src.len(),
        elapsed_secs: 0.0,
        bytes_per_s: 0,
    };
    for entry in &fields {
        let data_ok: Vec<bool> = (0..entry.chunks.len())
            .map(|i| data_span(src, &payload, entry, i).is_ok())
            .collect();
        let parity_ok: Vec<bool> = (0..entry.parity.len())
            .map(|s| parity_span(src, &payload, entry, s, shards).is_ok())
            .collect();
        let failures_in = |g: usize| -> usize {
            group_members(g, width, entry.chunks.len())
                .filter(|&c| !data_ok[c])
                .count()
        };
        // A group's erasure budget is its count of *intact* parity shards.
        let intact_shards = |g: usize| -> usize {
            (0..shards)
                .filter(|&j| parity_ok.get(g * shards + j).copied().unwrap_or(false))
                .count()
        };
        for (i, ok) in data_ok.iter().enumerate() {
            if *ok {
                continue;
            }
            let error = data_span(src, &payload, entry, i).unwrap_err();
            let recoverable = parity_available && {
                let g = group_of(i, width);
                failures_in(g) <= intact_shards(g)
            };
            let meta = &entry.chunks[i];
            report.damaged.push(ScrubChunk {
                field: entry.name.clone(),
                chunk: ChunkKind::Data(i),
                recoverable,
                byte_range: report_range(&payload, meta.offset, meta.len),
                error,
            });
        }
        for (s, ok) in parity_ok.iter().enumerate() {
            if *ok {
                continue;
            }
            let error = parity_span(src, &payload, entry, s, shards).unwrap_err();
            // A parity shard is recomputable whenever the data it protects
            // is intact or itself recoverable from the surviving shards.
            let g = s / shards.max(1);
            let recoverable = failures_in(g) <= intact_shards(g);
            let meta = &entry.parity[s];
            report.damaged.push(ScrubChunk {
                field: entry.name.clone(),
                chunk: ChunkKind::Parity(s),
                recoverable,
                byte_range: report_range(&payload, meta.offset, meta.len),
                error,
            });
        }
    }
    report.bytes_read = src.bytes_read();
    report.elapsed_secs = started.elapsed().as_secs_f64();
    if report.elapsed_secs > 0.0 {
        report.bytes_per_s = (report.bytes_read as f64 / report.elapsed_secs) as u64;
    }
    Ok(report)
}

/// Where a repaired chunk's bytes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSource {
    /// Rebuilt from the store's own parity (XOR group or Reed–Solomon
    /// shards).
    Parity,
    /// Copied from the replica store.
    Replica,
    /// Re-encoded from the original field data ([`RawSource`]).
    Raw,
}

/// One data chunk [`repair`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedChunk {
    /// Field the chunk belongs to.
    pub field: String,
    /// Data chunk index.
    pub chunk: usize,
    /// How it was recovered.
    pub source: RepairSource,
}

/// One data chunk [`repair`] could not recover.
#[derive(Debug, Clone, PartialEq)]
pub struct LostChunk {
    /// Field the chunk belongs to.
    pub field: String,
    /// Data chunk index.
    pub chunk: usize,
    /// Why every recovery avenue failed.
    pub error: StoreError,
}

/// Outcome of [`repair`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The rewritten, fully verified store — `Some` only when **every**
    /// data chunk was recovered (a partially repaired store would verify
    /// clean while silently missing data, so none is emitted).
    pub bytes: Option<Vec<u8>>,
    /// Data chunks recovered, with their source.
    pub repaired: Vec<RepairedChunk>,
    /// Parity chunks rewritten (recomputed from the recovered data).
    pub parity_rebuilt: usize,
    /// Data chunks no avenue could recover.
    pub lost: Vec<LostChunk>,
    /// Bytes read from the damaged store's source (framing + the spans
    /// the repair actually touched).
    pub bytes_read: u64,
}

/// The original, uncompressed field data a store was written from — the
/// recovery avenue of last resort for [`repair_with`]. Lost chunks are
/// re-encoded through the writer's deterministic pipeline (reorder →
/// chunk → compress) and accepted **only** when the re-encoded payload
/// matches the damaged store's footer CRC byte-for-byte, so a drifted or
/// wrong dataset can never be spliced in silently.
pub struct RawSource<'a> {
    fields: &'a [(&'a str, &'a AmrField)],
    cache: Option<&'a RecipeCache>,
}

impl<'a> RawSource<'a> {
    /// Wraps the original `(name, field)` pairs the store was packed from.
    pub fn new(fields: &'a [(&'a str, &'a AmrField)]) -> Self {
        Self {
            fields,
            cache: None,
        }
    }

    /// Reuses an existing recipe cache for the re-encode (the same cache a
    /// long-lived writer holds), skipping the parallel recipe rebuild.
    pub fn with_cache(mut self, cache: &'a RecipeCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// Re-encodes every chunk of `entry` from the raw field data, reproducing
/// the writer's pipeline from the parameters recorded in the header and
/// footer. Returns a descriptive error when the raw data cannot possibly
/// match (wrong mesh, wrong mode, no reproducible error control) — the
/// error surfaces on any chunks the other avenues also fail to recover,
/// and callers still verify each re-encoded chunk against its footer CRC
/// before use.
fn raw_encode_field(
    header: &StoreHeader,
    entry: &FieldEntry,
    raw: &RawSource<'_>,
) -> Result<Vec<Vec<u8>>, StoreError> {
    let (_, field) = raw
        .fields
        .iter()
        .find(|(n, _)| *n == entry.name)
        .ok_or_else(|| StoreError::UnknownField(entry.name.clone()))?;
    if field.mode() != header.mode {
        return Err(StoreError::InvalidOptions(
            "raw dataset storage mode differs from the store's",
        ));
    }
    let tree = field.tree();
    if tree.structure_bytes() != header.structure {
        return Err(StoreError::InvalidOptions(
            "raw dataset mesh structure differs from the store's",
        ));
    }
    // Bounded controls re-encode as `Absolute(resolved_bound)` — exactly
    // what the writer did. Unbounded controls (fixed-rate /
    // fixed-precision) resolve to no bound, so the writer records the
    // original control in the footer; a store written before that tagging
    // existed cannot be re-encoded, and silently substituting some bound
    // would produce chunks the footer CRCs reject anyway.
    let control = match (entry.resolved_bound, entry.control) {
        (Some(bound), _) => ErrorControl::Absolute(bound),
        (None, Some(control)) => control,
        (None, None) => {
            return Err(StoreError::InvalidOptions(
                "store predates control tagging: the original fixed-rate/fixed-precision \
                 control is not recorded in the footer, so this field cannot be re-encoded \
                 from raw data (re-pack the dataset instead)",
            ))
        }
    };
    let grouping = GroupingMode::from_storage_mode(header.mode);
    let local_cache;
    let cache = match raw.cache {
        Some(c) => c,
        None => {
            local_cache = RecipeCache::new();
            &local_cache
        }
    };
    let (recipe, _) = cache.get_or_build(tree, &header.structure, header.policy, grouping);
    let stream = recipe.apply(field.values());
    let chunk_values = (header.chunk_target_bytes as usize / 8).max(1);
    if stream.len().div_ceil(chunk_values) != entry.chunks.len() {
        return Err(StoreError::InvalidOptions(
            "raw dataset value count disagrees with the store's chunk plan",
        ));
    }
    let codec = codec_for(header.codec);
    let params = CodecParams {
        control,
        dims: [0, 0, 0],
        value_type: header.value_type,
    };
    let mut out = Vec::with_capacity(entry.chunks.len());
    for i in 0..entry.chunks.len() {
        let lo = i * chunk_values;
        let hi = ((i + 1) * chunk_values).min(stream.len());
        out.push(
            codec
                .compress(&stream[lo..hi], &params)
                .map_err(StoreError::Codec)?,
        );
    }
    Ok(out)
}

/// [`repair_with`] without a raw source: parity first, then `replica`.
pub fn repair(bytes: &[u8], replica: Option<&[u8]>) -> Result<RepairOutcome, StoreError> {
    repair_with(bytes, replica, None)
}

/// Rewrites `bytes` as a clean store. Damaged data chunks are recovered by
/// cascading three avenues to a fixpoint: (1) the store's own parity —
/// XOR for a single failure per group, Reed–Solomon for up to `m` — then
/// (2) a structurally identical `replica` store, then (3) re-encoding from
/// the original field data in `raw`. Each round a replica or raw copy can
/// pull a group back inside its erasure budget, so parity gets another
/// try. All parity shards are recomputed from the recovered data, and
/// every recovered payload is verified against its footer CRC before use.
/// Container-level damage errors out — repair needs a trustworthy index
/// (for a torn v4 store, rebuild from raw data instead and compare).
pub fn repair_with(
    bytes: &[u8],
    replica: Option<&[u8]>,
    raw: Option<&RawSource<'_>>,
) -> Result<RepairOutcome, StoreError> {
    let src = SliceSource::new(bytes);
    let replica_src = replica.map(SliceSource::new);
    repair_with_sources(&src, replica_src.as_ref(), raw)
}

/// [`repair_with`] over arbitrary [`ByteSource`]s. Through ranged sources
/// the repair reads only the framing plus the chunk spans it actually
/// touches — intact groups cost one CRC pass over their data, and only
/// damaged groups pull in parity shards.
pub fn repair_with_sources<S: ByteSource + ?Sized, R: ByteSource + ?Sized>(
    src: &S,
    replica: Option<&R>,
    raw: Option<&RawSource<'_>>,
) -> Result<RepairOutcome, StoreError> {
    let (header, fields, payload) = format::open_source(src)?;
    let width = header.parity_group_width as usize;
    let scheme = header.scheme();
    let shards = scheme.shards() as usize;

    // Parse and vet the replica once, up front. An incompatible replica is
    // a caller error, not a silent no-op.
    let replica_parts = match replica {
        None => None,
        Some(r) => {
            let (rh, rf, rp) = format::open_source(r)?;
            if !replica_compatible(&header, &rh) {
                return Err(StoreError::Corrupt(
                    "replica store does not match (structure or encoding differ)",
                ));
            }
            Some((r, rf, rp))
        }
    };
    let replica_chunk = |field_name: &str, i: usize, meta_len: u64, meta_crc: u32| {
        let (rsrc, rfields, rpayload) = replica_parts.as_ref()?;
        let rentry = rfields.iter().find(|f| f.name == field_name)?;
        let rmeta = rentry.chunks.get(i)?;
        // The replica's copy must be the *same* chunk (length and CRC
        // agree with our footer), not merely a chunk at the same index.
        if rmeta.len != meta_len || rmeta.crc != meta_crc {
            return None;
        }
        data_span(*rsrc, rpayload, rentry, i).ok()
    };

    let mut outcome = RepairOutcome {
        bytes: None,
        repaired: Vec::new(),
        parity_rebuilt: 0,
        lost: Vec::new(),
        bytes_read: 0,
    };

    // Phase 1 — recover every data chunk, field by field, cascading the
    // avenues until a full pass makes no progress.
    let mut recovered: Vec<Vec<Vec<u8>>> = Vec::with_capacity(fields.len());
    for entry in &fields {
        let n = entry.chunks.len();
        let mut chunks: Vec<Option<Vec<u8>>> = (0..n)
            .map(|i| data_span(src, &payload, entry, i).ok().map(Cow::into_owned))
            .collect();
        let mut sources: Vec<Option<RepairSource>> = vec![None; n];
        // The raw re-encode covers the whole field; run it at most once.
        let mut raw_chunks: Option<Result<Vec<Vec<u8>>, StoreError>> = None;
        loop {
            let mut progress = false;
            // Avenue 1: the store's own parity, one group at a time.
            for g in 0..group_count(n, width) {
                let members = group_members(g, width, n);
                let missing: Vec<usize> =
                    members.clone().filter(|&c| chunks[c].is_none()).collect();
                if missing.is_empty() {
                    continue;
                }
                let rebuilt: Option<Vec<(usize, Vec<u8>)>> = match scheme {
                    Parity::None => None,
                    Parity::Xor { .. } => (missing.len() == 1)
                        .then(|| {
                            let i = missing[0];
                            let parity = parity_span(src, &payload, entry, g, 1).ok()?;
                            let siblings = members
                                .clone()
                                .filter(|&c| c != i)
                                .map(|c| chunks[c].as_deref().expect("siblings intact"))
                                .collect::<Vec<_>>();
                            let b = reconstruct(&parity, siblings, entry.chunks[i].len as usize)?;
                            Some(vec![(i, b)])
                        })
                        .flatten(),
                    Parity::Rs { .. } => {
                        let member_payloads: Vec<Option<&[u8]>> =
                            members.clone().map(|c| chunks[c].as_deref()).collect();
                        let lens: Vec<usize> = members
                            .clone()
                            .map(|c| entry.chunks[c].len as usize)
                            .collect();
                        let shard_data: Vec<Option<Cow<'_, [u8]>>> = (0..shards)
                            .map(|j| parity_span(src, &payload, entry, g * shards + j, shards).ok())
                            .collect();
                        let shard_payloads: Vec<Option<&[u8]>> =
                            shard_data.iter().map(|s| s.as_deref()).collect();
                        gf256::rs_recover(&member_payloads, &shard_payloads, &lens).map(|v| {
                            v.into_iter()
                                .map(|(local, b)| (members.start + local, b))
                                .collect()
                        })
                    }
                };
                for (i, b) in rebuilt.into_iter().flatten() {
                    // Never splice in a reconstruction the footer disowns.
                    if crc32(&b) == entry.chunks[i].crc {
                        chunks[i] = Some(b);
                        sources[i] = Some(RepairSource::Parity);
                        progress = true;
                    }
                }
            }
            // Avenue 2: the replica store.
            for i in 0..n {
                if chunks[i].is_some() {
                    continue;
                }
                let meta = &entry.chunks[i];
                if let Some(p) = replica_chunk(&entry.name, i, meta.len, meta.crc) {
                    chunks[i] = Some(p.into_owned());
                    sources[i] = Some(RepairSource::Replica);
                    progress = true;
                }
            }
            // Avenue 3: re-encode from the original field data.
            if let Some(raw_src) = raw {
                if chunks.iter().any(Option::is_none) {
                    let encoded =
                        raw_chunks.get_or_insert_with(|| raw_encode_field(&header, entry, raw_src));
                    if let Ok(encoded) = encoded {
                        for i in 0..n {
                            if chunks[i].is_some() {
                                continue;
                            }
                            let meta = &entry.chunks[i];
                            let b = &encoded[i];
                            if b.len() as u64 == meta.len && crc32(b) == meta.crc {
                                chunks[i] = Some(b.clone());
                                sources[i] = Some(RepairSource::Raw);
                                progress = true;
                            }
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }
        for i in 0..n {
            match (&chunks[i], sources[i]) {
                (Some(_), Some(source)) => outcome.repaired.push(RepairedChunk {
                    field: entry.name.clone(),
                    chunk: i,
                    source,
                }),
                // When a raw source was offered but could not be used, that
                // reason (mesh mismatch, missing precision control, …) is
                // the actionable error — report it instead of the
                // underlying span damage the caller already knows about.
                (None, _) => outcome.lost.push(LostChunk {
                    field: entry.name.clone(),
                    chunk: i,
                    error: match &raw_chunks {
                        Some(Err(e)) => e.clone(),
                        _ => data_span(src, &payload, entry, i).unwrap_err(),
                    },
                }),
                _ => {}
            }
        }
        recovered.push(chunks.into_iter().map(|c| c.unwrap_or_default()).collect());
    }

    if !outcome.lost.is_empty() {
        outcome.bytes_read = src.bytes_read();
        return Ok(outcome);
    }

    // Phase 2 — reassemble with the writer's deterministic layout
    // (field-major data, then field-major parity), recomputing every
    // offset and parity payload. For a writer-produced store this
    // reproduces the pre-damage bytes exactly.
    let mut new_payload: Vec<u8> = Vec::with_capacity((payload.end - payload.start) as usize);
    let mut entries: Vec<FieldEntry> = Vec::with_capacity(fields.len());
    for (f, entry) in fields.iter().enumerate() {
        let mut chunks = Vec::with_capacity(entry.chunks.len());
        for (i, meta) in entry.chunks.iter().enumerate() {
            let mut meta = *meta;
            meta.offset = new_payload.len() as u64;
            new_payload.extend_from_slice(&recovered[f][i]);
            chunks.push(meta);
        }
        entries.push(FieldEntry {
            name: entry.name.clone(),
            resolved_bound: entry.resolved_bound,
            control: entry.control,
            chunks,
            parity: Vec::new(),
        });
    }
    for (f, entry) in fields.iter().enumerate() {
        for g in 0..group_count(entry.chunks.len(), width) {
            let members = group_members(g, width, entry.chunks.len());
            let new_shards: Vec<Vec<u8>> = match scheme {
                Parity::None => Vec::new(),
                Parity::Xor { .. } => vec![build_group_parity(
                    members.map(|c| recovered[f][c].as_slice()),
                )],
                Parity::Rs { .. } => {
                    let payloads: Vec<&[u8]> =
                        members.map(|c| recovered[f][c].as_slice()).collect();
                    gf256::rs_encode(&payloads, shards).ok_or(StoreError::Internal(
                        "rs encode rejected a validated geometry",
                    ))?
                }
            };
            for (j, parity_bytes) in new_shards.iter().enumerate() {
                let slot = g * shards + j;
                let crc = crc32(parity_bytes);
                if parity_span(src, &payload, entry, slot, shards).is_err()
                    || crc != entry.parity[slot].crc
                {
                    outcome.parity_rebuilt += 1;
                }
                entries[f].parity.push(ParityMeta {
                    offset: new_payload.len() as u64,
                    len: parity_bytes.len() as u64,
                    crc,
                });
                new_payload.extend_from_slice(parity_bytes);
            }
        }
    }
    outcome.bytes = Some(assemble(write_header(&header), &new_payload, &entries));
    outcome.bytes_read = src.bytes_read();
    Ok(outcome)
}

/// Outcome of [`salvage_torn`]: what survived of a torn store.
#[derive(Debug, Clone, PartialEq)]
pub struct TornSalvage {
    /// A fully valid (committed, index-CRC-clean) store covering every
    /// field's intact whole-chunk prefix, with parity recomputed over the
    /// kept chunks — `Some` only when at least one chunk survived.
    pub bytes: Option<Vec<u8>>,
    /// Fields in the recovered index.
    pub fields: usize,
    /// Data chunks the recovered index describes, across all fields.
    pub chunks_total: usize,
    /// Data chunks kept (the sum of per-field intact prefixes).
    pub chunks_kept: usize,
    /// Every chunk dropped, with the first failure per field carrying the
    /// real damage and the rest marked as beyond the salvageable prefix.
    pub dropped: Vec<LostChunk>,
}

impl TornSalvage {
    /// Whether anything was recovered.
    pub fn salvaged(&self) -> bool {
        self.bytes.is_some()
    }

    /// Machine-readable JSON summary (hand-rolled: no serde in tree).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"torn\":true,\"salvaged\":{},\"fields\":{},\
             \"chunks_total\":{},\"chunks_kept\":{},\"dropped\":[",
            self.salvaged(),
            self.fields,
            self.chunks_total,
            self.chunks_kept,
        );
        for (i, lost) in self.dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"field\":\"{}\",\"chunk\":{},\"error\":\"{}\"}}",
                json_escape(&lost.field),
                lost.chunk,
                json_escape(&lost.error.to_string()),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Salvages a **torn** v4 store (invalid or missing commit record) into a
/// valid truncated store covering the readable prefix, instead of refusing
/// to touch it.
///
/// The damage model is a crash mid-write (or mid-flush): the tail —
/// commit record, and possibly trailer, footer, and late payload pages —
/// never hit the disk, or hit it as garbage. Salvage works backwards from
/// what *can* be trusted:
///
/// 1. the fixed header must parse ([`crate::peek_header`] — a store torn
///    inside its header has nothing to salvage);
/// 2. the buffer is scanned backwards for an index trailer
///    (`footer offset · footer crc · INDEX_MAGIC`) whose CRC over
///    `header ++ footer` verifies — the 32-bit check makes a false match
///    on payload bytes effectively impossible, so a verified candidate
///    *is* the written index;
/// 3. with the index recovered, each field keeps the longest prefix of
///    data chunks that are in-bounds and CRC-clean; everything after the
///    first bad chunk is dropped (chunk indices are positional — keeping
///    a post-gap chunk would silently shift its cells);
/// 4. kept chunks are reassembled with recomputed offsets and freshly
///    computed parity via the writer's deterministic layout, producing a
///    committed store that opens and queries normally over the covered
///    region.
///
/// Errors when the store is not torn (use [`scrub`]/[`repair`] instead),
/// when the header is unreadable, or when no index trailer survives
/// (rebuild from raw data is then the only avenue).
pub fn salvage_torn(bytes: &[u8]) -> Result<TornSalvage, StoreError> {
    match format::open(bytes) {
        Ok(_) => {
            return Err(StoreError::InvalidOptions(
                "store is not torn; use scrub/repair instead",
            ))
        }
        Err(StoreError::Torn) => {}
        Err(e) => return Err(e),
    }
    let header = format::peek_header(bytes)?;
    let header_len = header.header_bytes;

    // Scan backwards for a verifiable index trailer. The trailer is
    // `offset: u64 · crc: u32 · INDEX_MAGIC`, so a magic hit at `q` puts
    // the trailer at `q-12..q+4` and the footer at `offset..q-12`.
    let magic = format::INDEX_MAGIC;
    let mut recovered: Option<(Vec<FieldEntry>, u64)> = None;
    let mut q = bytes.len().saturating_sub(4);
    while q >= header_len + 12 {
        if bytes[q..q + 4] == magic {
            let footer_offset =
                u64::from_le_bytes(bytes[q - 12..q - 4].try_into().expect("8 bytes")) as usize;
            let stored_crc = u32::from_le_bytes(bytes[q - 4..q].try_into().expect("4 bytes"));
            if footer_offset >= header_len && footer_offset <= q - 12 {
                let footer = &bytes[footer_offset..q - 12];
                let mut crc_input = bytes[..header_len].to_vec();
                crc_input.extend_from_slice(footer);
                if crc32(&crc_input) == stored_crc {
                    if let Ok(fields) = format::read_footer(footer, header.version) {
                        recovered = Some((fields, footer_offset as u64));
                        break;
                    }
                }
            }
        }
        q -= 1;
    }
    let Some((fields, footer_offset)) = recovered else {
        return Err(StoreError::Corrupt(
            "torn store has no recoverable index trailer (rebuild from raw data)",
        ));
    };

    // Keep each field's longest intact whole-chunk prefix. Chunk offsets
    // are payload-relative; the payload starts right after the header.
    let payload_start = header_len as u64;
    let mut salvage = TornSalvage {
        bytes: None,
        fields: fields.len(),
        chunks_total: fields.iter().map(|f| f.chunks.len()).sum(),
        chunks_kept: 0,
        dropped: Vec::new(),
    };
    let width = header.parity_group_width as usize;
    let scheme = header.scheme();
    let shards = scheme.shards() as usize;
    let mut new_payload: Vec<u8> = Vec::new();
    let mut entries: Vec<FieldEntry> = Vec::with_capacity(fields.len());
    let mut kept_payloads: Vec<Vec<Vec<u8>>> = Vec::with_capacity(fields.len());
    for entry in &fields {
        let mut kept: Vec<Vec<u8>> = Vec::new();
        let mut first_error: Option<StoreError> = None;
        for (i, meta) in entry.chunks.iter().enumerate() {
            if first_error.is_none() {
                let lo = payload_start.saturating_add(meta.offset);
                let hi = lo.saturating_add(meta.len);
                let in_bounds = hi <= bytes.len() as u64 && hi <= footer_offset;
                let result = if !in_bounds {
                    Err(StoreError::Truncated {
                        needed: hi as usize,
                        have: (bytes.len() as u64).min(footer_offset) as usize,
                    })
                } else {
                    let span = &bytes[lo as usize..hi as usize];
                    if crc32(span) == meta.crc {
                        Ok(span.to_vec())
                    } else {
                        Err(StoreError::ChunkCrc {
                            field: entry.name.clone(),
                            chunk: i,
                        })
                    }
                };
                match result {
                    Ok(span) => {
                        kept.push(span);
                        continue;
                    }
                    Err(e) => first_error = Some(e),
                }
            }
            salvage.dropped.push(LostChunk {
                field: entry.name.clone(),
                chunk: i,
                error: if i == kept.len() {
                    first_error.clone().expect("first failure recorded")
                } else {
                    StoreError::Corrupt("beyond the salvageable prefix")
                },
            });
        }
        salvage.chunks_kept += kept.len();
        let mut chunks = Vec::with_capacity(kept.len());
        for (i, payload) in kept.iter().enumerate() {
            let mut meta = entry.chunks[i];
            meta.offset = new_payload.len() as u64;
            new_payload.extend_from_slice(payload);
            chunks.push(meta);
        }
        entries.push(FieldEntry {
            name: entry.name.clone(),
            resolved_bound: entry.resolved_bound,
            control: entry.control,
            chunks,
            parity: Vec::new(),
        });
        kept_payloads.push(kept);
    }
    if salvage.chunks_kept == 0 {
        return Ok(salvage);
    }

    // Recompute parity over the kept chunks (the old parity protected
    // groups that no longer exist at their old widths).
    for (f, kept) in kept_payloads.iter().enumerate() {
        for g in 0..group_count(kept.len(), width) {
            let members = group_members(g, width, kept.len());
            let new_shards: Vec<Vec<u8>> = match scheme {
                Parity::None => Vec::new(),
                Parity::Xor { .. } => {
                    vec![build_group_parity(members.map(|c| kept[c].as_slice()))]
                }
                Parity::Rs { .. } => {
                    let payloads: Vec<&[u8]> = members.map(|c| kept[c].as_slice()).collect();
                    gf256::rs_encode(&payloads, shards).ok_or(StoreError::Internal(
                        "rs encode rejected a validated geometry",
                    ))?
                }
            };
            for parity_bytes in &new_shards {
                entries[f].parity.push(ParityMeta {
                    offset: new_payload.len() as u64,
                    len: parity_bytes.len() as u64,
                    crc: crc32(parity_bytes),
                });
                new_payload.extend_from_slice(parity_bytes);
            }
        }
    }
    salvage.bytes = Some(assemble(write_header(&header), &new_payload, &entries));
    Ok(salvage)
}

/// Checks that `replica` is structurally interchangeable with the store
/// being repaired: same mesh structure bytes and same encoding parameters,
/// so equal (chunk index → payload) mappings are meaningful.
fn replica_compatible(ours: &StoreHeader, theirs: &StoreHeader) -> bool {
    ours.structure == theirs.structure
        && ours.policy == theirs.policy
        && ours.mode == theirs.mode
        && ours.codec == theirs.codec
        && ours.value_type == theirs.value_type
        && ours.chunk_target_bytes == theirs.chunk_target_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject;
    use crate::writer::StoreWriter;
    use zmesh::CompressionConfig;
    use zmesh_amr::{datasets, AmrField, StorageMode};

    fn dataset() -> datasets::Dataset {
        datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny)
    }

    fn refs(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
    }

    fn store_with(parity: Parity) -> Vec<u8> {
        let ds = dataset();
        StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(512)
            .with_parity(parity)
            .write(&refs(&ds))
            .unwrap()
            .bytes
    }

    fn store(width: u32) -> Vec<u8> {
        store_with(if width == 0 {
            Parity::None
        } else {
            Parity::Xor { width }
        })
    }

    fn rs_store(k: u32, m: u32) -> Vec<u8> {
        store_with(Parity::Rs { data: k, parity: m })
    }

    #[test]
    fn scrub_is_clean_on_a_fresh_store_and_json_parses_shape() {
        let bytes = store(8);
        let report = scrub(&bytes).unwrap();
        assert!(report.is_clean());
        assert!(report.parity_available);
        assert_eq!(report.parity_shards, 1);
        assert!(report.data_chunks > 0);
        assert!(report.parity_chunks > 0);
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"parity_shards\":1"));
        assert!(json.contains("\"damaged\":[]"));
        // The CRC walk reports its own throughput.
        assert!(json.contains("\"elapsed_secs\":"));
        assert!(json.contains("\"bytes_per_s\":"));
        assert!(report.elapsed_secs > 0.0);
        assert!(report.bytes_per_s > 0);
    }

    #[test]
    fn scrub_classifies_recoverable_and_unrecoverable_damage() {
        let mut bytes = store(8);
        faultinject::flip_data_chunk(&mut bytes, 0, 1);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.damaged.len(), 1);
        assert!(report.damaged[0].recoverable);
        assert_eq!(report.recoverable(), 1);
        assert_eq!(report.unrecoverable(), 0);

        // Second failure in the same group makes both unrecoverable.
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.damaged.len(), 2);
        assert_eq!(report.unrecoverable(), 2);
    }

    #[test]
    fn scrub_classifies_rs_damage_against_the_shard_budget() {
        let mut bytes = rs_store(8, 2);
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.version, 4);
        assert_eq!(report.parity_shards, 2);
        assert_eq!(report.damaged.len(), 2);
        assert_eq!(report.recoverable(), 2, "two failures fit an m = 2 budget");

        // A third failure in the same group exceeds the budget.
        faultinject::flip_data_chunk(&mut bytes, 0, 4);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.damaged.len(), 3);
        assert_eq!(report.unrecoverable(), 3);
    }

    #[test]
    fn scrub_reports_v2_damage_as_unrecoverable() {
        let mut bytes = store(0);
        let report = scrub(&bytes).unwrap();
        assert!(report.is_clean());
        assert!(!report.parity_available);
        assert_eq!(report.parity_chunks, 0);
        assert_eq!(report.parity_shards, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        let report = scrub(&bytes).unwrap();
        assert_eq!(report.unrecoverable(), 1);
        assert!(report.to_json().contains("\"parity_available\":false"));
    }

    #[test]
    fn repair_restores_byte_identity_from_parity() {
        let clean = store(8);
        let mut bytes = clean.clone();
        faultinject::flip_data_chunk(&mut bytes, 0, 1);
        faultinject::flip_data_chunk(&mut bytes, 1, 3);
        let outcome = repair(&bytes, None).unwrap();
        assert_eq!(outcome.repaired.len(), 2);
        assert!(outcome.lost.is_empty());
        assert!(outcome
            .repaired
            .iter()
            .all(|r| r.source == RepairSource::Parity));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_restores_byte_identity_from_rs_parity() {
        let clean = rs_store(8, 2);
        let mut bytes = clean.clone();
        // Two failures in one group: beyond XOR, within an m = 2 budget.
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        faultinject::flip_data_chunk(&mut bytes, 1, 5);
        let outcome = repair(&bytes, None).unwrap();
        assert_eq!(outcome.repaired.len(), 3);
        assert!(outcome.lost.is_empty());
        assert!(outcome
            .repaired
            .iter()
            .all(|r| r.source == RepairSource::Parity));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_rebuilds_damaged_parity() {
        let clean = store(8);
        let mut bytes = clean.clone();
        faultinject::flip_parity_chunk(&mut bytes, 0, 0);
        let outcome = repair(&bytes, None).unwrap();
        assert!(outcome.repaired.is_empty());
        assert_eq!(outcome.parity_rebuilt, 1);
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_rebuilds_damaged_rs_shards() {
        let clean = rs_store(4, 2);
        let mut bytes = clean.clone();
        // Slot 1 = group 0, shard 1; slot 3 = group 1, shard 1.
        faultinject::flip_parity_chunk(&mut bytes, 0, 1);
        faultinject::flip_parity_chunk(&mut bytes, 0, 3);
        let outcome = repair(&bytes, None).unwrap();
        assert!(outcome.repaired.is_empty());
        assert_eq!(outcome.parity_rebuilt, 2);
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_pulls_from_replica_when_parity_cannot_help() {
        let clean = store(8);
        let mut bytes = clean.clone();
        // Two failures in one group: beyond XOR parity.
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        let outcome = repair(&bytes, None).unwrap();
        assert_eq!(outcome.lost.len(), 2);
        assert!(outcome.bytes.is_none());

        let outcome = repair(&bytes, Some(&clean)).unwrap();
        assert!(outcome.lost.is_empty());
        // Recovery cascades: once the replica restores a chunk, the group
        // is back inside the parity budget and parity can finish the job —
        // but the replica pass of the same round may already have healed
        // both, so only the replica source is guaranteed to appear.
        assert!(outcome
            .repaired
            .iter()
            .any(|r| r.source == RepairSource::Replica));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn repair_reencodes_from_raw_when_parity_cannot_help() {
        let ds = dataset();
        let fields = refs(&ds);
        let clean = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(512)
            .with_parity(Parity::Xor { width: 8 })
            .write(&fields)
            .unwrap()
            .bytes;
        let mut bytes = clean.clone();
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        assert!(!repair(&bytes, None).unwrap().lost.is_empty());

        let raw = RawSource::new(&fields);
        let outcome = repair_with(&bytes, None, Some(&raw)).unwrap();
        assert!(outcome.lost.is_empty());
        assert!(outcome
            .repaired
            .iter()
            .any(|r| r.source == RepairSource::Raw));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn raw_source_alone_rebuilds_a_v2_store() {
        let ds = dataset();
        let fields = refs(&ds);
        let clean = StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(512)
            .with_parity(Parity::None)
            .write(&fields)
            .unwrap()
            .bytes;
        let mut bytes = clean.clone();
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 1, 1);
        let raw = RawSource::new(&fields);
        let outcome = repair_with(&bytes, None, Some(&raw)).unwrap();
        assert!(outcome.lost.is_empty());
        assert!(outcome
            .repaired
            .iter()
            .all(|r| r.source == RepairSource::Raw));
        assert_eq!(outcome.bytes.unwrap(), clean);
    }

    #[test]
    fn raw_source_rejects_a_mismatched_dataset() {
        let mut bytes = store(8);
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        faultinject::flip_data_chunk(&mut bytes, 0, 2);
        let other = datasets::front2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let fields = refs(&other);
        let raw = RawSource::new(&fields);
        let outcome = repair_with(&bytes, None, Some(&raw)).unwrap();
        assert_eq!(outcome.lost.len(), 2, "wrong mesh must never repair");
        assert!(outcome.bytes.is_none());
    }

    #[test]
    fn repair_rejects_mismatched_replica() {
        let mut bytes = store(8);
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        let other = {
            let ds = datasets::front2d(StorageMode::AllCells, datasets::Scale::Tiny);
            let fields: Vec<(&str, &AmrField)> =
                ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
            StoreWriter::new(CompressionConfig::zmesh_default())
                .with_chunk_target_bytes(512)
                .write(&fields)
                .unwrap()
                .bytes
        };
        assert!(matches!(
            repair(&bytes, Some(&other)),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn repair_of_a_clean_store_is_the_identity() {
        for parity in [
            Parity::Xor { width: 8 },
            Parity::None,
            Parity::Rs { data: 4, parity: 2 },
        ] {
            let clean = store_with(parity);
            let outcome = repair(&clean, None).unwrap();
            assert!(outcome.repaired.is_empty());
            assert_eq!(outcome.parity_rebuilt, 0);
            assert_eq!(outcome.bytes.unwrap(), clean, "{parity:?}");
        }
    }

    fn fixed_rate_store(ds: &datasets::Dataset) -> Vec<u8> {
        let config = CompressionConfig {
            codec: zmesh_codecs::CodecKind::Zfp,
            control: ErrorControl::FixedRate(16.0),
            ..CompressionConfig::zmesh_default()
        };
        StoreWriter::new(config)
            .with_chunk_target_bytes(512)
            .with_parity(Parity::None)
            .write(&refs(ds))
            .unwrap()
            .bytes
    }

    #[test]
    fn raw_reencode_reproduces_fixed_rate_fields_from_the_recorded_control() {
        let ds = dataset();
        let pristine = fixed_rate_store(&ds);
        let (_, fields, _) = format::open(&pristine).unwrap();
        assert!(fields.iter().all(
            |f| f.resolved_bound.is_none() && f.control == Some(ErrorControl::FixedRate(16.0))
        ));

        let mut broken = pristine.clone();
        faultinject::flip_data_chunk(&mut broken, 0, 0);
        let raw_fields = refs(&ds);
        let raw = RawSource::new(&raw_fields);
        let outcome = repair_with(&broken, None, Some(&raw)).unwrap();
        assert!(outcome.lost.is_empty(), "{:?}", outcome.lost);
        assert_eq!(outcome.bytes.unwrap(), pristine);
    }

    #[test]
    fn raw_reencode_rejects_stores_without_a_recorded_control() {
        let ds = dataset();
        let pristine = fixed_rate_store(&ds);
        // Simulate a store written before control tagging: same payload,
        // footer control record stripped back to tag 0.
        let (header, mut fields, payload) = format::open(&pristine).unwrap();
        for f in &mut fields {
            f.control = None;
        }
        let mut legacy = assemble(write_header(&header), &pristine[payload], &fields);
        faultinject::flip_data_chunk(&mut legacy, 0, 0);

        let raw_fields = refs(&ds);
        let raw = RawSource::new(&raw_fields);
        let outcome = repair_with(&legacy, None, Some(&raw)).unwrap();
        assert!(!outcome.lost.is_empty());
        assert!(
            matches!(
                &outcome.lost[0].error,
                StoreError::InvalidOptions(msg) if msg.contains("control")
            ),
            "want a clear missing-control error, got {:?}",
            outcome.lost[0].error
        );
    }

    #[test]
    fn salvage_torn_with_only_the_commit_record_lost_is_lossless() {
        let clean = rs_store(4, 2);
        let torn = faultinject::torn_at(&clean, clean.len() - format::COMMIT_RECORD_BYTES);
        assert!(matches!(format::open(&torn), Err(StoreError::Torn)));
        let salvage = salvage_torn(&torn).unwrap();
        assert!(salvage.dropped.is_empty());
        assert_eq!(salvage.chunks_kept, salvage.chunks_total);
        // Reassembly is deterministic: with every chunk intact the salvage
        // reproduces the pre-tear bytes exactly, commit record included.
        assert_eq!(salvage.bytes.as_deref(), Some(&clean[..]));
        let json = salvage.to_json();
        assert!(json.contains("\"salvaged\":true"));
        assert!(json.contains("\"dropped\":[]"));
    }

    #[test]
    fn salvage_torn_keeps_the_intact_prefix_and_drops_the_damaged_tail() {
        let clean = rs_store(4, 2);
        let (_, fields, _) = format::open(&clean).unwrap();
        let n0 = fields[0].chunks.len();
        let n1 = fields[1].chunks.len();
        assert!(n0 >= 4, "need enough chunks for a meaningful prefix");

        // Crash-mid-flush damage model: a payload page of field 0 never
        // hit the disk (chunk 2 garbage), and the commit record is gone.
        let mut torn = clean.clone();
        faultinject::flip_data_chunk(&mut torn, 0, 2);
        let cut = torn.len() - format::COMMIT_RECORD_BYTES;
        let mut torn = faultinject::torn_at(&torn, cut);
        assert!(matches!(format::open(&torn), Err(StoreError::Torn)));

        let salvage = salvage_torn(&torn).unwrap();
        assert_eq!(salvage.fields, 2);
        assert_eq!(salvage.chunks_total, n0 + n1);
        // Field 0 keeps chunks 0..2; field 1 is untouched and keeps all.
        assert_eq!(salvage.chunks_kept, 2 + n1);
        assert_eq!(salvage.dropped.len(), n0 - 2);
        assert!(matches!(
            &salvage.dropped[0].error,
            StoreError::ChunkCrc { chunk: 2, .. }
        ));
        for lost in &salvage.dropped[1..] {
            assert!(matches!(lost.error, StoreError::Corrupt(_)));
        }
        let json = salvage.to_json();
        assert!(json.contains("\"chunks_kept\":"));
        assert!(json.contains("\"error\":\"crc mismatch"));

        // The emitted store is fully valid (committed, CRC-clean) and
        // queryable: the prefix region decodes bit-identically to the
        // original, under Strict.
        let out = salvage.bytes.expect("prefix survived");
        let report = scrub(&out).unwrap();
        assert!(report.is_clean(), "{:?}", report.damaged);
        let reader = crate::StoreReader::open(&out).unwrap();
        assert_eq!(reader.fields()[0].chunks.len(), 2);
        assert_eq!(reader.fields()[1].chunks.len(), n1);
        let clean_reader = crate::StoreReader::open(&clean).unwrap();
        let side = reader.tree().level_dims(reader.tree().max_level())[0] as u32 - 1;
        let q = crate::Query::bbox([0, 0, 0], [side, side, 0]);
        let got = reader.query("energy", &q).unwrap();
        let want = clean_reader.query("energy", &q).unwrap();
        assert_eq!(got.storage_indices, want.storage_indices);
        let bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want_bits);

        // A tear that also destroys the footer leaves nothing to recover.
        let cut = torn.len() / 3;
        faultinject::truncate(&mut torn, cut);
        match format::open(&torn) {
            Err(StoreError::Torn) => {
                let err = salvage_torn(&torn).unwrap_err();
                assert!(matches!(err, StoreError::Corrupt(msg) if msg.contains("index trailer")));
            }
            Err(_) => {} // cut landed inside the header: nothing to test
            Ok(_) => panic!("a heavily truncated store cannot open clean"),
        }
    }

    #[test]
    fn salvage_torn_rejects_healthy_stores() {
        let clean = rs_store(4, 2);
        assert!(matches!(
            salvage_torn(&clean),
            Err(StoreError::InvalidOptions(_))
        ));
    }
}
