//! Chunk-group parity: the erasure-protection layer of the v3/v4 stores.
//!
//! The writer groups each field's data chunks into fixed-width **parity
//! groups** (default [`DEFAULT_PARITY_GROUP_WIDTH`] data chunks per group)
//! and stores, per group, one parity chunk: the byte-wise XOR of the
//! group's compressed payloads, each zero-padded to the length of the
//! longest member. Because XOR is its own inverse, any *single* missing
//! member of a group can be rebuilt from the surviving members plus the
//! parity chunk — and the rebuilt bytes are re-verified against the
//! member's CRC from the (index-CRC-protected) footer, so a reconstruction
//! can never silently hand back wrong data.
//!
//! The v4 format generalizes the group to a Reed–Solomon code over
//! GF(2^8) (see [`crate::gf256`]): `k` data chunks are protected by `m`
//! parity shards, and **any** ≤ m CRC-failing members of a group are
//! recoverable — shard `j` of group `g` sits at footer index `g·m + j`,
//! so v3 is exactly the `m = 1` degenerate layout.
//!
//! The parity section lives *after* the data payload region and is indexed
//! in the footer alongside the per-chunk offsets/CRCs ([`ParityMeta`]).
//! Everything here is pure byte math over untrusted input: helpers return
//! `Option`/`Result`, never panic.

use crate::format::{put_u32, put_u64, Cursor, StoreError};
use crate::gf256;

/// Erasure-protection scheme of a store: what the writer emits and what a
/// parsed header reports ([`crate::StoreHeader::scheme`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parity {
    /// No parity section (v2 layout).
    None,
    /// One XOR parity chunk per group of `width` data chunks (v3 layout);
    /// tolerates a single erasure per group.
    Xor {
        /// Data chunks per parity group (≥ 1).
        width: u32,
    },
    /// `parity` GF(2^8) Reed–Solomon shards per group of `data` chunks
    /// (v4 layout); tolerates up to `parity` erasures per group.
    Rs {
        /// Data chunks per parity group (≥ 1).
        data: u32,
        /// Parity shards per group (≥ 1, `data + parity ≤ 256`).
        parity: u32,
    },
}

impl Default for Parity {
    fn default() -> Self {
        Parity::Xor {
            width: DEFAULT_PARITY_GROUP_WIDTH,
        }
    }
}

impl Parity {
    /// Data chunks per group (`0` when parity is disabled).
    pub fn width(&self) -> u32 {
        match *self {
            Parity::None => 0,
            Parity::Xor { width } => width,
            Parity::Rs { data, .. } => data,
        }
    }

    /// Parity shards per group — the per-group erasure budget.
    pub fn shards(&self) -> u32 {
        match *self {
            Parity::None => 0,
            Parity::Xor { .. } => 1,
            Parity::Rs { parity, .. } => parity,
        }
    }

    /// Store format version this scheme serializes as.
    pub fn store_version(&self) -> u16 {
        match self {
            Parity::None => 2,
            Parity::Xor { .. } => 3,
            Parity::Rs { .. } => 4,
        }
    }

    /// Rejects geometries the format cannot represent.
    pub fn validate(&self) -> Result<(), StoreError> {
        match *self {
            Parity::None => Ok(()),
            Parity::Xor { width } => {
                if width == 0 {
                    Err(StoreError::InvalidOptions(
                        "xor parity needs a nonzero group width (use Parity::None)",
                    ))
                } else {
                    Ok(())
                }
            }
            Parity::Rs { data, parity } => {
                if data == 0 || parity == 0 {
                    Err(StoreError::InvalidOptions(
                        "rs parity needs nonzero data and parity shard counts",
                    ))
                } else if data as usize + parity as usize > gf256::MAX_SHARDS {
                    Err(StoreError::InvalidOptions(
                        "rs parity needs data + parity <= 256 shards per group",
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Default data chunks per parity group (8 data + 1 parity ⇒ ~12.5% space
/// overhead on the payload).
pub const DEFAULT_PARITY_GROUP_WIDTH: u32 = 8;

/// Serialized size of one [`ParityMeta`].
pub const PARITY_META_BYTES: usize = 20;

/// Fixed-width footer metadata for one parity chunk (one per group per
/// field). Offsets are relative to the payload span, like [`crate::ChunkMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityMeta {
    /// Byte offset of the parity payload, relative to the payload span.
    pub offset: u64,
    /// Parity payload length — the maximum compressed length among the
    /// group's data chunks.
    pub len: u64,
    /// CRC-32 of the parity payload.
    pub crc: u32,
}

impl ParityMeta {
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        let before = out.len();
        put_u64(out, self.offset);
        put_u64(out, self.len);
        put_u32(out, self.crc);
        debug_assert_eq!(out.len() - before, PARITY_META_BYTES);
    }

    pub(crate) fn read(c: &mut Cursor<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            offset: c.u64()?,
            len: c.u64()?,
            crc: c.u32()?,
        })
    }
}

/// Number of parity groups covering `n_chunks` data chunks at `width`
/// chunks per group (`0` when parity is disabled).
pub fn group_count(n_chunks: usize, width: usize) -> usize {
    if width == 0 {
        0
    } else {
        n_chunks.div_ceil(width)
    }
}

/// The parity group a data chunk belongs to.
pub fn group_of(chunk: usize, width: usize) -> usize {
    debug_assert!(width > 0);
    chunk / width.max(1)
}

/// The data-chunk indices of one parity group (clipped to `n_chunks` for
/// the final, possibly short, group).
pub fn group_members(group: usize, width: usize, n_chunks: usize) -> std::ops::Range<usize> {
    let lo = group.saturating_mul(width).min(n_chunks);
    let hi = lo.saturating_add(width).min(n_chunks);
    lo..hi
}

/// XORs `src` into `acc`, growing `acc` with zero-padding when `src` is
/// longer (zero-padding is the identity of XOR, so order never matters).
pub fn xor_into(acc: &mut Vec<u8>, src: &[u8]) {
    if src.len() > acc.len() {
        acc.resize(src.len(), 0);
    }
    for (a, &s) in acc.iter_mut().zip(src) {
        *a ^= s;
    }
}

/// Builds one group's parity payload: the XOR of every member payload,
/// zero-padded to the longest.
pub fn build_group_parity<'a>(payloads: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut acc = Vec::new();
    for p in payloads {
        xor_into(&mut acc, p);
    }
    acc
}

/// Reconstructs one missing member of a parity group from the parity
/// payload and every *other* member, truncated to `target_len`. Returns
/// `None` when the recorded length exceeds what the parity chunk can carry
/// (an inconsistent footer — reconstruction would be meaningless). The
/// caller must still verify the result against the member's stored CRC.
pub fn reconstruct<'a>(
    parity: &[u8],
    siblings: impl IntoIterator<Item = &'a [u8]>,
    target_len: usize,
) -> Option<Vec<u8>> {
    if target_len > parity.len() {
        return None;
    }
    let mut acc = parity.to_vec();
    for s in siblings {
        if s.len() > acc.len() {
            // A sibling longer than the parity chunk contradicts the
            // parity invariant (parity len = max member len).
            return None;
        }
        xor_into(&mut acc, s);
    }
    acc.truncate(target_len);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        let m = ParityMeta {
            offset: 1234,
            len: 56,
            crc: 0xfeed_f00d,
        };
        let mut bytes = Vec::new();
        m.write(&mut bytes);
        assert_eq!(bytes.len(), PARITY_META_BYTES);
        let parsed = ParityMeta::read(&mut Cursor::new(&bytes)).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn group_math_covers_all_chunks_exactly_once() {
        for (n, w) in [(0usize, 8usize), (1, 8), (8, 8), (9, 8), (17, 4), (5, 1)] {
            let groups = group_count(n, w);
            let mut covered = 0;
            for g in 0..groups {
                let members = group_members(g, w, n);
                assert!(!members.is_empty());
                for c in members.clone() {
                    assert_eq!(group_of(c, w), g);
                }
                covered += members.len();
            }
            assert_eq!(covered, n, "n = {n}, width = {w}");
        }
        assert_eq!(group_count(10, 0), 0);
    }

    #[test]
    fn xor_parity_reconstructs_any_single_member() {
        let members: Vec<Vec<u8>> = vec![
            vec![1, 2, 3, 4, 5],
            vec![9, 8],
            vec![7, 7, 7, 7, 7, 7, 7],
            vec![],
        ];
        let parity = build_group_parity(members.iter().map(Vec::as_slice));
        assert_eq!(parity.len(), 7);
        for missing in 0..members.len() {
            let siblings = members
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != missing)
                .map(|(_, m)| m.as_slice());
            let rebuilt = reconstruct(&parity, siblings, members[missing].len()).unwrap();
            assert_eq!(rebuilt, members[missing], "member {missing}");
        }
    }

    #[test]
    fn reconstruct_rejects_inconsistent_lengths() {
        let parity = vec![0u8; 4];
        assert!(reconstruct(&parity, [], 5).is_none());
        let too_long = [1u8; 9];
        assert!(reconstruct(&parity, [&too_long[..]], 2).is_none());
    }
}
