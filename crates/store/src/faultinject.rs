//! Fault injection for store bytes — the one audited way tests damage a
//! container.
//!
//! Robustness tests used to scatter ad-hoc "flip a byte at this offset"
//! code; every helper here instead locates a target through the store's
//! own (trusted, index-CRC-protected) footer and mutates exactly the bytes
//! it names, so an injected fault damages what the test *says* it damages
//! — a data chunk, a parity chunk, a trailer — and nothing else.
//!
//! Compiled only for tests and under the `testing` cargo feature; helpers
//! panic on invalid targets (they are test tooling, not production code).

use crate::format;
use std::ops::Range;

/// Byte range of data chunk `chunk` of field `field_idx` within `bytes`.
///
/// Panics when `bytes` is not a parseable store or the indices are out of
/// range.
pub fn chunk_byte_range(bytes: &[u8], field_idx: usize, chunk: usize) -> Range<usize> {
    let (_, fields, payload) = format::open(bytes).expect("faultinject: store must parse");
    let meta = fields[field_idx].chunks[chunk];
    let lo = payload.start + meta.offset as usize;
    lo..lo + meta.len as usize
}

/// Byte range of parity chunk `group` of field `field_idx` within `bytes`.
///
/// Panics when the store parses without parity (v2 / width 0) or the
/// indices are out of range.
pub fn parity_byte_range(bytes: &[u8], field_idx: usize, group: usize) -> Range<usize> {
    let (_, fields, payload) = format::open(bytes).expect("faultinject: store must parse");
    let meta = fields[field_idx].parity[group];
    let lo = payload.start + meta.offset as usize;
    lo..lo + meta.len as usize
}

/// Corrupts data chunk `chunk` of field `field_idx` by inverting its first
/// payload byte (guaranteed to fail the chunk CRC).
pub fn flip_data_chunk(bytes: &mut [u8], field_idx: usize, chunk: usize) {
    let range = chunk_byte_range(bytes, field_idx, chunk);
    assert!(!range.is_empty(), "faultinject: empty chunk payload");
    bytes[range.start] ^= 0xff;
}

/// Corrupts parity chunk `group` of field `field_idx` by inverting its
/// first payload byte.
pub fn flip_parity_chunk(bytes: &mut [u8], field_idx: usize, group: usize) {
    let range = parity_byte_range(bytes, field_idx, group);
    assert!(!range.is_empty(), "faultinject: empty parity payload");
    bytes[range.start] ^= 0xff;
}

/// Corrupts several data chunks of field `field_idx` in one call — the
/// multi-erasure scenario Reed–Solomon groups exist for.
pub fn flip_data_chunks(bytes: &mut [u8], field_idx: usize, chunks: &[usize]) {
    for &chunk in chunks {
        flip_data_chunk(bytes, field_idx, chunk);
    }
}

/// Picks `count` *distinct* pseudo-random data chunks of field `field_idx`
/// and corrupts each, deterministically from `seed`. Returns the chosen
/// chunk indices so the test can assert exactly those were repaired.
pub fn random_chunk_flips(
    bytes: &mut [u8],
    field_idx: usize,
    seed: u64,
    count: usize,
) -> Vec<usize> {
    let n = {
        let (_, fields, _) = format::open(bytes).expect("faultinject: store must parse");
        fields[field_idx].chunks.len()
    };
    assert!(count <= n, "faultinject: more flips than chunks");
    let mut rng = Lcg::new(seed);
    let mut picked: Vec<usize> = Vec::with_capacity(count);
    while picked.len() < count {
        let chunk = rng.below(n);
        if !picked.contains(&chunk) {
            picked.push(chunk);
        }
    }
    flip_data_chunks(bytes, field_idx, &picked);
    picked
}

/// The first `cut` bytes of `bytes` — what a crash mid-write leaves on
/// disk when the `.tmp` file was flushed up to `cut` and never renamed.
/// Any proper prefix of a v4 store must open as
/// [`crate::StoreError::Torn`] (or a typed header error below the 6-byte
/// version gate), never panic.
pub fn torn_at(bytes: &[u8], cut: usize) -> Vec<u8> {
    assert!(cut <= bytes.len(), "faultinject: cut beyond buffer");
    bytes[..cut].to_vec()
}

/// Flips bit `bit` of byte `idx`.
pub fn flip_bit(bytes: &mut [u8], idx: usize, bit: u8) {
    bytes[idx] ^= 1 << (bit % 8);
}

/// Overwrites `len` bytes starting at `start` with `fill` (saturated to
/// the buffer).
pub fn splat(bytes: &mut [u8], start: usize, len: usize, fill: u8) {
    let end = start.saturating_add(len).min(bytes.len());
    if start < end {
        bytes[start..end].fill(fill);
    }
}

/// Truncates the buffer to `len` bytes.
pub fn truncate(bytes: &mut Vec<u8>, len: usize) {
    bytes.truncate(len);
}

/// A tiny deterministic PRNG (64-bit LCG, splitmix-style output) so fault
/// campaigns are reproducible from a seed without any dependency.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// PRNG seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Flips `count` pseudo-random bits anywhere in `bytes`, deterministically
/// from `seed`. Returns the flipped (byte, bit) positions.
pub fn random_flips(bytes: &mut [u8], seed: u64, count: usize) -> Vec<(usize, u8)> {
    assert!(!bytes.is_empty(), "faultinject: empty buffer");
    let mut rng = Lcg::new(seed);
    let mut flipped = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = rng.below(bytes.len());
        let bit = (rng.next_u64() % 8) as u8;
        flip_bit(bytes, idx, bit);
        flipped.push((idx, bit));
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StoreWriter;
    use zmesh::CompressionConfig;
    use zmesh_amr::{datasets, AmrField, StorageMode};

    fn store() -> Vec<u8> {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let fields: Vec<(&str, &AmrField)> =
            ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
        StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(512)
            .write(&fields)
            .unwrap()
            .bytes
    }

    #[test]
    fn flips_damage_exactly_the_named_target() {
        let clean = store();
        let mut bytes = clean.clone();
        flip_data_chunk(&mut bytes, 0, 1);
        let diff: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] != clean[i]).collect();
        assert_eq!(diff.len(), 1);
        assert!(chunk_byte_range(&clean, 0, 1).contains(&diff[0]));

        let mut bytes = clean.clone();
        flip_parity_chunk(&mut bytes, 1, 0);
        let diff: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] != clean[i]).collect();
        assert_eq!(diff.len(), 1);
        assert!(parity_byte_range(&clean, 1, 0).contains(&diff[0]));
    }

    #[test]
    fn multi_chunk_flips_hit_exactly_the_picked_chunks() {
        let clean = store();
        let mut bytes = clean.clone();
        let picked = random_chunk_flips(&mut bytes, 0, 7, 3);
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "picks must be distinct");
        let diff: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] != clean[i]).collect();
        assert_eq!(diff.len(), 3);
        for (i, &chunk) in picked.iter().enumerate() {
            let range = chunk_byte_range(&clean, 0, chunk);
            assert!(diff.iter().any(|d| range.contains(d)), "pick {i} missed");
        }

        // Same seed, same picks.
        let mut again = clean.clone();
        assert_eq!(random_chunk_flips(&mut again, 0, 7, 3), picked);
        assert_eq!(again, bytes);
    }

    #[test]
    fn torn_at_is_a_prefix_copy() {
        let clean = store();
        let torn = torn_at(&clean, clean.len() - 5);
        assert_eq!(&torn[..], &clean[..clean.len() - 5]);
        assert_eq!(torn_at(&clean, clean.len()), clean);
    }

    #[test]
    fn random_flips_are_deterministic() {
        let clean = store();
        let (mut a, mut b) = (clean.clone(), clean.clone());
        let fa = random_flips(&mut a, 42, 16);
        let fb = random_flips(&mut b, 42, 16);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        assert_ne!(a, clean);
        let mut c = clean.clone();
        let fc = random_flips(&mut c, 43, 16);
        assert_ne!(fa, fc);
    }
}
