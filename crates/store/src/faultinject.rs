//! Fault injection for store bytes — the one audited way tests damage a
//! container.
//!
//! Robustness tests used to scatter ad-hoc "flip a byte at this offset"
//! code; every helper here instead locates a target through the store's
//! own (trusted, index-CRC-protected) footer and mutates exactly the bytes
//! it names, so an injected fault damages what the test *says* it damages
//! — a data chunk, a parity chunk, a trailer — and nothing else.
//!
//! Compiled only for tests and under the `testing` cargo feature; helpers
//! panic on invalid targets (they are test tooling, not production code).

use crate::format::{self, StoreError};
use crate::sink::ByteSink;
use crate::source::ByteSource;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Byte range of data chunk `chunk` of field `field_idx` within `bytes`.
///
/// Panics when `bytes` is not a parseable store or the indices are out of
/// range.
pub fn chunk_byte_range(bytes: &[u8], field_idx: usize, chunk: usize) -> Range<usize> {
    let (_, fields, payload) = format::open(bytes).expect("faultinject: store must parse");
    let meta = fields[field_idx].chunks[chunk];
    let lo = payload.start + meta.offset as usize;
    lo..lo + meta.len as usize
}

/// Byte range of parity chunk `group` of field `field_idx` within `bytes`.
///
/// Panics when the store parses without parity (v2 / width 0) or the
/// indices are out of range.
pub fn parity_byte_range(bytes: &[u8], field_idx: usize, group: usize) -> Range<usize> {
    let (_, fields, payload) = format::open(bytes).expect("faultinject: store must parse");
    let meta = fields[field_idx].parity[group];
    let lo = payload.start + meta.offset as usize;
    lo..lo + meta.len as usize
}

/// Corrupts data chunk `chunk` of field `field_idx` by inverting its first
/// payload byte (guaranteed to fail the chunk CRC).
pub fn flip_data_chunk(bytes: &mut [u8], field_idx: usize, chunk: usize) {
    let range = chunk_byte_range(bytes, field_idx, chunk);
    assert!(!range.is_empty(), "faultinject: empty chunk payload");
    bytes[range.start] ^= 0xff;
}

/// Corrupts parity chunk `group` of field `field_idx` by inverting its
/// first payload byte.
pub fn flip_parity_chunk(bytes: &mut [u8], field_idx: usize, group: usize) {
    let range = parity_byte_range(bytes, field_idx, group);
    assert!(!range.is_empty(), "faultinject: empty parity payload");
    bytes[range.start] ^= 0xff;
}

/// Corrupts several data chunks of field `field_idx` in one call — the
/// multi-erasure scenario Reed–Solomon groups exist for.
pub fn flip_data_chunks(bytes: &mut [u8], field_idx: usize, chunks: &[usize]) {
    for &chunk in chunks {
        flip_data_chunk(bytes, field_idx, chunk);
    }
}

/// Picks `count` *distinct* pseudo-random data chunks of field `field_idx`
/// and corrupts each, deterministically from `seed`. Returns the chosen
/// chunk indices so the test can assert exactly those were repaired.
pub fn random_chunk_flips(
    bytes: &mut [u8],
    field_idx: usize,
    seed: u64,
    count: usize,
) -> Vec<usize> {
    let n = {
        let (_, fields, _) = format::open(bytes).expect("faultinject: store must parse");
        fields[field_idx].chunks.len()
    };
    assert!(count <= n, "faultinject: more flips than chunks");
    let mut rng = Lcg::new(seed);
    let mut picked: Vec<usize> = Vec::with_capacity(count);
    while picked.len() < count {
        let chunk = rng.below(n);
        if !picked.contains(&chunk) {
            picked.push(chunk);
        }
    }
    flip_data_chunks(bytes, field_idx, &picked);
    picked
}

/// The first `cut` bytes of `bytes` — what a crash mid-write leaves on
/// disk when the `.tmp` file was flushed up to `cut` and never renamed.
/// Any proper prefix of a v4 store must open as
/// [`crate::StoreError::Torn`] (or a typed header error below the 6-byte
/// version gate), never panic.
pub fn torn_at(bytes: &[u8], cut: usize) -> Vec<u8> {
    assert!(cut <= bytes.len(), "faultinject: cut beyond buffer");
    bytes[..cut].to_vec()
}

/// Flips bit `bit` of byte `idx`.
pub fn flip_bit(bytes: &mut [u8], idx: usize, bit: u8) {
    bytes[idx] ^= 1 << (bit % 8);
}

/// Overwrites `len` bytes starting at `start` with `fill` (saturated to
/// the buffer).
pub fn splat(bytes: &mut [u8], start: usize, len: usize, fill: u8) {
    let end = start.saturating_add(len).min(bytes.len());
    if start < end {
        bytes[start..end].fill(fill);
    }
}

/// Truncates the buffer to `len` bytes.
pub fn truncate(bytes: &mut Vec<u8>, len: usize) {
    bytes.truncate(len);
}

/// A tiny deterministic PRNG (64-bit LCG, splitmix-style output) so fault
/// campaigns are reproducible from a seed without any dependency.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// PRNG seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A declarative, seeded fault plan for a [`FaultSource`] or [`FaultSink`].
///
/// Rates are per-mille of `read_at` / `write_all` calls; injected
/// transient failures are bounded to at most [`FaultSpec::burst`]
/// *consecutive* failures, so "transient" keeps its real-world meaning: a
/// retry loop with more attempts than `burst` always gets through.
/// Corruption is *sticky*: every read overlapping a `corrupt` range sees
/// the same inverted bytes, the way a bad sector or bit-rotted page
/// behaves. The write-side hard faults are *positional*: `enospc_at` and
/// `crash_at` trip when the running byte count crosses the threshold,
/// which is what makes kill-point matrices enumerable.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the injection rolls (deterministic campaigns).
    pub seed: u64,
    /// Per-mille of reads answered with an injected transient `EIO`.
    pub transient_per_mille: u32,
    /// Per-mille of reads answered with an injected short read (also
    /// surfaced as transient: the all-or-fail `read_at` contract makes a
    /// short read indistinguishable from an interrupted one).
    pub short_read_per_mille: u32,
    /// Per-mille of writes answered with an injected transient `EIO`
    /// (`wtransient=`). No bytes reach the inner sink, so a retry is
    /// safe — the same discipline real appenders get from
    /// write-at-tracked-offset.
    pub write_transient_per_mille: u32,
    /// Per-mille of writes answered with an injected short write
    /// (`wshort=`). Surfaced as transient for the same reason short reads
    /// are: the all-or-fail `write_all` contract makes a short write an
    /// interrupted one, and the tracked append offset only advances on
    /// success, so the retry overwrites the torn tail.
    pub short_write_per_mille: u32,
    /// Most *consecutive* injected transient failures before an operation
    /// is forced through. A retry policy with `attempts > burst` is
    /// guaranteed to succeed against a transient-only plan.
    pub burst: u32,
    /// Added latency per read (media stall simulation).
    pub latency: Duration,
    /// Absolute byte ranges whose contents are persistently inverted.
    pub corrupt: Vec<Range<u64>>,
    /// Fail every write with [`StoreError::NoSpace`] once it would push
    /// the sink past this many bytes (`enospc_at=`): the full-disk wall.
    /// Sticky — the filesystem does not grow back mid-write.
    pub enospc_at: Option<u64>,
    /// Simulate a hard crash at this byte offset (`crash_at=`): the write
    /// that crosses the threshold forwards only the prefix up to it, then
    /// this and every later operation (including `commit`) fails with a
    /// fatal error — the sink dies with a torn tail exactly `N` bytes
    /// long, like a process killed mid-`write(2)`.
    pub crash_at: Option<u64>,
    /// Only stores whose id contains this substring are wrapped; `None`
    /// wraps every store.
    pub matches: Option<String>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            transient_per_mille: 0,
            short_read_per_mille: 0,
            write_transient_per_mille: 0,
            short_write_per_mille: 0,
            burst: 2,
            latency: Duration::ZERO,
            corrupt: Vec::new(),
            enospc_at: None,
            crash_at: None,
            matches: None,
        }
    }
}

impl FaultSpec {
    /// Parses the compact CLI grammar used by `zmesh serve --fault-plan`
    /// and `zmesh pack --fault-sink`: comma-separated `key=value` pairs,
    /// e.g.
    ///
    /// ```text
    /// seed=42,transient=80,short=20,burst=2,latency_us=50,corrupt=100-200+4096-4200,match=blast
    /// seed=7,wtransient=300,wshort=100,burst=2          # write-side transients
    /// enospc_at=65536                                   # full disk after 64 KiB
    /// crash_at=4096                                     # hard death mid-write
    /// ```
    ///
    /// All keys are optional; unknown keys, repeated keys, and malformed
    /// values are errors (a typo'd chaos plan must not silently inject
    /// nothing).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        let mut seen: Vec<&str> = Vec::new();
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry {pair:?} is not key=value"))?;
            if seen.contains(&key) {
                return Err(format!(
                    "fault-plan key {key:?} given twice — the second value would \
                     silently win"
                ));
            }
            seen.push(key);
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("fault-plan {what}={value:?} is not a number"))
            };
            match key {
                "seed" => out.seed = num("seed")?,
                "transient" => out.transient_per_mille = num("transient")? as u32,
                "short" => out.short_read_per_mille = num("short")? as u32,
                "wtransient" => out.write_transient_per_mille = num("wtransient")? as u32,
                "wshort" => out.short_write_per_mille = num("wshort")? as u32,
                "burst" => out.burst = num("burst")? as u32,
                "latency_us" => out.latency = Duration::from_micros(num("latency_us")?),
                "enospc_at" => out.enospc_at = Some(num("enospc_at")?),
                "crash_at" => out.crash_at = Some(num("crash_at")?),
                "match" => out.matches = Some(value.to_string()),
                "corrupt" => {
                    for range in value.split('+') {
                        let (lo, hi) = range
                            .split_once('-')
                            .ok_or_else(|| format!("corrupt range {range:?} is not lo-hi"))?;
                        let lo: u64 = lo
                            .parse()
                            .map_err(|_| format!("corrupt range start {lo:?} is not a number"))?;
                        let hi: u64 = hi
                            .parse()
                            .map_err(|_| format!("corrupt range end {hi:?} is not a number"))?;
                        if lo >= hi {
                            return Err(format!("corrupt range {range:?} is empty or inverted"));
                        }
                        out.corrupt.push(lo..hi);
                    }
                }
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
        }
        if out.transient_per_mille + out.short_read_per_mille > 1000 {
            return Err("transient + short rates exceed 1000 per mille".into());
        }
        if out.write_transient_per_mille + out.short_write_per_mille > 1000 {
            return Err("wtransient + wshort rates exceed 1000 per mille".into());
        }
        Ok(out)
    }

    /// Whether this plan targets the store named `id`.
    pub fn applies_to(&self, id: &str) -> bool {
        self.matches.as_deref().is_none_or(|m| id.contains(m))
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.transient_per_mille > 0
            || self.short_read_per_mille > 0
            || !self.latency.is_zero()
            || !self.corrupt.is_empty()
            || self.is_write_active()
    }

    /// Whether the plan can inject anything on the write side.
    pub fn is_write_active(&self) -> bool {
        self.write_transient_per_mille > 0
            || self.short_write_per_mille > 0
            || self.enospc_at.is_some()
            || self.crash_at.is_some()
    }
}

/// Injection counters of one [`FaultSource`] — what the plan actually did,
/// for asserting against `/metrics` after a chaos run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected transient `EIO` failures.
    pub transient: u64,
    /// Injected short-read failures.
    pub short_reads: u64,
    /// Successful reads whose buffers were corrupted on the way out.
    pub corrupted_reads: u64,
    /// Reads delayed by the plan's added latency.
    pub delayed: u64,
}

/// A [`ByteSource`] wrapper that injects faults per a seeded [`FaultSpec`]
/// — the runtime complement to the at-rest helpers above, for driving a
/// *live* reader (or a whole daemon) through I/O failure scenarios.
///
/// `as_slice` deliberately stays `None` even when the inner source is
/// zero-copy, so every access funnels through `read_at` and the plan.
pub struct FaultSource<S: ByteSource> {
    inner: S,
    spec: FaultSpec,
    rng: Mutex<Lcg>,
    consecutive: AtomicU32,
    transient: AtomicU64,
    short_reads: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
}

impl<S: ByteSource> FaultSource<S> {
    /// Wraps `inner` under `spec`.
    pub fn new(inner: S, spec: FaultSpec) -> Self {
        let rng = Mutex::new(Lcg::new(spec.seed));
        Self {
            inner,
            spec,
            rng,
            consecutive: AtomicU32::new(0),
            transient: AtomicU64::new(0),
            short_reads: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Snapshot of what the plan has injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient: self.transient.load(Ordering::Relaxed),
            short_reads: self.short_reads.load(Ordering::Relaxed),
            corrupted_reads: self.corrupted.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
        }
    }

    /// The plan this source injects.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ByteSource> ByteSource for FaultSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        if !self.spec.latency.is_zero() {
            std::thread::sleep(self.spec.latency);
            self.delayed.fetch_add(1, Ordering::Relaxed);
        }
        let roll = (self.rng.lock().expect("fault rng poisoned").next_u64() % 1000) as u32;
        if self.consecutive.load(Ordering::Relaxed) < self.spec.burst {
            if roll < self.spec.transient_per_mille {
                self.consecutive.fetch_add(1, Ordering::Relaxed);
                self.transient.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::IoTransient(format!(
                    "injected EIO reading {} bytes at {offset}",
                    buf.len()
                )));
            }
            if roll < self.spec.transient_per_mille + self.spec.short_read_per_mille {
                self.consecutive.fetch_add(1, Ordering::Relaxed);
                self.short_reads.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::IoTransient(format!(
                    "injected short read: {} of {} bytes at {offset}",
                    buf.len() / 2,
                    buf.len()
                )));
            }
        }
        self.consecutive.store(0, Ordering::Relaxed);
        self.inner.read_at(offset, buf)?;
        let (lo, hi) = (offset, offset + buf.len() as u64);
        let mut hit = false;
        for range in &self.spec.corrupt {
            let start = range.start.max(lo);
            let end = range.end.min(hi);
            for i in start..end {
                buf[(i - lo) as usize] ^= 0xff;
                hit = true;
            }
        }
        if hit {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }

    fn read_calls(&self) -> u64 {
        self.inner.read_calls()
    }
}

/// Injection counters of one [`FaultSink`] — the write-side mirror of
/// [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkFaultStats {
    /// Injected transient write failures (`wtransient` + `wshort`).
    pub transient: u64,
    /// Of those, injected short writes.
    pub short_writes: u64,
    /// Whether the `enospc_at` wall has been hit.
    pub enospc: bool,
    /// Whether the `crash_at` kill point has fired.
    pub crashed: bool,
}

/// A [`ByteSink`] wrapper that injects write faults per a seeded
/// [`FaultSpec`] — the write-side complement of [`FaultSource`], for
/// driving a *live* [`crate::StoreWriter`] streaming pack through disk
/// failure and kill-point scenarios.
///
/// Injected transients never forward bytes to the inner sink, so the
/// append position only advances on success and a retry of the same
/// buffer is exact — the invariant [`ByteSink::write_all`] documents. The
/// `crash_at` fault deliberately *does* forward the prefix below the kill
/// point and then fails everything forever, reproducing a process killed
/// mid-`write(2)`: the inner sink is left holding a torn tail for the
/// atomicity harness to examine.
pub struct FaultSink<S: ByteSink> {
    inner: S,
    spec: FaultSpec,
    rng: Lcg,
    consecutive: u32,
    /// Bytes successfully forwarded — the position `enospc_at` / `crash_at`
    /// thresholds are judged against.
    forwarded: u64,
    transient: u64,
    short_writes: u64,
    enospc: bool,
    crashed: bool,
}

impl<S: ByteSink> FaultSink<S> {
    /// Wraps `inner` under `spec`.
    pub fn new(inner: S, spec: FaultSpec) -> Self {
        let rng = Lcg::new(spec.seed);
        Self {
            inner,
            spec,
            rng,
            consecutive: 0,
            forwarded: 0,
            transient: 0,
            short_writes: 0,
            enospc: false,
            crashed: false,
        }
    }

    /// Snapshot of what the plan has injected so far.
    pub fn stats(&self) -> SinkFaultStats {
        SinkFaultStats {
            transient: self.transient,
            short_writes: self.short_writes,
            enospc: self.enospc,
            crashed: self.crashed,
        }
    }

    /// The plan this sink injects.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably — the kill-point harness uses this to
    /// reach [`crate::FileSink::preserve_tmp_on_drop`] after a crash fires
    /// (a killed process never runs its cleanup).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The terminal error every operation returns once the kill point has
    /// fired.
    fn crash_error(&self) -> StoreError {
        StoreError::Io(format!(
            "injected crash at byte {}",
            self.spec.crash_at.unwrap_or(self.forwarded)
        ))
    }
}

impl<S: ByteSink> ByteSink for FaultSink<S> {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        if self.crashed {
            return Err(self.crash_error());
        }
        let end = self.forwarded + buf.len() as u64;
        if let Some(kill) = self.spec.crash_at {
            if end > kill {
                // Forward the prefix below the kill point, then die. Any
                // failure forwarding it is subsumed by the crash itself.
                let keep = kill.saturating_sub(self.forwarded) as usize;
                if keep > 0 {
                    let _ = self.inner.write_all(&buf[..keep]);
                }
                self.crashed = true;
                return Err(self.crash_error());
            }
        }
        if let Some(wall) = self.spec.enospc_at {
            if end > wall {
                self.enospc = true;
                return Err(StoreError::NoSpace(format!(
                    "injected ENOSPC: {} bytes would cross the {wall}-byte wall",
                    buf.len()
                )));
            }
        }
        let roll = (self.rng.next_u64() % 1000) as u32;
        if self.consecutive < self.spec.burst {
            if roll < self.spec.write_transient_per_mille {
                self.consecutive += 1;
                self.transient += 1;
                return Err(StoreError::IoTransient(format!(
                    "injected EIO writing {} bytes at {}",
                    buf.len(),
                    self.forwarded
                )));
            }
            if roll < self.spec.write_transient_per_mille + self.spec.short_write_per_mille {
                self.consecutive += 1;
                self.transient += 1;
                self.short_writes += 1;
                return Err(StoreError::IoTransient(format!(
                    "injected short write: {} of {} bytes at {}",
                    buf.len() / 2,
                    buf.len(),
                    self.forwarded
                )));
            }
        }
        self.consecutive = 0;
        self.inner.write_all(buf)?;
        self.forwarded = end;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(self.crash_error());
        }
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(self.crash_error());
        }
        self.inner.sync()
    }

    fn commit(&mut self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(self.crash_error());
        }
        self.inner.commit()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn write_calls(&self) -> u64 {
        self.inner.write_calls()
    }
}

/// Flips `count` pseudo-random bits anywhere in `bytes`, deterministically
/// from `seed`. Returns the flipped (byte, bit) positions.
pub fn random_flips(bytes: &mut [u8], seed: u64, count: usize) -> Vec<(usize, u8)> {
    assert!(!bytes.is_empty(), "faultinject: empty buffer");
    let mut rng = Lcg::new(seed);
    let mut flipped = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = rng.below(bytes.len());
        let bit = (rng.next_u64() % 8) as u8;
        flip_bit(bytes, idx, bit);
        flipped.push((idx, bit));
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StoreWriter;
    use zmesh::CompressionConfig;
    use zmesh_amr::{datasets, AmrField, StorageMode};

    fn store() -> Vec<u8> {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let fields: Vec<(&str, &AmrField)> =
            ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
        StoreWriter::new(CompressionConfig::zmesh_default())
            .with_chunk_target_bytes(512)
            .write(&fields)
            .unwrap()
            .bytes
    }

    #[test]
    fn flips_damage_exactly_the_named_target() {
        let clean = store();
        let mut bytes = clean.clone();
        flip_data_chunk(&mut bytes, 0, 1);
        let diff: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] != clean[i]).collect();
        assert_eq!(diff.len(), 1);
        assert!(chunk_byte_range(&clean, 0, 1).contains(&diff[0]));

        let mut bytes = clean.clone();
        flip_parity_chunk(&mut bytes, 1, 0);
        let diff: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] != clean[i]).collect();
        assert_eq!(diff.len(), 1);
        assert!(parity_byte_range(&clean, 1, 0).contains(&diff[0]));
    }

    #[test]
    fn multi_chunk_flips_hit_exactly_the_picked_chunks() {
        let clean = store();
        let mut bytes = clean.clone();
        let picked = random_chunk_flips(&mut bytes, 0, 7, 3);
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "picks must be distinct");
        let diff: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] != clean[i]).collect();
        assert_eq!(diff.len(), 3);
        for (i, &chunk) in picked.iter().enumerate() {
            let range = chunk_byte_range(&clean, 0, chunk);
            assert!(diff.iter().any(|d| range.contains(d)), "pick {i} missed");
        }

        // Same seed, same picks.
        let mut again = clean.clone();
        assert_eq!(random_chunk_flips(&mut again, 0, 7, 3), picked);
        assert_eq!(again, bytes);
    }

    #[test]
    fn torn_at_is_a_prefix_copy() {
        let clean = store();
        let torn = torn_at(&clean, clean.len() - 5);
        assert_eq!(&torn[..], &clean[..clean.len() - 5]);
        assert_eq!(torn_at(&clean, clean.len()), clean);
    }

    #[test]
    fn fault_spec_parses_the_full_grammar() {
        let spec = FaultSpec::parse(
            "seed=42,transient=80,short=20,burst=3,latency_us=50,corrupt=100-200+4096-4200,match=blast",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.transient_per_mille, 80);
        assert_eq!(spec.short_read_per_mille, 20);
        assert_eq!(spec.burst, 3);
        assert_eq!(spec.latency, Duration::from_micros(50));
        assert_eq!(spec.corrupt, vec![100..200, 4096..4200]);
        assert_eq!(spec.matches.as_deref(), Some("blast"));
        assert!(spec.is_active());
        assert!(spec.applies_to("blast2d"));
        assert!(!spec.applies_to("sedov"));
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
        assert!(!FaultSpec::default().is_active());
        assert!(FaultSpec::default().applies_to("anything"));

        assert!(FaultSpec::parse("bogus").is_err());
        assert!(FaultSpec::parse("volume=11").is_err());
        assert!(FaultSpec::parse("seed=x").is_err());
        assert!(FaultSpec::parse("corrupt=9").is_err());
        assert!(FaultSpec::parse("corrupt=9-9").is_err());
        assert!(FaultSpec::parse("transient=600,short=600").is_err());
    }

    #[test]
    fn fault_spec_parses_the_write_side_grammar() {
        let spec =
            FaultSpec::parse("seed=9,wtransient=300,wshort=100,enospc_at=65536,crash_at=4096")
                .unwrap();
        assert_eq!(spec.write_transient_per_mille, 300);
        assert_eq!(spec.short_write_per_mille, 100);
        assert_eq!(spec.enospc_at, Some(65536));
        assert_eq!(spec.crash_at, Some(4096));
        assert!(spec.is_active());
        assert!(spec.is_write_active());
        assert!(!FaultSpec::default().is_write_active());
        // A read-only plan is not write-active.
        assert!(!FaultSpec::parse("transient=100").unwrap().is_write_active());

        assert!(FaultSpec::parse("wtransient=600,wshort=600").is_err());
        assert!(FaultSpec::parse("enospc_at=x").is_err());
        assert!(FaultSpec::parse("crash=10").is_err(), "unknown key");
    }

    #[test]
    fn fault_spec_rejects_repeated_keys() {
        assert!(FaultSpec::parse("seed=1,seed=2").is_err());
        assert!(FaultSpec::parse("crash_at=1,crash_at=2").is_err());
        // Multiple corrupt ranges go through `+`, not key repetition.
        assert!(FaultSpec::parse("corrupt=1-2,corrupt=3-4").is_err());
        assert_eq!(
            FaultSpec::parse("corrupt=1-2+3-4").unwrap().corrupt,
            vec![1..2, 3..4]
        );
    }

    #[test]
    fn fault_sink_injects_bounded_transient_bursts() {
        let spec = FaultSpec {
            seed: 7,
            write_transient_per_mille: 1000, // every eligible write fails...
            burst: 2,                        // ...but never 3 in a row
            ..FaultSpec::default()
        };
        let mut sink = FaultSink::new(crate::VecSink::new(), spec);
        let mut pattern = Vec::new();
        for _ in 0..9 {
            pattern.push(sink.write_all(b"abcd").is_ok());
        }
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true],
            "burst=2 must force every third write through"
        );
        assert_eq!(sink.stats().transient, 6);
        assert_eq!(sink.stats().short_writes, 0);
        assert!(!sink.stats().enospc);
        assert!(!sink.stats().crashed);
        // Failed writes forwarded nothing: only the successes landed.
        assert_eq!(sink.bytes_written(), 12);
        assert_eq!(sink.inner().bytes(), b"abcdabcdabcd");
        let err = {
            let mut s = FaultSink::new(
                crate::VecSink::new(),
                FaultSpec {
                    write_transient_per_mille: 1000,
                    ..FaultSpec::default()
                },
            );
            s.write_all(b"x").unwrap_err()
        };
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn fault_sink_enospc_wall_is_positional_and_sticky() {
        let spec = FaultSpec {
            enospc_at: Some(10),
            ..FaultSpec::default()
        };
        let mut sink = FaultSink::new(crate::VecSink::new(), spec);
        sink.write_all(b"12345678").unwrap(); // 8 ≤ 10
        let err = sink.write_all(b"abc").unwrap_err(); // 11 > 10
        assert!(matches!(err, StoreError::NoSpace(_)), "{err}");
        assert!(!err.is_transient(), "ENOSPC must not be retried");
        assert!(sink.stats().enospc);
        // Sticky: the wall does not move.
        assert!(matches!(
            sink.write_all(b"abc").unwrap_err(),
            StoreError::NoSpace(_)
        ));
        // A write that fits still goes through (short tail files do).
        sink.write_all(b"ab").unwrap();
        assert_eq!(sink.inner().bytes(), b"12345678ab");
    }

    #[test]
    fn fault_sink_crash_leaves_exactly_the_prefix_and_fails_forever() {
        let spec = FaultSpec {
            crash_at: Some(6),
            ..FaultSpec::default()
        };
        let mut sink = FaultSink::new(crate::VecSink::new(), spec);
        sink.write_all(b"1234").unwrap();
        let err = sink.write_all(b"abcd").unwrap_err(); // would end at 8 > 6
        assert!(!err.is_transient(), "a crash must not be retried");
        assert!(sink.stats().crashed);
        // The torn tail is exactly the prefix below the kill point.
        assert_eq!(sink.inner().bytes(), b"1234ab");
        // Everything after death fails, including the publish.
        assert!(sink.write_all(b"x").is_err());
        assert!(sink.flush().is_err());
        assert!(sink.sync().is_err());
        assert!(sink.commit().is_err());
    }

    #[test]
    fn fault_source_injects_bounded_transient_bursts() {
        let data: Vec<u8> = (0..200u8).collect();
        let spec = FaultSpec {
            seed: 7,
            transient_per_mille: 1000, // every eligible read fails...
            burst: 2,                  // ...but never 3 in a row
            ..FaultSpec::default()
        };
        let src = FaultSource::new(crate::SliceSource::new(&data), spec);
        assert_eq!(src.len(), 200);
        assert!(src.as_slice().is_none(), "faults must not be bypassable");
        let mut buf = [0u8; 4];
        let mut pattern = Vec::new();
        for _ in 0..9 {
            pattern.push(src.read_at(8, &mut buf).is_ok());
        }
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true],
            "burst=2 must force every third read through"
        );
        assert_eq!(buf, [8, 9, 10, 11]);
        assert_eq!(src.stats().transient, 6);
        assert_eq!(src.stats().short_reads, 0);
        let err = {
            let s = FaultSource::new(
                crate::SliceSource::new(&data),
                FaultSpec {
                    transient_per_mille: 1000,
                    ..FaultSpec::default()
                },
            );
            s.read_at(0, &mut buf).unwrap_err()
        };
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn fault_source_corruption_is_sticky_and_range_exact() {
        let data: Vec<u8> = (0..100u8).collect();
        let spec = FaultSpec {
            corrupt: vec![10..13, 50..51],
            ..FaultSpec::default()
        };
        let src = FaultSource::new(crate::SliceSource::new(&data), spec);
        let mut buf = [0u8; 20];
        src.read_at(5, &mut buf).unwrap();
        let mut want: Vec<u8> = (5..25u8).collect();
        for b in &mut want[5..8] {
            *b ^= 0xff; // bytes 10..13
        }
        assert_eq!(buf.to_vec(), want);
        // Sticky: a second read sees the identical damage.
        let mut again = [0u8; 20];
        src.read_at(5, &mut again).unwrap();
        assert_eq!(again, buf);
        // Reads not touching a corrupt range pass through clean.
        let mut clean = [0u8; 4];
        src.read_at(30, &mut clean).unwrap();
        assert_eq!(clean, [30, 31, 32, 33]);
        assert_eq!(src.stats().corrupted_reads, 2);
        // Traffic counters delegate (slice sources report full residency).
        assert_eq!(src.bytes_read(), data.len() as u64);
        assert_eq!(src.spec().corrupt.len(), 2);
    }

    #[test]
    fn random_flips_are_deterministic() {
        let clean = store();
        let (mut a, mut b) = (clean.clone(), clean.clone());
        let fa = random_flips(&mut a, 42, 16);
        let fb = random_flips(&mut b, 42, 16);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        assert_ne!(a, clean);
        let mut c = clean.clone();
        let fc = random_flips(&mut c, 43, 16);
        assert_ne!(fa, fc);
    }
}
