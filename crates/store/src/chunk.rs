//! Chunk framing: fixed-width per-chunk metadata and the planner that
//! derives each chunk's geometric coverage from the restore recipe.
//!
//! Chunks split the *reordered* stream at fixed value-count boundaries
//! (`chunk_target_bytes / 8` values), so the chunk count — and with it the
//! footer size — depends only on the tree and the target, never on the
//! ordering policy. Each chunk records the curve-index interval and anchor
//! bounding box its cells cover; a reader intersects those with a query to
//! decide which chunks to decode.

use crate::format::{put_u32, put_u64, Cursor, StoreError};
use zmesh::{GroupingMode, OrderingPolicy, RestoreRecipe};
use zmesh_amr::{AmrTree, Cell, Dim};
use zmesh_sfc::Curve;

/// Serialized size of one [`ChunkMeta`].
pub const CHUNK_META_BYTES: usize = 64;

/// Default uncompressed bytes per chunk (8 KiB of values = 8192 f64s at
/// 64 KiB): small enough that point queries touch little data, large
/// enough that the codec's per-stream overhead stays negligible.
pub const DEFAULT_CHUNK_TARGET_BYTES: u32 = 64 * 1024;

/// Fixed-width metadata for one chunk of one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Smallest curve index covered by any cell in the chunk (each cell
    /// covers its full dyadic block on the finest grid). `0` under
    /// level-order, where no curve backs the stream.
    pub curve_lo: u64,
    /// Largest covered curve index (inclusive). `u64::MAX` under
    /// level-order.
    pub curve_hi: u64,
    /// Bit `l` set ⇔ a level-`l` cell contributes to the chunk.
    pub level_mask: u32,
    /// Componentwise minimum of covered finest-grid coordinates.
    pub bbox_lo: [u32; 3],
    /// Componentwise maximum of covered finest-grid coordinates (inclusive).
    pub bbox_hi: [u32; 3],
    /// Byte offset of the chunk's payload, relative to the payload span.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

impl ChunkMeta {
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        let before = out.len();
        put_u64(out, self.curve_lo);
        put_u64(out, self.curve_hi);
        put_u32(out, self.level_mask);
        for v in self.bbox_lo.iter().chain(&self.bbox_hi) {
            put_u32(out, *v);
        }
        put_u64(out, self.offset);
        put_u64(out, self.len);
        put_u32(out, self.crc);
        debug_assert_eq!(out.len() - before, CHUNK_META_BYTES);
    }

    pub(crate) fn read(c: &mut Cursor<'_>) -> Result<Self, StoreError> {
        let curve_lo = c.u64()?;
        let curve_hi = c.u64()?;
        let level_mask = c.u32()?;
        let mut bbox = [0u32; 6];
        for v in &mut bbox {
            *v = c.u32()?;
        }
        let meta = Self {
            curve_lo,
            curve_hi,
            level_mask,
            bbox_lo: [bbox[0], bbox[1], bbox[2]],
            bbox_hi: [bbox[3], bbox[4], bbox[5]],
            offset: c.u64()?,
            len: c.u64()?,
            crc: c.u32()?,
        };
        if meta.curve_lo > meta.curve_hi {
            return Err(StoreError::Corrupt("inverted chunk curve range"));
        }
        Ok(meta)
    }

    /// Whether the chunk's curve interval intersects any of `ranges`
    /// (half-open, sorted or not).
    pub fn overlaps_ranges(&self, ranges: &[std::ops::Range<u64>]) -> bool {
        ranges
            .iter()
            .any(|r| r.start <= self.curve_hi && self.curve_lo < r.end)
    }

    /// Whether the chunk's bounding box intersects the inclusive box
    /// `lo..=hi` on the finest grid.
    pub fn overlaps_bbox(&self, lo: [u32; 3], hi: [u32; 3]) -> bool {
        (0..3).all(|a| self.bbox_lo[a] <= hi[a] && lo[a] <= self.bbox_hi[a])
    }

    #[cfg(test)]
    pub(crate) fn test_sample(offset: u64, len: u64) -> Self {
        Self {
            curve_lo: 0,
            curve_hi: 63,
            level_mask: 0b11,
            bbox_lo: [0; 3],
            bbox_hi: [7, 7, 0],
            offset,
            len,
            crc: 0xdead_beef,
        }
    }
}

/// The chunk framing of one store: value-count framing plus the geometric
/// coverage of every chunk (shared by all fields of the store; only the
/// byte `offset`/`len`/`crc` triple differs per field).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlan {
    /// Values per chunk (last chunk may cover fewer).
    pub chunk_values: usize,
    /// Stream length the plan frames.
    pub stream_len: usize,
    /// Geometric coverage per chunk, byte fields zeroed.
    pub metas: Vec<ChunkMeta>,
}

impl ChunkPlan {
    /// The stream positions chunk `i` covers.
    pub fn stream_range(&self, i: usize) -> std::ops::Range<usize> {
        let lo = i * self.chunk_values;
        lo..((i + 1) * self.chunk_values).min(self.stream_len)
    }
}

/// Frames `recipe`'s stream into `chunk_values`-sized chunks and computes
/// each chunk's geometric coverage over `tree`.
pub fn plan_chunks(
    tree: &AmrTree,
    recipe: &RestoreRecipe,
    policy: OrderingPolicy,
    grouping: GroupingMode,
    chunk_values: usize,
) -> ChunkPlan {
    use rayon::prelude::*;

    assert!(chunk_values > 0, "chunk size must be positive");
    let perm = recipe.permutation();
    let n = perm.len();
    let n_chunks = n.div_ceil(chunk_values);
    let bits = tree.finest_bits();
    let dim = tree.dim();
    let curve = policy.curve();
    let cells = tree.cells();
    let leaf_indices = tree.leaf_indices();
    let cell_of = |storage: u32| -> &Cell {
        match grouping {
            GroupingMode::LeafOnly => &cells[leaf_indices[storage as usize] as usize],
            GroupingMode::Chained => &cells[storage as usize],
        }
    };

    let chunk_ids: Vec<usize> = (0..n_chunks).collect();
    let metas: Vec<ChunkMeta> = chunk_ids
        .par_iter()
        .map(|&i| {
            let lo = i * chunk_values;
            let hi = ((i + 1) * chunk_values).min(n);
            let mut meta = ChunkMeta {
                curve_lo: u64::MAX,
                curve_hi: 0,
                level_mask: 0,
                bbox_lo: [u32::MAX; 3],
                bbox_hi: [0; 3],
                offset: 0,
                len: 0,
                crc: 0,
            };
            for &storage in &perm[lo..hi] {
                let cell = cell_of(storage);
                let shift = tree.max_level() - cell.level;
                let anchor = tree.anchor(cell);
                let side = 1u32 << shift;
                let a = [anchor.x, anchor.y, anchor.z];
                for (axis, &lo) in a.iter().enumerate().take(dim.rank()) {
                    meta.bbox_lo[axis] = meta.bbox_lo[axis].min(lo);
                    meta.bbox_hi[axis] = meta.bbox_hi[axis].max(lo + side - 1);
                }
                meta.level_mask |= 1 << cell.level;
                if let Some(curve) = curve {
                    let idx = match dim {
                        Dim::D2 => curve.index_2d(u64::from(anchor.x), u64::from(anchor.y), bits),
                        Dim::D3 => curve.index_3d(
                            u64::from(anchor.x),
                            u64::from(anchor.y),
                            u64::from(anchor.z),
                            bits,
                        ),
                    };
                    // A cell covers its whole (aligned, contiguous) dyadic
                    // block of 2^(d·shift) finest cells.
                    let block = 1u64 << (dim.rank() as u32 * shift);
                    meta.curve_lo = meta.curve_lo.min(idx & !(block - 1));
                    meta.curve_hi = meta.curve_hi.max(idx | (block - 1));
                }
            }
            if curve.is_none() {
                meta.curve_lo = 0;
                meta.curve_hi = u64::MAX;
            }
            for axis in dim.rank()..3 {
                meta.bbox_lo[axis] = 0;
                meta.bbox_hi[axis] = 0;
            }
            meta
        })
        .collect();

    ChunkPlan {
        chunk_values,
        stream_len: n,
        metas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zmesh_amr::TreeBuilder;

    fn tree() -> Arc<AmrTree> {
        Arc::new(
            TreeBuilder::new(Dim::D2, [4, 4, 1], 2)
                .refine_where(|_, c, _| c[0] < 0.5)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn meta_round_trips_through_bytes() {
        let meta = ChunkMeta::test_sample(123, 456);
        let mut bytes = Vec::new();
        meta.write(&mut bytes);
        assert_eq!(bytes.len(), CHUNK_META_BYTES);
        let parsed = ChunkMeta::read(&mut Cursor::new(&bytes)).unwrap();
        assert_eq!(parsed, meta);
    }

    #[test]
    fn plan_covers_every_stream_position_once() {
        let tree = tree();
        for grouping in [GroupingMode::LeafOnly, GroupingMode::Chained] {
            let recipe = RestoreRecipe::build(&tree, OrderingPolicy::Hilbert, grouping);
            let plan = plan_chunks(&tree, &recipe, OrderingPolicy::Hilbert, grouping, 10);
            assert_eq!(plan.metas.len(), recipe.len().div_ceil(10));
            let covered: usize = (0..plan.metas.len())
                .map(|i| plan.stream_range(i).len())
                .sum();
            assert_eq!(covered, recipe.len());
        }
    }

    #[test]
    fn chunk_curve_ranges_are_ordered_for_dyadic_policies() {
        // Stream is curve-sorted, so consecutive chunks cover
        // non-decreasing curve intervals.
        let tree = tree();
        let recipe = RestoreRecipe::build(&tree, OrderingPolicy::ZOrder, GroupingMode::LeafOnly);
        let plan = plan_chunks(
            &tree,
            &recipe,
            OrderingPolicy::ZOrder,
            GroupingMode::LeafOnly,
            7,
        );
        for w in plan.metas.windows(2) {
            assert!(w[0].curve_lo <= w[1].curve_lo);
        }
        for meta in &plan.metas {
            assert!(meta.curve_lo <= meta.curve_hi);
            assert!(meta.level_mask != 0);
        }
    }

    #[test]
    fn level_order_chunks_cover_full_curve_interval() {
        let tree = tree();
        let recipe = RestoreRecipe::build(&tree, OrderingPolicy::LevelOrder, GroupingMode::Chained);
        let plan = plan_chunks(
            &tree,
            &recipe,
            OrderingPolicy::LevelOrder,
            GroupingMode::Chained,
            16,
        );
        for meta in &plan.metas {
            assert_eq!((meta.curve_lo, meta.curve_hi), (0, u64::MAX));
        }
    }

    #[test]
    fn bboxes_stay_inside_the_finest_grid() {
        let tree = tree();
        let side = tree.level_dims(tree.max_level())[0] as u32;
        let recipe = RestoreRecipe::build(&tree, OrderingPolicy::Hilbert, GroupingMode::Chained);
        let plan = plan_chunks(
            &tree,
            &recipe,
            OrderingPolicy::Hilbert,
            GroupingMode::Chained,
            8,
        );
        for meta in &plan.metas {
            for a in 0..2 {
                assert!(meta.bbox_lo[a] <= meta.bbox_hi[a]);
                assert!(meta.bbox_hi[a] < side);
            }
            assert_eq!((meta.bbox_lo[2], meta.bbox_hi[2]), (0, 0));
        }
    }
}
