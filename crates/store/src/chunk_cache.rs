//! A process-wide, size-bounded LRU of **decoded** chunks with
//! single-flight decode coalescing.
//!
//! The serving path decodes the same hot chunks over and over: two
//! queries that overlap the same region re-fetch and re-decompress
//! identical payloads. [`ChunkCache`] closes that gap at the layer where
//! the work happens — a [`crate::StoreReader`] with an attached cache
//! ([`crate::StoreReader::with_chunk_cache`]) consults it per chunk,
//! keyed by `(store, field, chunk)`, and only fetches/decodes the misses.
//!
//! Two properties matter under concurrency:
//!
//! - **Bounded memory.** The cache holds at most `max_bytes` of decoded
//!   values; inserting past the bound evicts the least-recently-used
//!   entries (a decoded chunk larger than the whole bound is simply not
//!   retained). Eviction counts are observable so capacity tuning is
//!   data-driven, not guesswork.
//! - **Single-flight decode.** When N requests race for the same absent
//!   chunk, exactly one (the *leader*) fetches and decodes; the other
//!   N−1 (*followers*) block on a condvar and receive the leader's
//!   `Arc`'d result. Without this, a popular cold chunk triggers a
//!   decode stampede exactly when the server is busiest.
//!
//! Values are shared as `Arc<Vec<f64>>`: a hit costs a pointer clone,
//! never a payload copy. Lock discipline mirrors [`crate::RecipeCache`]:
//! poisoned mutexes are recovered (`into_inner`), counted, and never
//! propagate panics into readers.

use crate::format::StoreError;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of one decoded chunk in a shared cache: the owning store (a
/// caller-assigned key — e.g. a catalog id hash — that must be unique per
/// open store), the field index within its footer, and the chunk index
/// within the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Caller-assigned store identity.
    pub store: u64,
    /// Field index in the store's footer.
    pub field: u32,
    /// Chunk index within the field.
    pub chunk: u32,
}

/// Decoded values of one chunk, shared without copying.
pub type ChunkValues = Arc<Vec<f64>>;

/// Observable [`ChunkCache`] counters (monotonic since construction,
/// except `entries`/`bytes` which describe the current residency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode (each increments exactly once, on the
    /// single-flight leader).
    pub misses: u64,
    /// Entries evicted to respect the size bound.
    pub evictions: u64,
    /// Requests that joined another request's in-flight decode instead of
    /// decoding themselves (single-flight followers).
    pub coalesced: u64,
    /// Mutex poisonings absorbed.
    pub poison_recoveries: u64,
    /// Decoded chunks currently resident.
    pub entries: u64,
    /// Decoded bytes currently resident.
    pub bytes: u64,
}

/// LRU bookkeeping: entries keyed by [`ChunkKey`], recency tracked with a
/// monotone tick so eviction pops the smallest tick in `O(log n)`.
struct Lru {
    map: HashMap<ChunkKey, (ChunkValues, u64)>,
    order: BTreeMap<u64, ChunkKey>,
    bytes: u64,
    tick: u64,
}

/// One in-flight decode: followers wait on the condvar until the leader
/// publishes a result.
struct Flight {
    slot: Mutex<Option<Result<ChunkValues, StoreError>>>,
    done: Condvar,
}

/// Leader-side handle for an in-flight decode. Dropping it without
/// [`ChunkCache::complete`] publishes an error so followers can never
/// deadlock on an abandoned flight.
pub struct FlightLead<'a> {
    cache: &'a ChunkCache,
    key: ChunkKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl Drop for FlightLead<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.cache.publish(
                self.key,
                &self.flight,
                Err(StoreError::Internal("chunk decode abandoned mid-flight")),
                false,
            );
        }
    }
}

/// Follower-side handle: redeem with [`ChunkCache::wait`].
pub struct FlightJoin {
    flight: Arc<Flight>,
}

/// Outcome of [`ChunkCache::begin`] for one chunk.
pub enum Claim<'a> {
    /// The decoded values were resident.
    Cached(ChunkValues),
    /// This caller owns the decode; it must call [`ChunkCache::complete`].
    Lead(FlightLead<'a>),
    /// Another caller is already decoding; wait for its result.
    Join(FlightJoin),
}

/// Size-bounded decoded-chunk LRU with single-flight coalescing. See the
/// module docs for semantics; all methods take `&self` and are safe to
/// call from any number of threads through an `Arc`.
pub struct ChunkCache {
    max_bytes: u64,
    lru: Mutex<Lru>,
    inflight: Mutex<HashMap<ChunkKey, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache retaining at most `max_bytes` of decoded values.
    pub fn new(max_bytes: u64) -> Self {
        Self {
            max_bytes,
            lru: Mutex::new(Lru {
                map: HashMap::new(),
                order: BTreeMap::new(),
                bytes: 0,
                tick: 0,
            }),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// The configured residency bound in bytes.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Drops every resident entry (counters keep their values; nothing
    /// counts as an eviction). In-flight decodes are unaffected: leads
    /// publish into the emptied cache as usual.
    pub fn clear(&self) {
        let mut lru = self.lock(&self.lru);
        lru.map.clear();
        lru.order.clear();
        lru.bytes = 0;
    }

    fn lock<'m, T>(&self, m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
        m.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts a hit or
    /// nothing — `begin` is the counting entry point for misses.
    pub fn get(&self, key: &ChunkKey) -> Option<ChunkValues> {
        let mut lru = self.lock(&self.lru);
        lru.tick += 1;
        let tick = lru.tick;
        let (values, old_tick) = match lru.map.get_mut(key) {
            None => return None,
            Some((values, t)) => {
                let old = *t;
                *t = tick;
                (Arc::clone(values), old)
            }
        };
        lru.order.remove(&old_tick);
        lru.order.insert(tick, *key);
        drop(lru);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(values)
    }

    /// Inserts `values` under `key`, evicting least-recently-used entries
    /// until the bound holds. A value larger than the whole bound is not
    /// retained (callers still hold their `Arc`).
    pub fn insert(&self, key: ChunkKey, values: ChunkValues) {
        let cost = (values.len() as u64) * 8;
        if cost > self.max_bytes {
            return;
        }
        let mut lru = self.lock(&self.lru);
        lru.tick += 1;
        let tick = lru.tick;
        if let Some((old, old_tick)) = lru.map.remove(&key) {
            lru.order.remove(&old_tick);
            lru.bytes -= (old.len() as u64) * 8;
        }
        while lru.bytes + cost > self.max_bytes {
            let Some((&oldest, &victim)) = lru.order.iter().next() else {
                break;
            };
            lru.order.remove(&oldest);
            if let Some((evicted, _)) = lru.map.remove(&victim) {
                lru.bytes -= (evicted.len() as u64) * 8;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        lru.map.insert(key, (values, tick));
        lru.order.insert(tick, key);
        lru.bytes += cost;
    }

    /// Claims `key`: a resident value, leadership of its decode, or a
    /// ticket to join the decode already in flight.
    pub fn begin(&self, key: ChunkKey) -> Claim<'_> {
        if let Some(values) = self.get(&key) {
            return Claim::Cached(values);
        }
        let mut inflight = self.lock(&self.inflight);
        match inflight.entry(key) {
            Entry::Occupied(e) => {
                let flight = Arc::clone(e.get());
                drop(inflight);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Claim::Join(FlightJoin { flight })
            }
            Entry::Vacant(e) => {
                let flight = Arc::new(Flight {
                    slot: Mutex::new(None),
                    done: Condvar::new(),
                });
                e.insert(Arc::clone(&flight));
                drop(inflight);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Claim::Lead(FlightLead {
                    cache: self,
                    key,
                    flight,
                    completed: false,
                })
            }
        }
    }

    /// Publishes the leader's decode `result`: followers wake with a
    /// shared clone, and successful values become resident.
    pub fn complete(&self, mut lead: FlightLead<'_>, result: Result<ChunkValues, StoreError>) {
        lead.completed = true;
        let key = lead.key;
        let flight = Arc::clone(&lead.flight);
        drop(lead);
        self.publish(key, &flight, result, true);
    }

    fn publish(
        &self,
        key: ChunkKey,
        flight: &Arc<Flight>,
        result: Result<ChunkValues, StoreError>,
        retain: bool,
    ) {
        if retain {
            if let Ok(values) = &result {
                self.insert(key, Arc::clone(values));
            }
        }
        {
            let mut slot = self.lock(&flight.slot);
            *slot = Some(result);
        }
        flight.done.notify_all();
        self.lock(&self.inflight).remove(&key);
    }

    /// Blocks until the joined flight's leader publishes, then returns a
    /// clone of its result.
    pub fn wait(&self, join: FlightJoin) -> Result<ChunkValues, StoreError> {
        let mut slot = self.lock(&join.flight.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = match join.flight.done.wait(slot) {
                Ok(guard) => guard,
                Err(poisoned) => {
                    self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                    poisoned.into_inner()
                }
            };
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ChunkCacheStats {
        let (entries, bytes) = {
            let lru = self.lock(&self.lru);
            (lru.map.len() as u64, lru.bytes)
        };
        ChunkCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(store: u64, chunk: u32) -> ChunkKey {
        ChunkKey {
            store,
            field: 0,
            chunk,
        }
    }

    fn values(n: usize, fill: f64) -> ChunkValues {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn lru_evicts_least_recently_used_and_accounts_bytes() {
        // Bound of 3 chunks × 10 values × 8 bytes.
        let cache = ChunkCache::new(240);
        for c in 0..3 {
            cache.insert(key(1, c), values(10, f64::from(c)));
        }
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().bytes, 240);

        // Touch chunk 0 so chunk 1 is now the LRU victim.
        assert!(cache.get(&key(1, 0)).is_some());
        cache.insert(key(1, 3), values(10, 3.0));
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.bytes, 240);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(&key(1, 1)).is_none(), "LRU entry must be gone");
        assert!(cache.get(&key(1, 0)).is_some());
        assert!(cache.get(&key(1, 3)).is_some());

        // An oversized value is not retained and evicts nothing.
        cache.insert(key(1, 9), values(1000, 9.0));
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().evictions, 1);

        // A large (but fitting) value evicts as many entries as needed.
        cache.insert(key(1, 10), values(25, 10.0));
        let stats = cache.stats();
        assert_eq!(stats.bytes, 200);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 4);
    }

    #[test]
    fn hit_and_miss_counters_track_begin() {
        let cache = ChunkCache::new(1 << 20);
        match cache.begin(key(7, 0)) {
            Claim::Lead(lead) => cache.complete(lead, Ok(values(4, 1.0))),
            _ => panic!("cold begin must lead"),
        }
        match cache.begin(key(7, 0)) {
            Claim::Cached(v) => assert_eq!(v.len(), 4),
            _ => panic!("warm begin must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.coalesced), (1, 1, 0));
    }

    #[test]
    fn single_flight_coalesces_concurrent_decodes() {
        let cache = Arc::new(ChunkCache::new(1 << 20));
        let decodes = Arc::new(AtomicU64::new(0));
        let threads = 8;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let decodes = Arc::clone(&decodes);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.begin(key(3, 5)) {
                        Claim::Cached(v) => v,
                        Claim::Join(join) => cache.wait(join).unwrap(),
                        Claim::Lead(lead) => {
                            // Linger so the other threads pile onto the
                            // flight instead of winning their own race.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            decodes.fetch_add(1, Ordering::SeqCst);
                            let v = values(6, 42.0);
                            cache.complete(lead, Ok(Arc::clone(&v)));
                            v
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap()[0], 42.0);
        }
        assert_eq!(decodes.load(Ordering::SeqCst), 1, "exactly one decode");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.coalesced + stats.hits, threads as u64 - 1);
    }

    #[test]
    fn abandoned_flight_unblocks_followers_with_an_error() {
        let cache = Arc::new(ChunkCache::new(1 << 20));
        let lead = match cache.begin(key(1, 1)) {
            Claim::Lead(lead) => lead,
            _ => panic!("cold begin must lead"),
        };
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.begin(key(1, 1)) {
                Claim::Join(join) => cache.wait(join),
                Claim::Cached(_) => panic!("nothing was published"),
                Claim::Lead(_) => panic!("flight already has a leader"),
            })
        };
        // Give the follower time to join, then abandon the flight.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(lead);
        assert!(matches!(
            follower.join().unwrap(),
            Err(StoreError::Internal(_))
        ));
        // The key is claimable again afterwards.
        assert!(matches!(cache.begin(key(1, 1)), Claim::Lead(_)));
    }

    #[test]
    fn leader_error_propagates_to_followers_and_is_not_cached() {
        let cache = ChunkCache::new(1 << 20);
        let lead = match cache.begin(key(2, 2)) {
            Claim::Lead(lead) => lead,
            _ => panic!("cold begin must lead"),
        };
        cache.complete(lead, Err(StoreError::Corrupt("boom")));
        assert!(cache.get(&key(2, 2)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
