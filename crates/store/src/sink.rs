//! Where store bytes go: the [`ByteSink`] abstraction behind the
//! streaming write path — the write-side mirror of [`crate::ByteSource`].
//!
//! [`crate::StoreWriter`] historically assembled the whole container in
//! one `Vec<u8>` and dumped it with a single blocking `std::fs` write —
//! fine for small stores, impossible for a dataset larger than RAM and
//! opaque to fault tooling. `ByteSink` abstracts the byte destination so
//! the writer can stream chunks as they compress:
//!
//! - [`VecSink`] — the in-memory path; collects exactly the bytes the
//!   buffered writer would have produced;
//! - [`FileSink`] — the crash-consistent file path: writes go to
//!   `<path>.tmp` via positioned `pwrite`s (append-at-offset, so a
//!   retried write is idempotent), and [`ByteSink::commit`] performs the
//!   `fsync(file)` → `rename` → `fsync(parent dir)` publish. Until commit
//!   returns, the destination is untouched; if the sink is dropped
//!   without committing (error, panic), the temp file is removed.
//!
//! Every error is typed: `ENOSPC` surfaces as [`StoreError::NoSpace`],
//! plausibly-transient failures (`EINTR`, `EAGAIN`, `EIO`, timeouts) as
//! [`StoreError::IoTransient`] — which the streaming writer retries under
//! its [`crate::RetryPolicy`] — and everything else as
//! [`StoreError::Io`].

use crate::format::StoreError;
use crate::source::io_error_is_transient;
use std::path::{Path, PathBuf};

/// An append-only destination for store bytes.
///
/// `write_all` either appends the whole buffer or fails without logically
/// advancing — implementations write at an internally tracked offset
/// (`pwrite`-style), so the same `write_all` can be retried after a
/// transient failure without duplicating bytes.
pub trait ByteSink {
    /// Appends `buf` at the current position, counting the traffic. On
    /// error the logical position is unchanged and the call may be
    /// retried.
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError>;

    /// Flushes any userspace buffering (a no-op for unbuffered sinks).
    fn flush(&mut self) -> Result<(), StoreError>;

    /// Forces written bytes to stable storage (`fsync`; a no-op for
    /// in-memory sinks).
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Finalizes the sink after the last byte: for [`FileSink`] this is
    /// the atomic tmp → destination publish; in-memory sinks no-op. A
    /// sink must not be written after a successful commit.
    fn commit(&mut self) -> Result<(), StoreError>;

    /// Bytes successfully appended so far (the current logical position).
    fn bytes_written(&self) -> u64;

    /// Successful write calls issued so far — how well the writer is
    /// batching its appends.
    fn write_calls(&self) -> u64;
}

/// `ENOSPC` — out of space is its own typed failure, not generic I/O.
const ENOSPC: i32 = 28;

/// Classifies an `io::Error` from a write: `ENOSPC` ⇒
/// [`StoreError::NoSpace`], the transient family ⇒
/// [`StoreError::IoTransient`], anything else ⇒ [`StoreError::Io`].
pub(crate) fn classify_write_error(e: &std::io::Error, what: &dyn std::fmt::Display) -> StoreError {
    if e.raw_os_error() == Some(ENOSPC) {
        StoreError::NoSpace(format!("{what}: {e}"))
    } else if io_error_is_transient(e) {
        StoreError::IoTransient(format!("{what}: {e}"))
    } else {
        StoreError::Io(format!("{what}: {e}"))
    }
}

/// The in-memory sink: collects appended bytes in a `Vec<u8>`. Writing
/// through a `VecSink` produces exactly the buffer the buffered writer
/// would have returned.
#[derive(Debug, Default)]
pub struct VecSink {
    bytes: Vec<u8>,
    write_calls: u64,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the sink, returning the collected bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl ByteSink for VecSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        self.bytes.extend_from_slice(buf);
        self.write_calls += 1;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn commit(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn write_calls(&self) -> u64 {
        self.write_calls
    }
}

/// `<path>.tmp` — appended, not an extension swap, so `store.zst` and
/// `store` cannot collide with a sibling's temp file.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(unix)]
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
pub(crate) fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    // Directory handles are not fsync-able portably; the rename is still
    // atomic on the filesystems we target.
    Ok(())
}

/// The crash-consistent file sink: bytes stream into `<path>.tmp` and
/// [`ByteSink::commit`] publishes them atomically over the destination
/// (`fsync` file → `rename` → `fsync` parent directory).
///
/// The sink is a scope guard: dropped uncommitted — error return, `?`
/// propagation, panic unwind — it removes its temp file, so no abort path
/// can leave a stray `.tmp` behind, and the pre-existing destination is
/// never touched before a fully synced rename. A crash (power loss,
/// SIGKILL) does leave the temp file, exactly like a real interrupted
/// write; the destination still holds the old bytes, and the next
/// successful pack truncates and replaces the leftover.
///
/// Writes are positioned (`pwrite` at an internally tracked offset), so a
/// failed `write_all` can be retried idempotently — the offset only
/// advances on success.
#[cfg(unix)]
pub struct FileSink {
    file: std::fs::File,
    tmp: PathBuf,
    dest: PathBuf,
    pos: u64,
    write_calls: u64,
    committed: bool,
    preserve_tmp: bool,
}

#[cfg(unix)]
impl FileSink {
    /// Opens a sink that will atomically replace `dest` on commit. The
    /// temp file (`<dest>.tmp`) is created (truncated if a stale one
    /// exists) immediately.
    pub fn create(dest: &Path) -> Result<Self, StoreError> {
        let tmp = tmp_path(dest);
        let file =
            std::fs::File::create(&tmp).map_err(|e| classify_write_error(&e, &tmp.display()))?;
        Ok(Self {
            file,
            tmp,
            dest: dest.to_path_buf(),
            pos: 0,
            write_calls: 0,
            committed: false,
            preserve_tmp: false,
        })
    }

    /// The destination this sink will publish to.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// The temp file bytes are streaming into.
    pub fn tmp(&self) -> &Path {
        &self.tmp
    }

    /// Whether [`ByteSink::commit`] has succeeded.
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// Leaves the temp file on disk when the sink is dropped uncommitted.
    ///
    /// This exists for crash-simulation harnesses: a process killed
    /// mid-write never runs its cleanup, so a test that models a crash
    /// must suppress the scope guard to reproduce the on-disk state a
    /// real kill leaves behind.
    pub fn preserve_tmp_on_drop(&mut self) {
        self.preserve_tmp = true;
    }
}

#[cfg(unix)]
impl ByteSink for FileSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        use std::os::unix::fs::FileExt;
        debug_assert!(!self.committed, "write after commit");
        self.file
            .write_all_at(buf, self.pos)
            .map_err(|e| classify_write_error(&e, &self.tmp.display()))?;
        self.pos += buf.len() as u64;
        self.write_calls += 1;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        // Positioned writes are unbuffered in userspace.
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| classify_write_error(&e, &self.tmp.display()))
    }

    fn commit(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        std::fs::rename(&self.tmp, &self.dest)
            .map_err(|e| classify_write_error(&e, &self.dest.display()))?;
        // The rename consumed the temp file: from here the destination is
        // the published store and Drop must not unlink anything.
        self.committed = true;
        sync_parent_dir(&self.dest).map_err(|e| classify_write_error(&e, &self.dest.display()))
    }

    fn bytes_written(&self) -> u64 {
        self.pos
    }

    fn write_calls(&self) -> u64 {
        self.write_calls
    }
}

#[cfg(unix)]
impl Drop for FileSink {
    fn drop(&mut self) {
        if !self.committed && !self.preserve_tmp {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Atomically replaces `path` with `bytes` through a [`FileSink`]: write
/// `<path>.tmp`, fsync the file, rename over the target, then fsync the
/// parent directory so the rename itself is durable. A crash at any point
/// leaves either the old file or the new one; every *error* return leaves
/// the old file and no temp file. Errors are typed:
/// [`StoreError::NoSpace`] for `ENOSPC`, [`StoreError::IoTransient`] for
/// the retryable family, [`StoreError::Io`] otherwise.
#[cfg(unix)]
pub fn persist_store(bytes: &[u8], path: &Path) -> Result<(), StoreError> {
    let mut sink = FileSink::create(path)?;
    sink.write_all(bytes)?;
    sink.commit()
}

/// Portable fallback: identical protocol via whole-buffer `std` I/O.
#[cfg(not(unix))]
pub fn persist_store(bytes: &[u8], path: &Path) -> Result<(), StoreError> {
    use std::io::Write;
    let tmp = tmp_path(path);
    let result = (|| {
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    result.map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        classify_write_error(&e, &path.display())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects_appends_and_counts() {
        let mut sink = VecSink::new();
        sink.write_all(b"hello ").unwrap();
        sink.write_all(b"world").unwrap();
        sink.flush().unwrap();
        sink.sync().unwrap();
        sink.commit().unwrap();
        assert_eq!(sink.bytes(), b"hello world");
        assert_eq!(sink.bytes_written(), 11);
        assert_eq!(sink.write_calls(), 2);
        assert_eq!(sink.into_bytes(), b"hello world");
    }

    #[test]
    fn write_errors_classify_by_kind() {
        use std::io::{Error, ErrorKind};
        let ctx = &"f";
        assert!(matches!(
            classify_write_error(&Error::from_raw_os_error(ENOSPC), ctx),
            StoreError::NoSpace(_)
        ));
        assert!(matches!(
            classify_write_error(&Error::from_raw_os_error(5), ctx),
            StoreError::IoTransient(_)
        ));
        assert!(matches!(
            classify_write_error(&Error::from(ErrorKind::Interrupted), ctx),
            StoreError::IoTransient(_)
        ));
        assert!(matches!(
            classify_write_error(&Error::from(ErrorKind::PermissionDenied), ctx),
            StoreError::Io(_)
        ));
    }

    #[cfg(unix)]
    #[test]
    fn file_sink_publishes_atomically_and_cleans_up_on_drop() {
        let dir = std::env::temp_dir().join(format!("zmesh-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("out.zms");
        std::fs::write(&dest, b"old contents").unwrap();

        // Uncommitted drop: destination untouched, tmp removed.
        {
            let mut sink = FileSink::create(&dest).unwrap();
            sink.write_all(b"partial").unwrap();
            assert_eq!(sink.bytes_written(), 7);
            assert!(sink.tmp().exists());
        }
        assert_eq!(std::fs::read(&dest).unwrap(), b"old contents");
        assert!(!tmp_path(&dest).exists(), "abort must remove the tmp file");

        // Committed: destination replaced, tmp gone.
        let mut sink = FileSink::create(&dest).unwrap();
        sink.write_all(b"new ").unwrap();
        sink.write_all(b"contents").unwrap();
        sink.commit().unwrap();
        assert!(sink.is_committed());
        drop(sink);
        assert_eq!(std::fs::read(&dest).unwrap(), b"new contents");
        assert!(!tmp_path(&dest).exists());

        // preserve_tmp_on_drop models a crash: tmp survives, dest intact.
        let mut sink = FileSink::create(&dest).unwrap();
        sink.write_all(b"torn").unwrap();
        sink.preserve_tmp_on_drop();
        drop(sink);
        assert_eq!(std::fs::read(tmp_path(&dest)).unwrap(), b"torn");
        assert_eq!(std::fs::read(&dest).unwrap(), b"new contents");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn file_sink_retried_write_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("zmesh-sink-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("out.zms");
        let mut sink = FileSink::create(&dest).unwrap();
        sink.write_all(b"abc").unwrap();
        // A retry of the *same* logical append (as the writer's retry loop
        // issues after a transient failure) lands at the same offset.
        let pos_before = sink.bytes_written();
        sink.write_all(b"def").unwrap();
        assert_eq!(pos_before + 3, sink.bytes_written());
        sink.commit().unwrap();
        drop(sink);
        assert_eq!(std::fs::read(&dest).unwrap(), b"abcdef");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn persist_store_is_typed_and_clean_on_error() {
        let dir = std::env::temp_dir().join(format!("zmesh-persist-typed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ok = dir.join("ok.bin");
        persist_store(b"payload", &ok).unwrap();
        assert_eq!(std::fs::read(&ok).unwrap(), b"payload");

        // Renaming over an existing *directory* fails: the abort must
        // remove the temp file and leave the destination untouched.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(blocked.join("keep")).unwrap();
        let err = persist_store(b"payload", &blocked).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        assert!(!tmp_path(&blocked).exists(), "failed persist left a tmp");
        assert!(blocked.join("keep").is_dir());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
