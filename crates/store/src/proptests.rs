//! Property test: a transient-only fault plan is *invisible* behind the
//! retry loop. Whatever the seed, rates, and burst length, a
//! [`FaultSource`] that injects only transient errors (`EIO`, short
//! reads) must answer every query bit-identically to a clean reader —
//! across store versions (v2 no parity, v3 XOR, v4 Reed–Solomon) and
//! both read policies — as long as the retry budget outlasts the burst.

use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use zmesh::CompressionConfig;
use zmesh_amr::{datasets, StorageMode};

use crate::faultinject::{FaultSource, FaultSpec};
use crate::source::SliceSource;
use crate::writer::StoreWriter;
use crate::{Parity, Query, ReadPolicy, RetryPolicy, StoreReader};

/// One store per container version, packed once: small chunks so every
/// query spans several reads and the injector gets plenty of rolls.
fn stores() -> &'static [(u16, Vec<u8>)] {
    static STORES: OnceLock<Vec<(u16, Vec<u8>)>> = OnceLock::new();
    STORES.get_or_init(|| {
        let ds = datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny);
        let fields: Vec<_> = ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
        [
            Parity::None,
            Parity::Xor { width: 4 },
            Parity::Rs { data: 4, parity: 2 },
        ]
        .into_iter()
        .map(|parity| {
            let out = StoreWriter::new(CompressionConfig::zmesh_default())
                .with_chunk_target_bytes(512)
                .with_parity(parity)
                .write(&fields)
                .expect("pack");
            (parity.store_version(), out.bytes)
        })
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transient_faults_are_invisible_under_retry(
        seed in any::<u64>(),
        transient in 0u32..=600,
        short in 0u32..=400,
        burst in 1u32..=2,
        extra_attempts in 1u32..=2,
        store_idx in 0usize..3,
        salvage in any::<bool>(),
        x0 in 0u32..8, y0 in 0u32..8, x1 in 0u32..8, y1 in 0u32..8,
    ) {
        let (version, bytes) = &stores()[store_idx];
        let q = Query::bbox([x0.min(x1), y0.min(y1), 0], [x0.max(x1), y0.max(y1), 0]);
        let policy = if salvage { ReadPolicy::salvage() } else { ReadPolicy::Strict };

        let clean = StoreReader::open(bytes).expect("clean open").with_read_policy(policy);

        let spec = FaultSpec {
            seed,
            transient_per_mille: transient,
            short_read_per_mille: short,
            burst,
            ..FaultSpec::default()
        };
        // Fast backoff (this is a property test, not a soak), but a real
        // budget: attempts > burst is the contract that guarantees every
        // read eventually lands.
        let retry = RetryPolicy {
            attempts: burst + extra_attempts,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
        };
        // The open itself also reads through the injector (footer, index)
        // under the default policy — its 3 attempts outlast burst <= 2.
        let faulty = StoreReader::open_source(FaultSource::new(SliceSource::new(bytes), spec))
            .expect("faulty open survives transient-only injection")
            .with_read_policy(policy)
            .with_retry_policy(retry);

        for name in clean.field_names() {
            let name = name.to_string();
            let want = clean.query(&name, &q).expect("clean query");
            let got = faulty.query(&name, &q).expect("faulty query under retry");
            prop_assert_eq!(&got.storage_indices, &want.storage_indices, "v{} indices", version);
            let got_bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u64> = want.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits, "v{} values", version);
            // Transient-only injection never looks like data damage.
            prop_assert!(got.damage.is_empty(), "v{version} damage: {:?}", got.damage);
            prop_assert!(want.damage.is_empty());
        }
        prop_assert_eq!(faulty.retry_stats().gave_up, 0);
    }
}
