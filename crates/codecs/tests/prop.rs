//! Property tests: the invariants the zMesh pipeline relies on.
//!
//! * SZ honors its absolute error bound pointwise on arbitrary finite data;
//! * ZFP honors its tolerance pointwise on arbitrary bounded data;
//! * the lossless backends round-trip arbitrary bytes exactly.

use proptest::prelude::*;
use zmesh_codecs::lossless::Backend;
use zmesh_codecs::{Codec, CodecParams, SzCodec, ZfpCodec};

/// Bounded values keep the test meaningful for ZFP (no NaN/Inf allowed).
fn bounded_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -1e6f64..1e6,
        1 => -1e-6f64..1e-6,
        1 => Just(0.0),
        1 => -1e12f64..1e12,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sz_honors_abs_bound(
        data in prop::collection::vec(bounded_f64(), 0..600),
        eb_exp in -8i32..2
    ) {
        let eb = 10f64.powi(eb_exp);
        let codec = SzCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(eb)).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        prop_assert_eq!(out.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            prop_assert!((a - b).abs() <= eb * (1.0 + 1e-12), "i={} a={} b={}", i, a, b);
        }
    }

    #[test]
    fn sz_handles_arbitrary_finite_values(
        data in prop::collection::vec(
            prop::num::f64::NORMAL | prop::num::f64::SUBNORMAL | prop::num::f64::ZERO,
            0..200
        )
    ) {
        let eb = 1e-3;
        let codec = SzCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(eb)).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn zfp_honors_tolerance_1d(
        data in prop::collection::vec(bounded_f64(), 0..600),
        tol_exp in -8i32..2
    ) {
        let tol = 10f64.powi(tol_exp);
        let codec = ZfpCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(tol)).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        prop_assert_eq!(out.len(), data.len());
        // Like the reference ZFP, accuracy mode cannot deliver tolerances
        // below the 62-bit block-float precision floor: a block whose max
        // magnitude is M cannot be reconstructed finer than ~M * 2^-52
        // (cast truncation + transform rounding). The effective guarantee
        // is max(tol, floor).
        let gmax = data.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let eff = tol.max(gmax * 2f64.powi(-52));
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            prop_assert!((a - b).abs() <= eff, "i={} a={} b={} eff={}", i, a, b, eff);
        }
    }

    #[test]
    fn zfp_honors_tolerance_2d(
        nx in 1usize..24,
        ny in 1usize..24,
        seed in any::<u64>()
    ) {
        let tol = 1e-4;
        let mut s = seed | 1;
        let data: Vec<f64> = (0..nx * ny).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
        }).collect();
        let codec = ZfpCodec::new();
        let params = CodecParams::abs_1d(tol).with_dims_2d(nx, ny);
        let out = codec.decompress(&codec.compress(&data, &params).unwrap()).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            prop_assert!((a - b).abs() <= tol);
        }
    }

    #[test]
    fn lossless_backends_round_trip(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        backend in prop::sample::select(&[Backend::None, Backend::Rle, Backend::Lzss][..])
    ) {
        let c = backend.compress(&data);
        prop_assert_eq!(backend.decompress(&c).unwrap(), data);
    }

    #[test]
    fn sz_decompress_never_panics_on_garbage(
        data in prop::collection::vec(any::<u8>(), 0..300)
    ) {
        let _ = SzCodec::new().decompress(&data);
    }

    #[test]
    fn zfp_decompress_never_panics_on_garbage(
        data in prop::collection::vec(any::<u8>(), 0..300)
    ) {
        let _ = ZfpCodec::new().decompress(&data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gorilla_round_trips_bitwise(
        data in prop::collection::vec(any::<f64>(), 0..400)
    ) {
        use zmesh_codecs::lossless::gorilla;
        let c = gorilla::compress(&data);
        let d = gorilla::decompress(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rangecoder_round_trips(
        symbols in prop::collection::vec(any::<u16>(), 0..600)
    ) {
        use zmesh_codecs::lossless::rangecoder;
        let c = rangecoder::encode(&symbols);
        prop_assert_eq!(rangecoder::decode(&c).unwrap(), symbols);
    }

    #[test]
    fn sz_f32_mode_honors_bound_on_f32_data(
        raw in prop::collection::vec(-1e6f32..1e6, 0..400),
        eb_exp in -5i32..1
    ) {
        let eb = 10f64.powi(eb_exp);
        let data: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        let codec = SzCodec::new();
        let params = CodecParams::abs_1d(eb).as_f32();
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            prop_assert_eq!(b, f64::from(b as f32));
            prop_assert!((a - b).abs() <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn zfp_fixed_precision_never_panics(
        data in prop::collection::vec(bounded_f64(), 0..300),
        prec in 1u32..=64
    ) {
        use zmesh_codecs::ErrorControl;
        let codec = ZfpCodec::new();
        let params = CodecParams {
            control: ErrorControl::FixedPrecision(prec),
            dims: [0, 0, 0],
            value_type: zmesh_codecs::ValueType::F64,
        };
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        prop_assert_eq!(out.len(), data.len());
    }
}
