//! Embedded (bit-plane) coding with group testing.
//!
//! This is a faithful port of ZFP's `encode_ints`/`decode_ints`: negabinary
//! coefficients (in total-sequency order) are emitted plane by plane from the
//! most significant bit down to `kmin`. Within a plane, the bits of
//! already-significant coefficients are sent verbatim; the remainder is
//! run-length coded with group tests ("is any remaining bit set?"), which is
//! what makes the stream *embedded*: any prefix is a valid lower-precision
//! approximation, and fixed-rate mode simply truncates at a bit budget.

use zmesh_bitstream::{BitReader, BitWriter};

/// Number of bit planes in a coefficient.
pub const INTPREC: u32 = 64;

/// Encodes `data` (negabinary, sequency order) down to plane `kmin`,
/// spending at most `maxbits` bits. Returns the number of bits written.
pub fn encode_ints(w: &mut BitWriter, data: &[u64], kmin: u32, maxbits: u64) -> u64 {
    let size = data.len();
    debug_assert!(size <= 64);
    let mut bits = maxbits;
    let mut n: usize = 0;
    let start = w.len_bits();
    let mut k = INTPREC;
    while bits > 0 && k > kmin {
        k -= 1;
        // Step 1: extract bit plane k.
        let mut x = 0u64;
        for (i, &d) in data.iter().enumerate() {
            x |= ((d >> k) & 1) << i;
        }
        // Step 2: emit the first n bits (known-significant coefficients).
        let m = (n as u64).min(bits) as u32;
        bits -= u64::from(m);
        w.write_bits(x, m);
        x = if m >= 64 { 0 } else { x >> m };
        // Step 3: group-test run-length code the remainder of the plane.
        'outer: while n < size && bits > 0 {
            bits -= 1;
            let any = x != 0;
            w.write_bit(any);
            if !any {
                break 'outer;
            }
            // Emit position bits until the set bit is sent (or implied).
            while n < size - 1 && bits > 0 {
                bits -= 1;
                let bit = x & 1 != 0;
                w.write_bit(bit);
                if bit {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            // Consume the coefficient whose 1 was just sent (or implied when
            // n == size - 1, or left ambiguous when the budget ran out).
            x >>= 1;
            n += 1;
        }
    }
    w.len_bits() - start
}

/// Decodes a stream produced by [`encode_ints`] into `data` (must be
/// zero-initialized, same `size`/`kmin`/`maxbits` as the encoder). Returns
/// the number of bits consumed.
pub fn decode_ints(r: &mut BitReader<'_>, data: &mut [u64], kmin: u32, maxbits: u64) -> u64 {
    let size = data.len();
    debug_assert!(size <= 64);
    let mut bits = maxbits;
    let mut n: usize = 0;
    let start = r.position();
    let mut k = INTPREC;
    while bits > 0 && k > kmin {
        k -= 1;
        // Step 1: read the verbatim bits of known-significant coefficients.
        let m = (n as u64).min(bits) as u32;
        bits -= u64::from(m);
        let mut x = r.read_bits_or_zero(m);
        // Step 2: group-test run-length decode the remainder.
        'outer: while n < size && bits > 0 {
            bits -= 1;
            if !r.read_bit_or_zero() {
                break 'outer;
            }
            while n < size - 1 && bits > 0 {
                bits -= 1;
                if r.read_bit_or_zero() {
                    break;
                }
                n += 1;
            }
            x |= 1u64 << n;
            n += 1;
        }
        // Step 3: deposit the plane.
        let mut y = x;
        let mut i = 0;
        while y != 0 {
            data[i] |= (y & 1) << k;
            y >>= 1;
            i += 1;
        }
    }
    r.position() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u64], kmin: u32) -> Vec<u64> {
        let mut w = BitWriter::new();
        let written = encode_ints(&mut w, data, kmin, u64::MAX);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0u64; data.len()];
        let read = decode_ints(&mut r, &mut out, kmin, u64::MAX);
        assert_eq!(written, read, "bit accounting mismatch");
        out
    }

    #[test]
    fn lossless_at_kmin_zero() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0, 0, 0, 0],
            vec![1, 2, 3, 4],
            vec![u64::MAX, 0, u64::MAX / 3, 42],
            (0..16).map(|i| (i as u64) << 40).collect(),
            (0..64).map(|i| i as u64 * 0x0123_4567_89ab).collect(),
        ];
        for data in cases {
            assert_eq!(round_trip(&data, 0), data);
        }
    }

    #[test]
    fn truncation_at_kmin_drops_only_low_planes() {
        let data = vec![0xffff_0000_u64, 0x0000_ffff, 0xf0f0_f0f0, 0x1234_5678];
        for kmin in [8u32, 16, 32] {
            let out = round_trip(&data, kmin);
            let mask = !((1u64 << kmin) - 1);
            for (a, b) in data.iter().zip(&out) {
                assert_eq!(a & mask, b & mask, "kmin = {kmin}");
                assert_eq!(b & !mask, 0, "low planes must be zero");
            }
        }
    }

    #[test]
    fn budget_truncation_is_prefix_consistent() {
        let data: Vec<u64> = (0..16)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let mut w = BitWriter::new();
        encode_ints(&mut w, &data, 0, u64::MAX);
        let full = w.into_bytes();

        for budget in [1u64, 7, 32, 100, 333, 1000] {
            let mut wb = BitWriter::new();
            let written = encode_ints(&mut wb, &data, 0, budget);
            assert!(written <= budget);
            let truncated = wb.into_bytes();
            // The budgeted stream must be a bit-prefix of the full stream.
            let n_whole = (written / 8) as usize;
            assert_eq!(&truncated[..n_whole], &full[..n_whole], "budget={budget}");

            // And it must decode without panicking, with the same budget.
            let mut r = BitReader::new(&truncated);
            let mut out = vec![0u64; data.len()];
            decode_ints(&mut r, &mut out, 0, budget);
        }
    }

    #[test]
    fn single_coefficient_block() {
        let data = vec![0xdead_beefu64];
        assert_eq!(round_trip(&data, 0), data);
    }

    #[test]
    fn implied_last_bit() {
        // Only the last coefficient has a bit in the top plane: exercises the
        // "implied 1 at n == size-1" path.
        let data = vec![0u64, 0, 0, 1u64 << 63];
        assert_eq!(round_trip(&data, 0), data);
    }

    #[test]
    fn sixty_four_coefficients() {
        let data: Vec<u64> = (0..64)
            .map(|i| if i % 3 == 0 { 1u64 << (i % 60) } else { 0 })
            .collect();
        assert_eq!(round_trip(&data, 0), data);
    }
}
