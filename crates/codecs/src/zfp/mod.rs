//! ZFP-style transform-based error-bounded lossy compressor.
//!
//! Pipeline (mirrors ZFP 0.5, the version the paper benchmarks against):
//!
//! 1. the stream is cut into blocks of 4 / 4×4 / 4×4×4 values (partial edge
//!    blocks padded by replication, [`block`]);
//! 2. each block is aligned to a common exponent and cast to 62-bit fixed
//!    point ([`block::fwd_cast`]);
//! 3. a lifted, exactly invertible decorrelating transform is applied along
//!    each dimension ([`transform`]);
//! 4. coefficients are reordered by total sequency, converted to negabinary
//!    ([`negabinary`]), and
//! 5. entropy-coded with embedded group-tested bit planes ([`embedded`]).
//!
//! Two modes:
//! * **fixed accuracy** — an absolute error tolerance decides how many bit
//!   planes each block keeps (`maxprec = emax - minexp + 2(d+1)`). Like the
//!   reference ZFP, the tolerance is honored down to the block-float
//!   precision floor: a block with max magnitude `M` cannot be reconstructed
//!   finer than `≈ M · 2⁻⁵²` (62-bit cast truncation plus lifting-transform
//!   rounding), so the effective guarantee is `max(tol, M · 2⁻⁵²)`.
//! * **fixed rate** — every block gets the same bit budget; no error
//!   guarantee, but random access and exact size control.
//!
//! Because the per-block transform decorrelates *within* a 4-wide window,
//! this codec is less sensitive to long-range stream roughness than the
//! SZ-style predictor — which is why the paper reports a smaller (but still
//! positive) zMesh gain for ZFP (+16.5 %) than for SZ (+133.7 %).
//!
//! Blocks are grouped into *superblocks* that are encoded and decoded in
//! parallel with rayon; superblock byte offsets live in the header.

pub mod block;
pub mod embedded;
pub mod negabinary;
pub mod transform;

use crate::{varint, Codec, CodecError, CodecKind, CodecParams, ErrorControl, ValueType};
use block::{block_exponent, fwd_cast, gather, inv_cast, perm, scatter, BlockShape, SIDE};
use rayon::prelude::*;
use zmesh_bitstream::{BitReader, BitWriter};

const MAGIC: &[u8; 4] = b"ZFR1";
/// Blocks per superblock (parallelism granule).
const SUPERBLOCK: usize = 256;
/// Bits for the per-block header: 1 flag bit + 16-bit biased exponent.
const HEADER_BITS: u64 = 17;
/// Exponent bias for the 16-bit on-wire exponent.
const EBIAS: i32 = 8192;

/// Compression mode resolved from [`ErrorControl`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// `minexp`: blocks keep planes down to this exponent.
    Accuracy { tolerance: f64 },
    /// Bits per block (including the block header), fixed.
    Rate { maxbits: u64 },
    /// Bit planes kept per block, fixed (relative-accuracy control).
    Precision { maxprec: u32 },
}

/// The ZFP-style codec. See the [module docs](self) for the pipeline.
///
/// ```
/// use zmesh_codecs::{Codec, CodecParams, ZfpCodec};
///
/// let data: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.02).cos()).collect();
/// let codec = ZfpCodec::new();
/// let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-3)).unwrap();
/// let out = codec.decompress(&bytes).unwrap();
/// assert!(data.iter().zip(&out).all(|(a, b)| (a - b).abs() <= 1e-3));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpCodec;

impl ZfpCodec {
    /// Codec with default configuration.
    pub fn new() -> Self {
        Self
    }
}

/// `minexp` for a tolerance: largest `e` with `2^e <= tolerance`.
fn min_exp(tolerance: f64) -> i32 {
    debug_assert!(tolerance > 0.0 && tolerance.is_finite());
    // floor(log2(tolerance)) via the exponent field, exact for powers of two.
    let e = tolerance.log2().floor() as i32;
    // Guard against rounding at the boundary.
    if 2f64.powi(e + 1) <= tolerance {
        e + 1
    } else if 2f64.powi(e) > tolerance {
        e - 1
    } else {
        e
    }
}

/// Planes to keep for a block: ZFP's precision formula.
fn max_prec(emax: i32, minexp: i32, dims: usize) -> u32 {
    (emax - minexp + 2 * (dims as i32 + 1)).clamp(0, 64) as u32
}

/// Resolves grid shape from params, validating against the data length.
fn resolve_grid(n: usize, params: &CodecParams) -> Result<([usize; 3], usize), CodecError> {
    let dims = params.dimensionality();
    let grid = match dims {
        1 => [n, 1, 1],
        2 => [params.dims[0], params.dims[1], 1],
        _ => params.dims,
    };
    let expected: usize = grid.iter().product();
    if expected != n {
        return Err(CodecError::DimsMismatch {
            expected,
            actual: n,
        });
    }
    Ok((grid, dims))
}

/// Block origins in row-major block-grid order (empty grid → no blocks).
fn block_origins(grid: [usize; 3], dims: usize) -> Vec<[usize; 3]> {
    let nb = |d: usize| if d < dims { grid[d].div_ceil(SIDE) } else { 1 };
    let (bx, by, bz) = (nb(0), nb(1), nb(2));
    let mut origins = Vec::with_capacity(bx * by * bz);
    for z in 0..bz {
        for y in 0..by {
            for x in 0..bx {
                origins.push([x * SIDE, y * SIDE, z * SIDE]);
            }
        }
    }
    origins
}

/// Encodes one block into `w`. Returns bits written (before rate padding).
fn encode_block(w: &mut BitWriter, vals: &[f64], dims: usize, mode: Mode) {
    let n = vals.len();
    let budget = match mode {
        Mode::Accuracy { .. } | Mode::Precision { .. } => u64::MAX,
        Mode::Rate { maxbits } => maxbits,
    };
    let start = w.len_bits();
    let emax = block_exponent(vals);
    let keep = match (emax, mode) {
        (None, _) => 0,
        (Some(e), Mode::Accuracy { tolerance }) => max_prec(e, min_exp(tolerance), dims),
        (Some(_), Mode::Rate { .. }) => 64,
        (Some(_), Mode::Precision { maxprec }) => maxprec,
    };
    if keep == 0 {
        // Empty block: single 0 flag bit.
        w.write_bit(false);
    } else {
        let emax = emax.expect("nonzero block");
        w.write_bit(true);
        w.write_bits((emax + EBIAS) as u64, 16);
        let mut ints = vec![0i64; n];
        fwd_cast(vals, emax, &mut ints);
        transform::fwd_xform(&mut ints, dims);
        let p = perm(dims);
        let ub: Vec<u64> = p
            .iter()
            .map(|&i| negabinary::int_to_uint(ints[i]))
            .collect();
        let kmin = 64 - keep;
        embedded::encode_ints(w, &ub, kmin, budget.saturating_sub(HEADER_BITS));
    }
    if let Mode::Rate { maxbits } = mode {
        let used = w.len_bits() - start;
        debug_assert!(used <= maxbits);
        w.write_zeros((maxbits - used) as u32);
    }
}

/// Decodes one block from `r` into `out` (length `4^dims`).
fn decode_block(r: &mut BitReader<'_>, out: &mut [f64], dims: usize, mode: Mode) {
    let n = out.len();
    let budget = match mode {
        Mode::Accuracy { .. } | Mode::Precision { .. } => u64::MAX,
        Mode::Rate { maxbits } => maxbits,
    };
    let start = r.position();
    if !r.read_bit_or_zero() {
        out.fill(0.0);
    } else {
        let emax = r.read_bits_or_zero(16) as i32 - EBIAS;
        let keep = match mode {
            Mode::Accuracy { tolerance } => max_prec(emax, min_exp(tolerance), dims),
            Mode::Rate { .. } => 64,
            Mode::Precision { maxprec } => maxprec,
        };
        let kmin = 64 - keep;
        let mut ub = vec![0u64; n];
        embedded::decode_ints(r, &mut ub, kmin, budget.saturating_sub(HEADER_BITS));
        let p = perm(dims);
        let mut ints = vec![0i64; n];
        for (rank, &slot) in p.iter().enumerate() {
            ints[slot] = negabinary::uint_to_int(ub[rank]);
        }
        transform::inv_xform(&mut ints, dims);
        inv_cast(&ints, emax, out);
    }
    if let Mode::Rate { maxbits } = mode {
        let used = r.position() - start;
        r.skip(maxbits - used);
    }
}

impl Codec for ZfpCodec {
    fn compress(&self, data: &[f64], params: &CodecParams) -> Result<Vec<u8>, CodecError> {
        if let Some(idx) = data.iter().position(|v| !v.is_finite()) {
            return Err(CodecError::NonFiniteInput { index: idx });
        }
        if params.value_type == ValueType::F32 {
            for (i, &v) in data.iter().enumerate() {
                if v != f64::from(v as f32) {
                    return Err(CodecError::NotSinglePrecision { index: i });
                }
            }
        }
        let (grid, dims) = resolve_grid(data.len(), params)?;
        let block_size = SIDE.pow(dims as u32);
        let (mode, mode_tag, mode_param) = match params.control {
            ErrorControl::FixedPrecision(p) => {
                if !(1..=64).contains(&p) {
                    return Err(CodecError::InvalidBound(f64::from(p)));
                }
                (Mode::Precision { maxprec: p }, 2u8, f64::from(p))
            }
            ErrorControl::FixedRate(bpv) => {
                if !(bpv.is_finite() && bpv > 0.0) {
                    return Err(CodecError::InvalidBound(bpv));
                }
                let maxbits = ((bpv * block_size as f64).ceil() as u64).max(HEADER_BITS + 1);
                (Mode::Rate { maxbits }, 1u8, bpv)
            }
            ref c => {
                let tol = c.absolute_bound(data).expect("not fixed-rate");
                if !tol.is_finite() || tol <= 0.0 {
                    return Err(CodecError::InvalidBound(tol));
                }
                (Mode::Accuracy { tolerance: tol }, 0u8, tol)
            }
        };

        let origins = block_origins(grid, dims);
        let payloads: Vec<Vec<u8>> = origins
            .par_chunks(SUPERBLOCK)
            .map(|chunk| {
                let mut w = BitWriter::with_capacity(chunk.len() * block_size);
                let mut vals = vec![0.0f64; block_size];
                for &origin in chunk {
                    gather(data, grid, dims, origin, &mut vals);
                    encode_block(&mut w, &vals, dims, mode);
                }
                w.into_bytes()
            })
            .collect();

        let mut out = Vec::with_capacity(payloads.iter().map(Vec::len).sum::<usize>() + 64);
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, data.len() as u64);
        for d in params.dims {
            varint::write_u64(&mut out, d as u64);
        }
        out.push(mode_tag);
        out.push(params.value_type.tag());
        varint::write_f64(&mut out, mode_param);
        varint::write_u64(&mut out, payloads.len() as u64);
        for p in &payloads {
            varint::write_u64(&mut out, p.len() as u64);
        }
        for p in &payloads {
            out.extend_from_slice(p);
        }
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        let mut pos = 0;
        if varint::read_bytes(bytes, &mut pos, 4)? != MAGIC {
            return Err(CodecError::WrongMagic);
        }
        let n = varint::read_u64(bytes, &mut pos)? as usize;
        let mut pdims = [0usize; 3];
        for d in &mut pdims {
            *d = varint::read_u64(bytes, &mut pos)? as usize;
        }
        let params = CodecParams {
            control: ErrorControl::Absolute(0.0), // placeholder, not used below
            dims: pdims,
            value_type: ValueType::F64,
        };
        let (grid, dims) = resolve_grid(n, &params)?;
        let block_size = SIDE.pow(dims as u32);
        let mode_tag = *bytes.get(pos).ok_or(CodecError::Corrupt("no mode tag"))?;
        pos += 1;
        let value_type = ValueType::from_tag(
            *bytes
                .get(pos)
                .ok_or(CodecError::Corrupt("no value-type tag"))?,
        )
        .ok_or(CodecError::Corrupt("unknown value-type tag"))?;
        pos += 1;
        let mode_param = varint::read_f64(bytes, &mut pos)?;
        let mode = match mode_tag {
            0 => {
                if !mode_param.is_finite() || mode_param <= 0.0 {
                    return Err(CodecError::Corrupt("invalid stored tolerance"));
                }
                Mode::Accuracy {
                    tolerance: mode_param,
                }
            }
            1 => {
                if !mode_param.is_finite() || mode_param <= 0.0 {
                    return Err(CodecError::Corrupt("invalid stored rate"));
                }
                Mode::Rate {
                    maxbits: ((mode_param * block_size as f64).ceil() as u64).max(HEADER_BITS + 1),
                }
            }
            2 => {
                let p = mode_param as u32;
                if mode_param.fract() != 0.0 || !(1..=64).contains(&p) {
                    return Err(CodecError::Corrupt("invalid stored precision"));
                }
                Mode::Precision { maxprec: p }
            }
            _ => return Err(CodecError::Corrupt("unknown mode tag")),
        };
        let n_super = varint::read_u64(bytes, &mut pos)? as usize;
        let origins = block_origins(grid, dims);
        if n_super != origins.len().div_ceil(SUPERBLOCK) {
            return Err(CodecError::Corrupt("superblock count mismatch"));
        }
        let mut lens = Vec::with_capacity(n_super);
        for _ in 0..n_super {
            lens.push(varint::read_u64(bytes, &mut pos)? as usize);
        }
        let total: usize = lens.iter().sum();
        let body = varint::read_bytes(bytes, &mut pos, total)?;
        let mut offsets = Vec::with_capacity(n_super);
        let mut off = 0;
        for &l in &lens {
            offsets.push(off);
            off += l;
        }

        let mut out = vec![0.0f64; n];
        // Parallel decode: each superblock writes a disjoint set of blocks.
        // Collect per-superblock results then scatter sequentially (scatter
        // regions are disjoint but interleaved in memory).
        let decoded: Vec<Vec<(usize, Vec<f64>)>> = origins
            .par_chunks(SUPERBLOCK)
            .enumerate()
            .map(|(si, chunk)| {
                let payload = &body[offsets[si]..offsets[si] + lens[si]];
                let mut r = BitReader::new(payload);
                let mut blocks = Vec::with_capacity(chunk.len());
                for (bi, _) in chunk.iter().enumerate() {
                    let mut vals = vec![0.0f64; block_size];
                    decode_block(&mut r, &mut vals, dims, mode);
                    blocks.push((si * SUPERBLOCK + bi, vals));
                }
                blocks
            })
            .collect();
        for blocks in decoded {
            for (bi, mut vals) in blocks {
                if value_type == ValueType::F32 {
                    // Snap to single precision; the reconstruction error
                    // grows by at most half an f32 ulp (like reference ZFP
                    // operating on f32 arrays).
                    for v in &mut vals {
                        *v = f64::from(*v as f32);
                    }
                }
                let origin = origins[bi];
                // Reconstruct the shape the encoder saw.
                let mut ext = [1usize; 3];
                for d in 0..dims {
                    ext[d] = SIDE.min(grid[d] - origin[d]);
                }
                scatter(&vals, BlockShape { ext, dims }, grid, origin, &mut out);
            }
        }
        Ok(out)
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Zfp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(data: &[f64], params: &CodecParams, bound: f64) -> usize {
        let codec = ZfpCodec::new();
        let bytes = codec.compress(data, params).expect("compress");
        let out = codec.decompress(&bytes).expect("decompress");
        assert_eq!(out.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!(
                (a - b).abs() <= bound,
                "index {i}: |{a} - {b}| = {} > {bound}",
                (a - b).abs()
            );
        }
        bytes.len()
    }

    #[test]
    fn min_exp_brackets_tolerance() {
        for tol in [1e-6, 1e-3, 0.5, 1.0, 3.7, 1024.0, 1e20] {
            let e = min_exp(tol);
            assert!(2f64.powi(e) <= tol, "tol={tol}, e={e}");
            assert!(2f64.powi(e + 1) > tol, "tol={tol}, e={e}");
        }
    }

    #[test]
    fn smooth_1d_within_bound() {
        let data: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * 0.001).sin() * 4.0)
            .collect();
        for tol in [1e-1, 1e-3, 1e-6] {
            check_bound(&data, &CodecParams::abs_1d(tol), tol);
        }
    }

    #[test]
    fn rough_1d_within_bound() {
        let data: Vec<f64> = (0..5003)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 2000.0 - 1000.0
            })
            .collect();
        check_bound(&data, &CodecParams::abs_1d(0.5), 0.5);
    }

    #[test]
    fn mixed_magnitudes_within_bound() {
        let mut data = vec![0.0; 4096];
        for (i, v) in data.iter_mut().enumerate() {
            *v = match i % 5 {
                0 => 1e-8,
                1 => -300.0,
                2 => 0.0,
                3 => 7e5,
                _ => (i as f64).sqrt(),
            };
        }
        check_bound(&data, &CodecParams::abs_1d(1e-2), 1e-2);
    }

    #[test]
    fn grid_2d_within_bound() {
        let (nx, ny) = (37, 53);
        let data: Vec<f64> = (0..nx * ny)
            .map(|i| {
                let (x, y) = (i % nx, i / nx);
                ((x as f64) * 0.3).sin() * ((y as f64) * 0.2).cos()
            })
            .collect();
        let params = CodecParams::abs_1d(1e-4).with_dims_2d(nx, ny);
        check_bound(&data, &params, 1e-4);
    }

    #[test]
    fn grid_3d_within_bound() {
        let (nx, ny, nz) = (13, 9, 11);
        let data: Vec<f64> = (0..nx * ny * nz)
            .map(|i| {
                let x = i % nx;
                let y = (i / nx) % ny;
                let z = i / (nx * ny);
                (x as f64 + 2.0 * y as f64 - z as f64) * 0.1
            })
            .collect();
        let params = CodecParams::abs_1d(1e-3).with_dims_3d(nx, ny, nz);
        check_bound(&data, &params, 1e-3);
    }

    #[test]
    fn smooth_data_beats_rough_data() {
        let smooth: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.01).sin()).collect();
        let rough: Vec<f64> = (0..8192)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect();
        let s = check_bound(&smooth, &CodecParams::abs_1d(1e-4), 1e-4);
        let r = check_bound(&rough, &CodecParams::abs_1d(1e-4), 1e-4);
        assert!(s < r, "smooth {s} vs rough {r}");
    }

    #[test]
    fn all_zero_stream_is_tiny() {
        let data = vec![0.0; 100_000];
        let codec = ZfpCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-6)).unwrap();
        assert!(bytes.len() < 4000, "len = {}", bytes.len());
        assert_eq!(codec.decompress(&bytes).unwrap(), data);
    }

    #[test]
    fn fixed_rate_sizes_are_exact() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
        let codec = ZfpCodec::new();
        let params = CodecParams {
            control: ErrorControl::FixedRate(8.0),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };
        let bytes = codec.compress(&data, &params).unwrap();
        // 1024 blocks * 32 bits = 4096 bytes payload (+ header).
        let payload = bytes.len() as f64 - 40.0;
        assert!((payload - 4096.0).abs() < 64.0, "payload = {payload}");
        // Decodes cleanly; quality at 8 bpv is loose (17 of 32 bits per
        // block are header), so only sanity-check the magnitude.
        let out = codec.decompress(&bytes).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 0.5);
        }
        // At a generous rate the reconstruction is near-exact.
        let params = CodecParams {
            control: ErrorControl::FixedRate(32.0),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };
        let out = codec
            .decompress(&codec.compress(&data, &params).unwrap())
            .unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fixed_rate_quality_improves_with_rate() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.013).cos() * 3.0).collect();
        let codec = ZfpCodec::new();
        let err_at = |rate: f64| {
            let params = CodecParams {
                control: ErrorControl::FixedRate(rate),
                dims: [0, 0, 0],
                value_type: ValueType::F64,
            };
            let out = codec
                .decompress(&codec.compress(&data, &params).unwrap())
                .unwrap();
            data.iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(err_at(16.0) < err_at(6.0));
    }

    #[test]
    fn rejects_non_finite_input() {
        let codec = ZfpCodec::new();
        let data = [1.0, f64::NAN, 2.0];
        assert!(matches!(
            codec.compress(&data, &CodecParams::abs_1d(0.1)),
            Err(CodecError::NonFiniteInput { index: 1 })
        ));
    }

    #[test]
    fn rejects_bad_dims() {
        let codec = ZfpCodec::new();
        let data = vec![0.0; 10];
        let params = CodecParams::abs_1d(0.1).with_dims_2d(3, 4);
        assert!(matches!(
            codec.compress(&data, &params),
            Err(CodecError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let codec = ZfpCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(0.1)).unwrap();
        assert!(codec.decompress(&[]).is_err());
        assert!(codec.decompress(b"ZZZZ").is_err());
        for cut in [4, 10, bytes.len() / 2] {
            assert!(codec.decompress(&bytes[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = ZfpCodec::new();
        let bytes = codec.compress(&[], &CodecParams::abs_1d(0.1)).unwrap();
        assert_eq!(codec.decompress(&bytes).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn tighter_tolerance_costs_more() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.002).sin() * 10.0).collect();
        let codec = ZfpCodec::new();
        let loose = codec.compress(&data, &CodecParams::abs_1d(1e-2)).unwrap();
        let tight = codec.compress(&data, &CodecParams::abs_1d(1e-8)).unwrap();
        assert!(loose.len() < tight.len());
    }
}

#[cfg(test)]
mod precision_tests {
    use super::*;

    #[test]
    fn fixed_precision_round_trips() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.003).sin() * 7.0).collect();
        let codec = ZfpCodec::new();
        let params = CodecParams {
            control: ErrorControl::FixedPrecision(32),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        assert_eq!(out.len(), data.len());
        // 32 planes of a ~2^3 signal: relative error around 2^-28.
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-5, "|{a} - {b}|");
        }
    }

    #[test]
    fn precision_controls_quality_monotonically() {
        let data: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.01).cos() * 3.0).collect();
        let codec = ZfpCodec::new();
        let err_at = |p: u32| {
            let params = CodecParams {
                control: ErrorControl::FixedPrecision(p),
                dims: [0, 0, 0],
                value_type: ValueType::F64,
            };
            let out = codec
                .decompress(&codec.compress(&data, &params).unwrap())
                .unwrap();
            data.iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let (e8, e16, e32) = (err_at(8), err_at(16), err_at(32));
        assert!(e8 > e16 && e16 > e32, "{e8} {e16} {e32}");
    }

    #[test]
    fn precision_controls_size_monotonically() {
        let data: Vec<f64> = (0..2048)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let codec = ZfpCodec::new();
        let size_at = |p: u32| {
            let params = CodecParams {
                control: ErrorControl::FixedPrecision(p),
                dims: [0, 0, 0],
                value_type: ValueType::F64,
            };
            codec.compress(&data, &params).unwrap().len()
        };
        assert!(size_at(8) < size_at(24));
        assert!(size_at(24) < size_at(56));
    }

    #[test]
    fn invalid_precision_is_rejected() {
        let codec = ZfpCodec::new();
        for p in [0u32, 65, 1000] {
            let params = CodecParams {
                control: ErrorControl::FixedPrecision(p),
                dims: [0, 0, 0],
                value_type: ValueType::F64,
            };
            assert!(codec.compress(&[1.0], &params).is_err(), "p = {p}");
        }
    }

    #[test]
    fn sz_rejects_fixed_precision() {
        use crate::SzCodec;
        let params = CodecParams {
            control: ErrorControl::FixedPrecision(16),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };
        assert!(crate::Codec::compress(&SzCodec::new(), &[1.0], &params).is_err());
    }
}

#[cfg(test)]
mod f32_tests {
    use super::*;

    #[test]
    fn f32_streams_round_trip_within_bound() {
        let data: Vec<f64> = (0..4096)
            .map(|i| f64::from(((i as f32) * 0.01).sin() * 3.0))
            .collect();
        let tol = 1e-4;
        let codec = ZfpCodec::new();
        let params = CodecParams::abs_1d(tol).as_f32();
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        let max_ulp = f64::from(f32::EPSILON) * 4.0; // values ~ 3.0
        for (&a, &b) in data.iter().zip(&out) {
            assert_eq!(b, f64::from(b as f32), "output not f32");
            assert!((a - b).abs() <= tol + max_ulp / 2.0);
        }
    }

    #[test]
    fn non_f32_input_is_rejected_in_f32_mode() {
        let codec = ZfpCodec::new();
        let params = CodecParams::abs_1d(0.1).as_f32();
        let data = [0.1f64, 0.2, 0.3]; // none are f32-exact
        assert!(matches!(
            codec.compress(&data, &params),
            Err(CodecError::NotSinglePrecision { .. })
        ));
    }
}
