//! Block gather/scatter, block-floating-point cast, and coefficient order.

use std::sync::OnceLock;

/// Side length of every block.
pub const SIDE: usize = 4;

/// Fixed-point precision of the block-float cast (two guard bits below the
/// 64-bit integer width, as in the reference implementation).
const Q: i32 = 62;

/// Largest exponent in a block: `e` such that `max|x| < 2^e`.
/// Returns `None` for an all-zero block.
pub fn block_exponent(vals: &[f64]) -> Option<i32> {
    let mut max = 0.0f64;
    for &v in vals {
        max = max.max(v.abs());
    }
    if max == 0.0 {
        return None;
    }
    let (_, e) = frexp(max);
    Some(e)
}

/// `frexp`: returns `(f, e)` with `x = f * 2^e`, `|f| ∈ [0.5, 1)`.
fn frexp(x: f64) -> (f64, i32) {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    if raw_exp == 0 {
        // Subnormal: normalize by scaling up.
        let scaled = x * 2f64.powi(64);
        let (f, e) = frexp(scaled);
        (f, e - 64)
    } else {
        let e = raw_exp - 1022;
        let f = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
        (f, e)
    }
}

/// `x * 2^e`, exact for any in-range result, safe for `|e|` beyond the
/// range where `2^e` itself is representable (splits into safe chunks).
pub fn ldexp(x: f64, e: i32) -> f64 {
    let mut x = x;
    let mut e = e;
    while e > 1000 {
        x *= 2f64.powi(1000);
        e -= 1000;
    }
    while e < -1000 {
        x *= 2f64.powi(-1000);
        e += 1000;
    }
    x * 2f64.powi(e)
}

/// Block-float cast: `x -> (i64)(x * 2^(Q - emax))`, so `|i| < 2^62`.
pub fn fwd_cast(vals: &[f64], emax: i32, out: &mut [i64]) {
    for (o, &v) in out.iter_mut().zip(vals) {
        *o = ldexp(v, Q - emax) as i64;
    }
}

/// Inverse of [`fwd_cast`].
pub fn inv_cast(ints: &[i64], emax: i32, out: &mut [f64]) {
    for (o, &i) in out.iter_mut().zip(ints) {
        *o = ldexp(i as f64, emax - Q);
    }
}

/// Total-sequency permutation for `dims` (1..=3): `perm[rank] = block index`.
///
/// Coefficients are ordered by total degree `i + j + k` so significance
/// decays monotonically along the scan — the order the embedded coder
/// assumes. The tie-break is fixed (max coordinate, then row-major index);
/// encoder and decoder share it, which is all that correctness requires.
pub fn perm(dims: usize) -> &'static [usize] {
    static PERMS: OnceLock<[Vec<usize>; 3]> = OnceLock::new();
    let perms = PERMS.get_or_init(|| {
        let make = |dims: usize| {
            let n = SIDE.pow(dims as u32);
            let coord = |idx: usize| -> (usize, usize, usize) {
                (idx % SIDE, (idx / SIDE) % SIDE, idx / (SIDE * SIDE))
            };
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&idx| {
                let (i, j, k) = coord(idx);
                (i + j + k, i.max(j).max(k), idx)
            });
            order
        };
        [make(1), make(2), make(3)]
    });
    &perms[dims - 1]
}

/// Shape of a (possibly partial) block: the valid extent along each axis.
#[derive(Debug, Clone, Copy)]
pub struct BlockShape {
    /// Valid extent per axis (1..=4); unused axes are 1.
    pub ext: [usize; 3],
    /// Dimensionality (1..=3).
    pub dims: usize,
}

impl BlockShape {
    /// Number of valid (non-padding) values.
    pub fn valid(&self) -> usize {
        self.ext[..self.dims].iter().product()
    }
}

/// Gathers one block from `data` (row-major, x fastest, logical grid `grid`),
/// padding partial blocks by edge replication. `origin` is the block's lower
/// corner in grid coordinates. Returns the shape actually covered.
pub fn gather(
    data: &[f64],
    grid: [usize; 3],
    dims: usize,
    origin: [usize; 3],
    out: &mut [f64],
) -> BlockShape {
    let mut ext = [1usize; 3];
    for d in 0..dims {
        ext[d] = SIDE.min(grid[d] - origin[d]);
    }
    let n = SIDE.pow(dims as u32);
    debug_assert_eq!(out.len(), n);
    for (slot, out_v) in out.iter_mut().enumerate().take(n) {
        let (bx, by, bz) = (slot % SIDE, (slot / SIDE) % SIDE, slot / (SIDE * SIDE));
        // Clamp padding slots onto the nearest valid sample (edge replication).
        let cx = origin[0] + bx.min(ext[0] - 1);
        let cy = if dims >= 2 {
            origin[1] + by.min(ext[1] - 1)
        } else {
            0
        };
        let cz = if dims >= 3 {
            origin[2] + bz.min(ext[2] - 1)
        } else {
            0
        };
        let idx = match dims {
            1 => cx,
            2 => cy * grid[0] + cx,
            _ => (cz * grid[1] + cy) * grid[0] + cx,
        };
        *out_v = data[idx];
    }
    BlockShape { ext, dims }
}

/// Scatters the valid region of a decoded block back into `data`.
pub fn scatter(
    block: &[f64],
    shape: BlockShape,
    grid: [usize; 3],
    origin: [usize; 3],
    data: &mut [f64],
) {
    let dims = shape.dims;
    for bz in 0..shape.ext[2].max(1) {
        for by in 0..shape.ext[1].max(1) {
            for bx in 0..shape.ext[0] {
                let slot = (bz * SIDE + by) * SIDE + bx;
                let idx = match dims {
                    1 => origin[0] + bx,
                    2 => (origin[1] + by) * grid[0] + origin[0] + bx,
                    _ => ((origin[2] + bz) * grid[1] + origin[1] + by) * grid[0] + origin[0] + bx,
                };
                data[idx] = block[slot];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frexp_matches_definition() {
        for x in [
            1.0,
            0.5,
            2.0,
            3.75,
            1e-300,
            1e300,
            5e-324,
            f64::MIN_POSITIVE,
        ] {
            let (f, e) = frexp(x);
            assert!((0.5..1.0).contains(&f), "x = {x}, f = {f}");
            assert_eq!(ldexp(f, e), x, "x = {x}");
        }
    }

    #[test]
    fn ldexp_handles_extreme_exponents() {
        assert_eq!(ldexp(1.0, 10), 1024.0);
        assert_eq!(ldexp(5e-324, 1074), 1.0);
        assert_eq!(ldexp(1.0, -1074), 5e-324);
        assert_eq!(ldexp(0.0, 2000), 0.0);
    }

    #[test]
    fn cast_survives_subnormal_blocks() {
        let vals = [5e-324, 0.0, -5e-324, 1e-320];
        let emax = block_exponent(&vals).unwrap();
        let mut ints = [0i64; 4];
        fwd_cast(&vals, emax, &mut ints);
        assert!(ints.iter().all(|&i| i.unsigned_abs() < 1 << 62));
        let mut back = [0f64; 4];
        inv_cast(&ints, emax, &mut back);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= ldexp(1.0, emax - 60));
        }
    }

    #[test]
    fn block_exponent_bounds_values() {
        let vals = [0.3, -0.9, 0.1, 0.0];
        let e = block_exponent(&vals).unwrap();
        assert_eq!(e, 0); // max 0.9 in [0.5, 1)
        assert!(block_exponent(&[0.0; 4]).is_none());
        assert_eq!(block_exponent(&[2.0, 0.0, 0.0, 0.0]).unwrap(), 2);
    }

    #[test]
    fn cast_round_trip_error_is_tiny() {
        let vals = [0.123456789, -0.987654321, 0.5, -0.25];
        let emax = block_exponent(&vals).unwrap();
        let mut ints = [0i64; 4];
        fwd_cast(&vals, emax, &mut ints);
        assert!(ints.iter().all(|&i| i.unsigned_abs() < 1 << 62));
        let mut back = [0f64; 4];
        inv_cast(&ints, emax, &mut back);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= 2f64.powi(emax - 62));
        }
    }

    #[test]
    fn perm_is_a_permutation_ordered_by_degree() {
        for dims in 1..=3usize {
            let p = perm(dims);
            let n = SIDE.pow(dims as u32);
            let mut seen = vec![false; n];
            let mut prev_deg = 0;
            for &idx in p {
                assert!(!seen[idx]);
                seen[idx] = true;
                let deg = idx % 4 + (idx / 4) % 4 + idx / 16;
                assert!(deg >= prev_deg, "dims={dims}: sequency not monotone");
                prev_deg = deg;
            }
            assert!(seen.iter().all(|&s| s));
            assert_eq!(p[0], 0, "DC coefficient first");
        }
    }

    #[test]
    fn gather_scatter_round_trip_full_blocks() {
        let grid = [8usize, 8, 1];
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut out = vec![0.0; 64];
        let mut block = [0.0; 16];
        for by in 0..2 {
            for bx in 0..2 {
                let origin = [bx * 4, by * 4, 0];
                let shape = gather(&data, grid, 2, origin, &mut block);
                assert_eq!(shape.valid(), 16);
                scatter(&block, shape, grid, origin, &mut out);
            }
        }
        assert_eq!(out, data);
    }

    #[test]
    fn partial_block_pads_by_replication() {
        let grid = [6usize, 1, 1];
        let data: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut block = [0.0; 4];
        let shape = gather(&data, grid, 1, [4, 0, 0], &mut block);
        assert_eq!(shape.valid(), 2);
        assert_eq!(block, [4.0, 5.0, 5.0, 5.0]);

        // Scatter writes only the valid region.
        let mut out = vec![-1.0; 6];
        scatter(&[9.0, 8.0, 7.0, 6.0], shape, grid, [4, 0, 0], &mut out);
        assert_eq!(out, vec![-1.0, -1.0, -1.0, -1.0, 9.0, 8.0]);
    }

    #[test]
    fn gather_scatter_3d_partial() {
        let grid = [5usize, 6, 7];
        let n = grid[0] * grid[1] * grid[2];
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut out = vec![0.0; n];
        let mut block = [0.0; 64];
        for bz in 0..grid[2].div_ceil(4) {
            for by in 0..grid[1].div_ceil(4) {
                for bx in 0..grid[0].div_ceil(4) {
                    let origin = [bx * 4, by * 4, bz * 4];
                    let shape = gather(&data, grid, 3, origin, &mut block);
                    scatter(&block, shape, grid, origin, &mut out);
                }
            }
        }
        assert_eq!(out, data);
    }
}
