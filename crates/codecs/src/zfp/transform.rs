//! The lifted decorrelating transform used by the ZFP-style codec.
//!
//! Works on 4-vectors of `i64` coefficients in place; exactly invertible
//! (integer lifting), with a small non-orthogonal gain that the precision
//! formula's `2*(dims+1)` guard term accounts for. Arithmetic is wrapping to
//! mirror the reference C semantics; inputs produced by the block-float cast
//! are bounded by `2^62`, which keeps every intermediate in range anyway.

/// Forward transform of one 4-vector at stride `s` starting at `p[0]`.
///
/// Matrix (up to the 1/16 scale):
/// ```text
///        (  4  4  4  4 )
/// 1/16 * (  5  1 -1 -5 )
///        ( -4  4  4 -4 )
///        ( -2  6 -6  2 )
/// ```
#[inline]
pub fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let mut x = p[base];
    let mut y = p[base + s];
    let mut z = p[base + 2 * s];
    let mut w = p[base + 3 * s];

    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);

    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse of [`fwd_lift`].
#[inline]
pub fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let mut x = p[base];
    let mut y = p[base + s];
    let mut z = p[base + 2 * s];
    let mut w = p[base + 3 * s];

    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w <<= 1;
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z <<= 1;
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(w);

    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Forward transform of a full block (`4^dims` coefficients, x fastest).
pub fn fwd_xform(block: &mut [i64], dims: usize) {
    match dims {
        1 => fwd_lift(block, 0, 1),
        2 => {
            for y in 0..4 {
                fwd_lift(block, 4 * y, 1);
            }
            for x in 0..4 {
                fwd_lift(block, x, 4);
            }
        }
        3 => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift(block, 16 * z + 4 * y, 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, 16 * z + x, 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, 4 * y + x, 16);
                }
            }
        }
        _ => unreachable!("dims must be 1..=3"),
    }
}

/// Inverse of [`fwd_xform`] (stages applied in reverse order).
pub fn inv_xform(block: &mut [i64], dims: usize) {
    match dims {
        1 => inv_lift(block, 0, 1),
        2 => {
            for x in 0..4 {
                inv_lift(block, x, 4);
            }
            for y in 0..4 {
                inv_lift(block, 4 * y, 1);
            }
        }
        3 => {
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift(block, 4 * y + x, 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift(block, 16 * z + x, 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift(block, 16 * z + 4 * y, 1);
                }
            }
        }
        _ => unreachable!("dims must be 1..=3"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: &mut u64) -> i64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Bounded to 2^60 so the lifting head-room assumptions hold.
        (*seed >> 4) as i64 - (1i64 << 59)
    }

    // The lifting pair is *near*-invertible: each `>>= 1` in the forward
    // direction drops one low bit by design (it is what keeps the dynamic
    // range bounded), so round-trips are exact only up to a few integer ULPs.
    // The precision formula's guard bits absorb this. These tests pin the
    // worst-case reconstruction error per dimension.

    #[test]
    fn lift_round_trips_1d_within_ulps() {
        let mut seed = 7;
        for _ in 0..1000 {
            let orig: Vec<i64> = (0..4).map(|_| lcg(&mut seed)).collect();
            let mut v = orig.clone();
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            for (a, b) in orig.iter().zip(&v) {
                assert!((a - b).abs() <= 4, "{orig:?} -> {v:?}");
            }
        }
    }

    #[test]
    fn xform_round_trips_all_dims_within_ulps() {
        let mut seed = 13;
        for dims in 1..=3usize {
            let n = 4usize.pow(dims as u32);
            // Error compounds per dimension; 4 ULPs per lift stage.
            let tol = 4i64 * dims as i64 * dims as i64;
            for _ in 0..200 {
                let orig: Vec<i64> = (0..n).map(|_| lcg(&mut seed)).collect();
                let mut v = orig.clone();
                fwd_xform(&mut v, dims);
                inv_xform(&mut v, dims);
                for (a, b) in orig.iter().zip(&v) {
                    assert!((a - b).abs() <= tol, "dims = {dims}");
                }
            }
        }
    }

    #[test]
    fn zero_block_round_trips_exactly() {
        for dims in 1..=3usize {
            let n = 4usize.pow(dims as u32);
            let mut v = vec![0i64; n];
            fwd_xform(&mut v, dims);
            assert!(v.iter().all(|&x| x == 0));
            inv_xform(&mut v, dims);
            assert!(v.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn constant_block_concentrates_energy() {
        // DC block: all energy lands in coefficient 0.
        let mut v = [1 << 40; 4];
        fwd_lift(&mut v, 0, 1);
        assert_eq!(v[0], 1 << 40);
        assert_eq!(&v[1..], &[0, 0, 0]);
    }

    #[test]
    fn linear_ramp_has_small_high_coefficients() {
        let mut v: Vec<i64> = (0..4).map(|i| (i as i64) << 40).collect();
        fwd_lift(&mut v, 0, 1);
        // High-frequency coefficients must be much smaller than the DC term.
        assert!(v[0].abs() > v[2].abs());
        assert!(v[0].abs() > v[3].abs());
    }

    #[test]
    fn strided_access_matches_contiguous() {
        let mut seed = 99;
        let vals: Vec<i64> = (0..4).map(|_| lcg(&mut seed)).collect();
        let mut contiguous = vals.clone();
        fwd_lift(&mut contiguous, 0, 1);
        // Place the same 4 values at stride 4 in a 16-slot buffer.
        let mut strided = vec![0i64; 16];
        for (i, &v) in vals.iter().enumerate() {
            strided[i * 4] = v;
        }
        fwd_lift(&mut strided, 0, 4);
        for i in 0..4 {
            assert_eq!(strided[i * 4], contiguous[i]);
        }
    }
}
