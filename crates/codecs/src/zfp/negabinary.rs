//! Two's-complement ↔ negabinary conversion.
//!
//! The embedded bit-plane coder needs a sign-free representation in which
//! truncating low-order bits shrinks the magnitude of the error regardless of
//! sign; negabinary (base −2) has that property and is what ZFP uses.

const NBMASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;

/// Two's complement → negabinary.
#[inline]
pub fn int_to_uint(x: i64) -> u64 {
    ((x as u64).wrapping_add(NBMASK)) ^ NBMASK
}

/// Negabinary → two's complement (inverse of [`int_to_uint`]).
#[inline]
pub fn uint_to_int(u: u64) -> i64 {
    ((u ^ NBMASK).wrapping_sub(NBMASK)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(int_to_uint(0), 0);
        // Negabinary of 1 is 1; of -1 is 0b11 (= -2 + 1... base -2: 1*(-2)^1 + 1 = -1).
        assert_eq!(int_to_uint(1), 1);
        assert_eq!(int_to_uint(-1), 3);
        assert_eq!(int_to_uint(-2), 2);
        assert_eq!(int_to_uint(2), 6);
    }

    #[test]
    fn round_trip_edge_cases() {
        for x in [
            0i64,
            1,
            -1,
            i64::MAX,
            i64::MIN,
            1 << 62,
            -(1 << 62),
            12345678901234,
            -98765432109876,
        ] {
            assert_eq!(uint_to_int(int_to_uint(x)), x);
        }
    }

    #[test]
    fn round_trip_pseudorandom() {
        let mut seed = 42u64;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = seed as i64;
            assert_eq!(uint_to_int(int_to_uint(x)), x);
        }
    }

    #[test]
    fn small_magnitudes_have_few_bits() {
        // Truncation-friendliness: small |x| -> high negabinary bits are 0.
        for x in -100i64..=100 {
            let u = int_to_uint(x);
            assert!(u < 1 << 9, "x = {x}, u = {u:#x}");
        }
    }
}
