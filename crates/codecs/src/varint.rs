//! LEB128 varint helpers for compact stream headers.

use crate::CodecError;

/// Appends `value` as a LEB128 varint.
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint starting at `*pos`, advancing `*pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or(CodecError::Corrupt("varint past end"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Appends an `f64` as little-endian bits.
pub fn write_f64(buf: &mut Vec<u8>, value: f64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Reads an `f64` written by [`write_f64`].
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, CodecError> {
    let bytes = buf
        .get(*pos..*pos + 8)
        .ok_or(CodecError::Corrupt("f64 past end"))?;
    *pos += 8;
    Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// Appends an `f32` as little-endian bits.
pub fn write_f32(buf: &mut Vec<u8>, value: f32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Reads an `f32` written by [`write_f32`].
pub fn read_f32(buf: &[u8], pos: &mut usize) -> Result<f32, CodecError> {
    let bytes = buf
        .get(*pos..*pos + 4)
        .ok_or(CodecError::Corrupt("f32 past end"))?;
    *pos += 4;
    Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

/// Reads exactly `n` bytes.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let bytes = buf
        .get(*pos..*pos + n)
        .ok_or(CodecError::Corrupt("bytes past end"))?;
    *pos += n;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX, u64::MAX - 1];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn varint_overflow_is_an_error() {
        // 11 continuation bytes encode more than 64 bits.
        let buf = vec![0xff; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn f64_round_trip() {
        let mut buf = Vec::new();
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NEG_INFINITY] {
            write_f64(&mut buf, v);
        }
        let mut pos = 0;
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NEG_INFINITY] {
            assert_eq!(read_f64(&buf, &mut pos).unwrap(), v);
        }
    }
}
