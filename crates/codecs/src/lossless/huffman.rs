//! Canonical Huffman coding over `u16` symbols.
//!
//! This is the entropy coder behind the SZ-style codec: quantization codes
//! concentrate on a few symbols when the stream is smooth (exactly the effect
//! zMesh's reordering amplifies), so Huffman converts smoothness into ratio.
//!
//! The table is transmitted as canonical code lengths only. Code lengths are
//! limited to [`MAX_CODE_LEN`] by iterative frequency flattening, which keeps
//! the decoder's canonical tables small.

use crate::{varint, CodecError};
use zmesh_bitstream::{BitReader, BitWriter};

/// Upper limit on code length; 32 suffices for any realistic distribution.
pub const MAX_CODE_LEN: u32 = 32;

/// Computes Huffman code lengths for `freqs` (indexed by symbol), limited to
/// [`MAX_CODE_LEN`]. Symbols with zero frequency get length 0.
fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut freqs = freqs.to_vec();
    loop {
        let lens = unrestricted_code_lengths(&freqs);
        if lens.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lens;
        }
        // Flatten the distribution and retry; converges because repeated
        // halving drives all nonzero frequencies toward 1.
        for f in freqs.iter_mut().filter(|f| **f > 0) {
            *f = (*f / 2).max(1);
        }
    }
}

/// Standard two-queue/heap Huffman construction returning code lengths.
fn unrestricted_code_lengths(freqs: &[u64]) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let present: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    let mut lens = vec![0u32; freqs.len()];
    match present.len() {
        0 => return lens,
        1 => {
            // A single symbol still needs one bit on the wire.
            lens[present[0]] = 1;
            return lens;
        }
        _ => {}
    }

    // Nodes: leaves are (freq, id<n), internal nodes get ids >= n.
    let n = freqs.len();
    let mut parent = vec![usize::MAX; n + present.len()];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        present.iter().map(|&s| Reverse((freqs[s], s))).collect();
    let mut next_id = n;
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("heap len > 1");
        let Reverse((fb, b)) = heap.pop().expect("heap len > 1");
        parent[a] = next_id;
        parent[b] = next_id;
        heap.push(Reverse((fa + fb, next_id)));
        next_id += 1;
    }
    let root = heap.pop().expect("root").0 .1;
    for &s in &present {
        let mut depth = 0;
        let mut node = s;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        lens[s] = depth;
    }
    lens
}

/// Canonical code assignment: codes ordered by (length, symbol).
/// Returns `(code, len)` per symbol; MSB-first code values.
fn canonical_codes(lens: &[u32]) -> Vec<(u32, u32)> {
    let mut order: Vec<usize> = (0..lens.len()).filter(|&s| lens[s] > 0).collect();
    order.sort_by_key(|&s| (lens[s], s));
    let mut codes = vec![(0u32, 0u32); lens.len()];
    let mut code = 0u32;
    let mut prev_len = 0u32;
    for &s in &order {
        code <<= lens[s] - prev_len;
        codes[s] = (code, lens[s]);
        prev_len = lens[s];
        code += 1;
    }
    codes
}

/// Reverses the low `len` bits of `code` so that writing LSB-first emits the
/// canonical code MSB-first.
#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// Encodes `symbols` with a canonical Huffman code; self-describing buffer.
pub fn encode(symbols: &[u16]) -> Vec<u8> {
    let max_sym = symbols.iter().copied().max().map_or(0, usize::from);
    let mut freqs = vec![0u64; max_sym + 1];
    for &s in symbols {
        freqs[usize::from(s)] += 1;
    }
    let lens = code_lengths(&freqs);
    let codes = canonical_codes(&lens);

    let mut out = Vec::new();
    varint::write_u64(&mut out, symbols.len() as u64);
    // Table: count of present symbols, then (symbol, len) pairs with
    // delta-coded symbols (present symbols are emitted in increasing order).
    let present: Vec<usize> = (0..lens.len()).filter(|&s| lens[s] > 0).collect();
    varint::write_u64(&mut out, present.len() as u64);
    let mut prev = 0u64;
    for &s in &present {
        varint::write_u64(&mut out, s as u64 - prev);
        out.push(lens[s] as u8);
        prev = s as u64;
    }

    let mut w = BitWriter::with_capacity(symbols.len() / 2);
    for &s in symbols {
        let (code, len) = codes[usize::from(s)];
        w.write_bits(u64::from(reverse_bits(code, len)), len);
    }
    let payload = w.into_bytes();
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decoder tables for a canonical code.
struct CanonicalDecoder {
    /// `first_code[len]`: canonical code value of the first code of `len` bits.
    first_code: Vec<u32>,
    /// `first_index[len]`: index into `sorted_symbols` of that first code.
    first_index: Vec<u32>,
    /// `count[len]`: number of codes with this length.
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    sorted_symbols: Vec<u16>,
    max_len: u32,
}

impl CanonicalDecoder {
    fn new(lens_by_symbol: &[(u16, u32)]) -> Result<Self, CodecError> {
        let max_len = lens_by_symbol.iter().map(|&(_, l)| l).max().unwrap_or(0);
        if max_len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("huffman code length too large"));
        }
        let mut count = vec![0u32; (max_len + 2) as usize];
        for &(_, l) in lens_by_symbol {
            count[l as usize] += 1;
        }
        let mut sorted: Vec<(u16, u32)> = lens_by_symbol.to_vec();
        sorted.sort_by_key(|&(s, l)| (l, s));
        let sorted_symbols: Vec<u16> = sorted.iter().map(|&(s, _)| s).collect();

        let mut first_code = vec![0u32; (max_len + 2) as usize];
        let mut first_index = vec![0u32; (max_len + 2) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max_len {
            code <<= 1;
            first_code[len as usize] = code;
            first_index[len as usize] = index;
            let c = count[len as usize];
            // Kraft check: codes of this length must fit.
            if u64::from(code) + u64::from(c) > (1u64 << len) {
                return Err(CodecError::Corrupt("huffman table violates Kraft"));
            }
            code += c;
            index += c;
        }
        Ok(Self {
            first_code,
            first_index,
            count,
            sorted_symbols,
            max_len,
        })
    }

    fn decode_one(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1)
                | (r.read_bit()
                    .map_err(|_| CodecError::Corrupt("huffman underrun"))?
                    as u32);
            let c = self.count[len as usize];
            if c > 0 {
                let first = self.first_code[len as usize];
                if code < first + c {
                    if code < first {
                        return Err(CodecError::Corrupt("huffman invalid code"));
                    }
                    let idx = self.first_index[len as usize] + (code - first);
                    return Ok(self.sorted_symbols[idx as usize]);
                }
            }
        }
        Err(CodecError::Corrupt("huffman code exceeds max length"))
    }
}

/// Decodes a buffer produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<u16>, CodecError> {
    let mut pos = 0;
    let n_symbols = varint::read_u64(bytes, &mut pos)? as usize;
    let n_present = varint::read_u64(bytes, &mut pos)? as usize;
    if n_symbols > 0 && n_present == 0 {
        return Err(CodecError::Corrupt("huffman empty table"));
    }
    let mut lens_by_symbol = Vec::with_capacity(n_present);
    let mut sym = 0u64;
    for i in 0..n_present {
        let delta = varint::read_u64(bytes, &mut pos)?;
        sym = if i == 0 { delta } else { sym + delta };
        if sym > u64::from(u16::MAX) {
            return Err(CodecError::Corrupt("huffman symbol out of range"));
        }
        let len = *bytes
            .get(pos)
            .ok_or(CodecError::Corrupt("huffman table past end"))?;
        pos += 1;
        if len == 0 {
            return Err(CodecError::Corrupt("huffman zero code length"));
        }
        lens_by_symbol.push((sym as u16, u32::from(len)));
    }
    let payload_len = varint::read_u64(bytes, &mut pos)? as usize;
    let payload = varint::read_bytes(bytes, &mut pos, payload_len)?;

    if n_symbols == 0 {
        return Ok(Vec::new());
    }
    let decoder = CanonicalDecoder::new(&lens_by_symbol)?;
    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        out.push(decoder.decode_one(&mut r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u16>::new());
    }

    #[test]
    fn single_symbol_round_trip() {
        let symbols = vec![7u16; 100];
        let enc = encode(&symbols);
        assert_eq!(decode(&enc).unwrap(), symbols);
        // 100 copies of one symbol should cost ~1 bit each plus a tiny table.
        assert!(enc.len() < 30, "len = {}", enc.len());
    }

    #[test]
    fn skewed_distribution_compresses() {
        let mut symbols = vec![0u16; 10_000];
        for (i, s) in symbols.iter_mut().enumerate() {
            if i % 100 == 0 {
                *s = (i % 7) as u16 + 1;
            }
        }
        let enc = encode(&symbols);
        assert_eq!(decode(&enc).unwrap(), symbols);
        assert!(enc.len() < 10_000 / 4, "len = {}", enc.len());
    }

    #[test]
    fn uniform_distribution_round_trips() {
        let symbols: Vec<u16> = (0..4096u32).map(|i| (i % 256) as u16).collect();
        assert_eq!(decode(&encode(&symbols)).unwrap(), symbols);
    }

    #[test]
    fn wide_alphabet_round_trips() {
        let symbols: Vec<u16> = (0..u16::MAX).step_by(7).collect();
        assert_eq!(decode(&encode(&symbols)).unwrap(), symbols);
    }

    #[test]
    fn code_lengths_are_kraft_valid() {
        let freqs: Vec<u64> = (1..=40).map(|i| 1u64 << (i % 30)).collect();
        let lens = code_lengths(&freqs);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft = {kraft}");
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let symbols: Vec<u16> = (0..100).map(|i| (i % 5) as u16).collect();
        let enc = encode(&symbols);
        for cut in [enc.len() - 1, enc.len() / 2, 3] {
            assert!(decode(&enc[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn two_symbols_cost_one_bit_each() {
        let symbols: Vec<u16> = (0..800).map(|i| (i & 1) as u16).collect();
        let enc = encode(&symbols);
        // 800 bits = 100 bytes payload + small header.
        assert!(enc.len() < 120, "len = {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), symbols);
    }
}
