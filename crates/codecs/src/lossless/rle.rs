//! PackBits-style run-length encoding.
//!
//! Control byte `c`:
//! * `0..=127` — literal run: the next `c + 1` bytes are copied verbatim;
//! * `129..=255` — repeat run: the next byte repeats `257 - c` times
//!   (i.e. 2..=128 repetitions);
//! * `128` — unused (reserved), treated as corrupt input.

use crate::CodecError;

/// Compresses `data`, appending to `out`.
pub fn compress_into(data: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting at i.
        let b = data[i];
        let mut run = 1;
        while run < 128 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 2 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal run: scan forward until a 2+-byte repeat begins or 128 max.
        let start = i;
        i += 1;
        while i < data.len() && i - start < 128 {
            if i + 1 < data.len() && data[i] == data[i + 1] {
                break;
            }
            i += 1;
        }
        out.push((i - start - 1) as u8);
        out.extend_from_slice(&data[start..i]);
    }
}

/// Decompresses a PackBits body; `expected_len` is the stored original size.
pub fn decompress(body: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0;
    while i < body.len() {
        let c = body[i];
        i += 1;
        if c < 128 {
            let n = usize::from(c) + 1;
            let lit = body
                .get(i..i + n)
                .ok_or(CodecError::Corrupt("rle literal past end"))?;
            out.extend_from_slice(lit);
            i += n;
        } else if c == 128 {
            return Err(CodecError::Corrupt("rle reserved control byte"));
        } else {
            let n = 257 - usize::from(c);
            let b = *body
                .get(i)
                .ok_or(CodecError::Corrupt("rle repeat past end"))?;
            i += 1;
            out.resize(out.len() + n, b);
        }
        if out.len() > expected_len {
            return Err(CodecError::Corrupt("rle output exceeds stored length"));
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::Corrupt("rle output shorter than stored length"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let mut c = Vec::new();
        compress_into(data, &mut c);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn basic_round_trips() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"aaaaaaa");
        round_trip(b"abcdef");
        round_trip(b"aabbaabbccdd");
        round_trip(&[0u8; 1000]);
        round_trip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn long_runs_are_split_at_128() {
        let data = vec![9u8; 300];
        let mut c = Vec::new();
        compress_into(&data, &mut c);
        // 300 = 128 + 128 + 44 -> 3 control+byte pairs.
        assert_eq!(c.len(), 6);
        assert_eq!(decompress(&c, 300).unwrap(), data);
    }

    #[test]
    fn incompressible_data_expands_bounded() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut c = Vec::new();
        compress_into(&data, &mut c);
        // Worst case is 1 control byte per 128 literals.
        assert!(c.len() <= data.len() + data.len() / 128 + 2);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[5, 1, 2], 6).is_err()); // literal past end
        assert!(decompress(&[200], 10).is_err()); // repeat byte missing
        assert!(decompress(&[128, 0], 1).is_err()); // reserved control
        assert!(decompress(&[0, 7], 5).is_err()); // shorter than stored
    }
}
