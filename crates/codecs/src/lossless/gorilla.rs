//! Gorilla-style XOR compression for `f64` streams (Pelkonen et al.,
//! *Gorilla: A Fast, Scalable, In-Memory Time Series Database*, VLDB 2015).
//!
//! Each value is XORed with its predecessor; the nonzero window of the XOR
//! is encoded with a reusable leading-zeros/length header. Smooth streams
//! have small XOR windows, so — like the lossy codecs — this coder benefits
//! directly from zMesh's reordering, which the evaluation's lossless
//! experiment (T12) measures.
//!
//! Wire format per value (after the first, which is stored raw):
//! * `0` — identical to the previous value;
//! * `10` — XOR fits the previous (leading, length) window: emit `length`
//!   significant bits;
//! * `11` — new window: 6 bits leading-zero count, 6 bits `length - 1`,
//!   then `length` significant bits.

use crate::{varint, CodecError};
use zmesh_bitstream::{BitReader, BitWriter};

/// Compresses a stream losslessly. Self-describing buffer.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 16);
    varint::write_u64(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    let mut w = BitWriter::with_capacity(data.len() * 5);
    w.write_bits(data[0].to_bits(), 64);
    let mut prev = data[0].to_bits();
    let mut lead: u32 = u32::MAX; // no window yet
    let mut len: u32 = 0;
    for &v in &data[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        let l = xor.leading_zeros().min(63);
        let t = xor.trailing_zeros();
        let sig = 64 - l - t;
        // Reuse the previous window when the new XOR's nonzero bits fit
        // inside it: at least as many leading zeros, and at least as many
        // trailing zeros as the window's.
        if lead != u32::MAX && l >= lead && t >= 64 - lead - len {
            w.write_bit(false);
            w.write_bits(xor >> (64 - lead - len), len);
        } else {
            w.write_bit(true);
            lead = l;
            len = sig;
            w.write_bits(u64::from(lead), 6);
            w.write_bits(u64::from(len - 1), 6);
            w.write_bits(xor >> t, len);
        }
    }
    let payload = w.into_bytes();
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    let mut pos = 0;
    let n = varint::read_u64(bytes, &mut pos)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let payload_len = varint::read_u64(bytes, &mut pos)? as usize;
    let payload = varint::read_bytes(bytes, &mut pos, payload_len)?;
    let mut r = BitReader::new(payload);
    let err = |_| CodecError::Corrupt("gorilla stream underrun");
    let mut prev = r.read_bits(64).map_err(err)?;
    let mut out = Vec::with_capacity(n);
    out.push(f64::from_bits(prev));
    let mut lead: u32 = 0;
    let mut len: u32 = 0;
    for _ in 1..n {
        if !r.read_bit().map_err(err)? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit().map_err(err)? {
            lead = r.read_bits(6).map_err(err)? as u32;
            len = r.read_bits(6).map_err(err)? as u32 + 1;
        } else if len == 0 {
            return Err(CodecError::Corrupt(
                "gorilla window reuse before definition",
            ));
        }
        let sig = r.read_bits(len).map_err(err)?;
        let xor = sig << (64 - lead - len);
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64]) -> usize {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exactness violated");
        }
        c.len()
    }

    #[test]
    fn basic_round_trips() {
        round_trip(&[]);
        round_trip(&[1.0]);
        round_trip(&[0.0; 100]);
        round_trip(&[1.0, 1.0, 1.0, 2.0, 2.0]);
        round_trip(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 5e-324]);
    }

    #[test]
    fn nan_payloads_are_preserved_bitwise() {
        let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
        let c = compress(&[1.0, weird, 1.0]);
        let d = decompress(&c).unwrap();
        assert_eq!(d[1].to_bits(), 0x7ff8_dead_beef_cafe);
    }

    #[test]
    fn smooth_streams_compress() {
        let data: Vec<f64> = (0..10_000).map(|i| 1000.0 + i as f64).collect();
        let size = round_trip(&data);
        assert!(size < data.len() * 8 / 2, "size = {size}");
    }

    #[test]
    fn constant_streams_are_tiny() {
        let data = vec![std::f64::consts::PI; 10_000];
        let size = round_trip(&data);
        assert!(size < 1400, "size = {size}"); // ~1 bit per repeat
    }

    #[test]
    fn random_streams_round_trip_with_bounded_expansion() {
        let mut seed = 7u64;
        let data: Vec<f64> = (0..5000)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                f64::from_bits(seed | 0x3ff0_0000_0000_0000) // valid exponent
            })
            .collect();
        let size = round_trip(&data);
        // Worst case ~ 64 + 14 bits per value.
        assert!(size < data.len() * 10 + 64);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let c = compress(&data);
        for cut in [1, 5, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn smoother_stream_compresses_better() {
        let smooth: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.001).sin()).collect();
        let mut shuffled = smooth.clone();
        // Deterministic shuffle.
        let mut s = 99u64;
        for i in (1..shuffled.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let a = round_trip(&smooth);
        let b = round_trip(&shuffled);
        assert!(a < b, "smooth {a} !< shuffled {b}");
    }
}
