//! Adaptive binary range coder with bit-tree symbol models (the LZMA
//! construction).
//!
//! An alternative entropy stage for the SZ-style codec: where canonical
//! Huffman needs a table pass and loses up to half a bit per symbol, the
//! range coder adapts online and codes fractional bits — at lower
//! throughput. The A14 ablation quantifies the trade on real streams.
//!
//! * probabilities are 11-bit (`0..2048`), adapted with shift 5;
//! * 16-bit symbols are coded MSB-first through a bit tree, one adaptive
//!   context per tree node.

use crate::CodecError;

const PROB_BITS: u32 = 11;
const PROB_INIT: u16 = 1 << (PROB_BITS - 1);
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// Binary range encoder (carry-correct, LZMA style).
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Encodes one bit under the adaptive probability `prob` (of the bit
    /// being 0), updating the model.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut u16, bit: bool) {
        let bound = (self.range >> PROB_BITS) * u32::from(*prob);
        if !bit {
            self.range = bound;
            *prob += (((1 << PROB_BITS) - u32::from(*prob)) >> MOVE_BITS) as u16;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
            *prob -= (u32::from(*prob) >> MOVE_BITS) as u16;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xff00_0000 || self.low > 0xffff_ffff {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    first = false;
                    self.cache.wrapping_add(carry)
                } else {
                    0xffu8.wrapping_add(carry)
                };
                self.out.push(byte);
                self.cache_size -= 1;
            }
            self.cache = ((self.low >> 24) & 0xff) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xffff_ffff;
    }

    /// Flushes and returns the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Binary range decoder.
pub struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Wraps coded bytes (skips the initial pad byte).
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < 5 {
            return Err(CodecError::Corrupt("range-coded stream too short"));
        }
        let mut d = Self {
            range: u32::MAX,
            code: 0,
            data,
            pos: 1, // first byte is always 0 (cache pad)
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros, mirroring the encoder's flush.
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit, updating the model like the encoder did.
    #[inline]
    pub fn decode_bit(&mut self, prob: &mut u16) -> bool {
        let bound = (self.range >> PROB_BITS) * u32::from(*prob);
        let bit = if self.code < bound {
            self.range = bound;
            *prob += (((1 << PROB_BITS) - u32::from(*prob)) >> MOVE_BITS) as u16;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= (u32::from(*prob) >> MOVE_BITS) as u16;
            true
        };
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
        bit
    }
}

/// Bit-tree model for 16-bit symbols: one adaptive context per node.
pub struct SymbolModel {
    probs: Vec<u16>,
}

impl Default for SymbolModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolModel {
    /// Fresh model (all contexts at ½).
    pub fn new() -> Self {
        Self {
            probs: vec![PROB_INIT; 1 << 16],
        }
    }

    /// Encodes a symbol MSB-first down the tree.
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: u16) {
        let mut m = 1usize;
        for i in (0..16).rev() {
            let bit = (symbol >> i) & 1 != 0;
            enc.encode_bit(&mut self.probs[m], bit);
            m = (m << 1) | usize::from(bit);
        }
    }

    /// Decodes a symbol.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u16 {
        let mut m = 1usize;
        for _ in 0..16 {
            let bit = dec.decode_bit(&mut self.probs[m]);
            m = (m << 1) | usize::from(bit);
        }
        (m & 0xffff) as u16
    }
}

/// Encodes a symbol stream; self-describing buffer.
pub fn encode(symbols: &[u16]) -> Vec<u8> {
    let mut out = Vec::new();
    crate::varint::write_u64(&mut out, symbols.len() as u64);
    if symbols.is_empty() {
        return out;
    }
    let mut enc = RangeEncoder::new();
    let mut model = SymbolModel::new();
    for &s in symbols {
        model.encode(&mut enc, s);
    }
    let body = enc.finish();
    crate::varint::write_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// Decodes a buffer produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<u16>, CodecError> {
    let mut pos = 0;
    let n = crate::varint::read_u64(bytes, &mut pos)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let blen = crate::varint::read_u64(bytes, &mut pos)? as usize;
    let body = crate::varint::read_bytes(bytes, &mut pos, blen)?;
    let mut dec = RangeDecoder::new(body)?;
    let mut model = SymbolModel::new();
    Ok((0..n).map(|_| model.decode(&mut dec)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u16]) -> usize {
        let enc = encode(symbols);
        assert_eq!(decode(&enc).unwrap(), symbols);
        enc.len()
    }

    #[test]
    fn basic_round_trips() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[u16::MAX]);
        round_trip(&[1, 2, 3, 4, 5]);
        round_trip(&vec![32768; 1000]);
        round_trip(&(0..=u16::MAX).step_by(101).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_streams_compress_hard() {
        // 99% one symbol: adaptive coding approaches the entropy (~0.08 bpc).
        let symbols: Vec<u16> = (0..20_000)
            .map(|i| if i % 100 == 0 { 7 } else { 32768 })
            .collect();
        let size = round_trip(&symbols);
        assert!(size < 20_000 / 4, "size = {size}");
    }

    #[test]
    fn beats_worst_case_on_random() {
        let mut s = 3u64;
        let symbols: Vec<u16> = (0..5000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 48) as u16
            })
            .collect();
        let size = round_trip(&symbols);
        // Random 16-bit symbols cost ~2 bytes each plus adaptation overhead.
        assert!(size < 5000 * 3, "size = {size}");
    }

    #[test]
    fn adaptive_model_tracks_drift() {
        // Symbol distribution shifts mid-stream; adaptation keeps both
        // halves cheap, unlike a single static table.
        let mut symbols = vec![100u16; 10_000];
        symbols.extend(vec![200u16; 10_000]);
        let size = round_trip(&symbols);
        assert!(size < 2000, "size = {size}");
    }

    #[test]
    fn truncated_streams_error_or_mismatch() {
        let symbols: Vec<u16> = (0..100).map(|i| i as u16 * 3).collect();
        let enc = encode(&symbols);
        // Cutting the body off is detected by the length framing.
        assert!(decode(&enc[..4]).is_err());
    }

    #[test]
    fn carry_propagation_is_correct() {
        // Streams engineered to produce long 0xff runs (carry stress):
        // alternate extreme symbols so low hovers near the carry boundary.
        let symbols: Vec<u16> = (0..4096)
            .map(|i| if i % 2 == 0 { 0xffff } else { 0x0000 })
            .collect();
        round_trip(&symbols);
        let symbols: Vec<u16> = (0..4096).map(|i| (i * 0x9e37) as u16).collect();
        round_trip(&symbols);
    }
}
