//! Lossless substrate: canonical Huffman, PackBits RLE, and LZSS.
//!
//! SZ's quantization codes are entropy-coded with [`huffman`]; the optional
//! byte-level back end (the role zlib/zstd play behind the real SZ) is
//! [`rle`] or [`lzss`], selectable via [`Backend`].

pub mod gorilla;
pub mod huffman;
pub mod lzss;
pub mod rangecoder;
pub mod rle;

use crate::{varint, CodecError};

/// Byte-level lossless back end applied to an already-entropy-coded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// No byte-level pass.
    #[default]
    None,
    /// PackBits run-length encoding — cheap, effective on long zero runs.
    Rle,
    /// LZSS with a 32 KiB window — slower, strongest of the three.
    Lzss,
}

impl Backend {
    /// Header tag.
    pub fn tag(&self) -> u8 {
        match self {
            Backend::None => 0,
            Backend::Rle => 1,
            Backend::Lzss => 2,
        }
    }

    /// Inverse of [`Backend::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Backend::None),
            1 => Some(Backend::Rle),
            2 => Some(Backend::Lzss),
            _ => None,
        }
    }

    /// Short label used in ablation output.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::None => "none",
            Backend::Rle => "rle",
            Backend::Lzss => "lzss",
        }
    }

    /// Compresses `data`, prefixing the uncompressed length.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        varint::write_u64(&mut out, data.len() as u64);
        match self {
            Backend::None => out.extend_from_slice(data),
            Backend::Rle => rle::compress_into(data, &mut out),
            Backend::Lzss => lzss::compress_into(data, &mut out),
        }
        out
    }

    /// Decompresses a buffer produced by [`Backend::compress`].
    pub fn decompress(&self, bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut pos = 0;
        let n = varint::read_u64(bytes, &mut pos)? as usize;
        let body = &bytes[pos..];
        match self {
            Backend::None => {
                if body.len() != n {
                    return Err(CodecError::Corrupt("stored length mismatch"));
                }
                Ok(body.to_vec())
            }
            Backend::Rle => rle::decompress(body, n),
            Backend::Lzss => lzss::decompress(body, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [Backend; 3] = [Backend::None, Backend::Rle, Backend::Lzss];

    #[test]
    fn all_backends_round_trip() {
        let inputs: Vec<Vec<u8>> = vec![
            vec![],
            vec![42],
            vec![0; 1000],
            (0..=255).collect(),
            b"abcabcabcabcabcabc".repeat(10),
        ];
        for b in BACKENDS {
            for input in &inputs {
                let c = b.compress(input);
                assert_eq!(&b.decompress(&c).unwrap(), input, "{b:?}");
            }
        }
    }

    #[test]
    fn tags_round_trip() {
        for b in BACKENDS {
            assert_eq!(Backend::from_tag(b.tag()), Some(b));
        }
        assert_eq!(Backend::from_tag(7), None);
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = vec![7u8; 4096];
        assert!(Backend::Rle.compress(&data).len() < 100);
        assert!(Backend::Lzss.compress(&data).len() < data.len() / 4);
    }
}
