//! LZSS with a 32 KiB sliding window and hash-chain matching.
//!
//! Token stream (bit-level, LSB-first via `zmesh-bitstream`):
//! * flag `0` — literal: 8 bits;
//! * flag `1` — match: 15-bit distance (1-based), 8-bit length − `MIN_MATCH`
//!   (lengths `MIN_MATCH..=MAX_MATCH`, i.e. 4..=259).

use crate::CodecError;
use zmesh_bitstream::{BitReader, BitWriter};

const WINDOW: usize = 1 << 15;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`, appending the bit-packed token stream to `out`.
pub fn compress_into(data: &[u8], out: &mut Vec<u8>) {
    let mut w = BitWriter::with_capacity(data.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 64 {
                let max_len = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            w.write_bit(true);
            w.write_bits((best_dist - 1) as u64, 15);
            w.write_bits((best_len - MIN_MATCH) as u64, 8);
            // Insert all covered positions into the hash chains. The loop
            // variable is a stream position, not an index into one slice,
            // so a range loop is the clear form here.
            #[allow(clippy::needless_range_loop)]
            for j in i..(i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            w.write_bit(false);
            w.write_bits(u64::from(data[i]), 8);
            if i + MIN_MATCH <= data.len() {
                let h = hash4(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out.extend_from_slice(&w.into_bytes());
}

/// Decompresses an LZSS body; `expected_len` is the stored original size.
pub fn decompress(body: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut r = BitReader::new(body);
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    while out.len() < expected_len {
        let is_match = r
            .read_bit()
            .map_err(|_| CodecError::Corrupt("lzss flag past end"))?;
        if is_match {
            let dist = r
                .read_bits(15)
                .map_err(|_| CodecError::Corrupt("lzss dist past end"))?
                as usize
                + 1;
            let len = r
                .read_bits(8)
                .map_err(|_| CodecError::Corrupt("lzss len past end"))?
                as usize
                + MIN_MATCH;
            if dist > out.len() {
                return Err(CodecError::Corrupt("lzss distance exceeds output"));
            }
            if out.len() + len > expected_len {
                return Err(CodecError::Corrupt("lzss output exceeds stored length"));
            }
            // Overlapping copies are the point (dist < len repeats a
            // pattern), so this must be a byte-at-a-time self-copy.
            let start = out.len() - dist;
            for src in start..start + len {
                let b = out[src];
                out.push(b);
            }
        } else {
            let b = r
                .read_bits(8)
                .map_err(|_| CodecError::Corrupt("lzss literal past end"))?
                as u8;
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let mut c = Vec::new();
        compress_into(data, &mut c);
        assert_eq!(decompress(&c, data.len()).unwrap(), data, "{data:?}");
    }

    #[test]
    fn basic_round_trips() {
        round_trip(b"");
        round_trip(b"x");
        round_trip(b"abcd");
        round_trip(b"aaaaaaaaaaaaaaaa");
        round_trip(b"the quick brown fox jumps over the lazy dog");
        round_trip(&b"abcabcabcabc".repeat(50));
        round_trip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn overlapping_match_round_trips() {
        // "ababab..." forces dist=2, len>2 overlapping copies.
        let data: Vec<u8> = (0..500)
            .map(|i| if i % 2 == 0 { b'a' } else { b'b' })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn long_match_cap() {
        let data = vec![5u8; MAX_MATCH * 3 + 7];
        round_trip(&data);
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data = b"zmesh reorders amr level data; ".repeat(100);
        let mut c = Vec::new();
        compress_into(&data, &mut c);
        assert!(c.len() < data.len() / 5, "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn corrupt_distance_errors() {
        // Hand-craft: one match token with dist beyond empty output.
        let mut w = zmesh_bitstream::BitWriter::new();
        w.write_bit(true);
        w.write_bits(100, 15);
        w.write_bits(0, 8);
        let body = w.into_bytes();
        assert!(decompress(&body, 10).is_err());
    }
}
