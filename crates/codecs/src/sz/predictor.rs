//! Stream predictors for the SZ-style codec.
//!
//! All predictors run on *reconstructed* values so the encoder and decoder
//! agree bit-for-bit. At the start of the stream, higher-order predictors
//! gracefully degrade (quadratic → linear → last-value → 0) until enough
//! history exists.

/// Rolling window of the last three reconstructed values.
#[derive(Debug, Clone, Copy, Default)]
pub struct History {
    vals: [f64; 3],
    len: usize,
}

impl History {
    /// Empty history (start of stream).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a newly reconstructed value.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.vals[2] = self.vals[1];
        self.vals[1] = self.vals[0];
        self.vals[0] = x;
        self.len = (self.len + 1).min(3);
    }

    /// Number of valid history entries (0..=3).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether any history exists yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn prev(&self, k: usize) -> f64 {
        debug_assert!(k < self.len);
        self.vals[k]
    }
}

/// The three SZ "curve-fitting" predictors along the 1-D stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predictor {
    /// `x̂ = x[-1]` (1-D Lorenzo).
    Last,
    /// `x̂ = 2 x[-1] - x[-2]`.
    Linear,
    /// `x̂ = 3 x[-1] - 3 x[-2] + x[-3]`.
    Quadratic,
}

impl Predictor {
    /// All predictors, in selection order.
    pub const ALL: [Predictor; 3] = [Predictor::Last, Predictor::Linear, Predictor::Quadratic];

    /// Stream tag.
    pub fn tag(&self) -> u8 {
        match self {
            Predictor::Last => 0,
            Predictor::Linear => 1,
            Predictor::Quadratic => 2,
        }
    }

    /// Inverse of [`Predictor::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Predictor::Last),
            1 => Some(Predictor::Linear),
            2 => Some(Predictor::Quadratic),
            _ => None,
        }
    }

    /// Predicts the next value from reconstructed history, degrading
    /// gracefully when fewer than the required samples exist.
    #[inline]
    pub fn predict(&self, h: &History) -> f64 {
        let order = match self {
            Predictor::Last => 1,
            Predictor::Linear => 2,
            Predictor::Quadratic => 3,
        };
        match order.min(h.len()) {
            0 => 0.0,
            1 => h.prev(0),
            2 => 2.0 * h.prev(0) - h.prev(1),
            _ => 3.0 * h.prev(0) - 3.0 * h.prev(1) + h.prev(2),
        }
    }

    /// Selects the predictor with the smallest total absolute residual over
    /// `block`, seeding history with `seed` (the reconstruction state at the
    /// chunk boundary). Selection uses the original values as a stand-in for
    /// reconstructed ones — the standard SZ approximation; correctness never
    /// depends on the choice, only ratio does.
    ///
    /// `eb` is used to short-circuit: residuals below the bound are free.
    ///
    /// The three trial passes have no reconstruction feedback (they window
    /// over the originals), so the residual costs are computed by the
    /// SIMD-dispatched [`zmesh_kernels::sz::trial_costs`] kernel; its
    /// per-element operations and accumulation order are bit-identical to
    /// the historical `History`-walking loop, so the selection — and
    /// therefore the emitted stream — never depends on the dispatch.
    pub fn select(block: &[f64], seed: &History, eb: f64) -> Predictor {
        // The kernel sees the seed history (oldest first) inlined ahead of
        // the block, so element `j` of the extended slice has exactly the
        // `min(j, 3)` predecessors `History` would report.
        let hist = seed.len();
        let mut ext = Vec::with_capacity(hist + block.len());
        for k in (0..hist).rev() {
            ext.push(seed.prev(k));
        }
        ext.extend_from_slice(block);
        let costs = zmesh_kernels::sz::trial_costs(&ext, hist, eb);
        let mut best = Predictor::Last;
        let mut best_cost = f64::INFINITY;
        for (p, cost) in Predictor::ALL.into_iter().zip(costs) {
            if cost < best_cost {
                best_cost = cost;
                best = p;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_of(vals: &[f64]) -> History {
        let mut h = History::new();
        for &v in vals {
            h.push(v);
        }
        h
    }

    #[test]
    fn history_window_rolls() {
        let h = history_of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.prev(0), 4.0);
        assert_eq!(h.prev(1), 3.0);
        assert_eq!(h.prev(2), 2.0);
    }

    #[test]
    fn predictors_are_exact_on_their_polynomials() {
        // Constant: all predictors exact.
        let h = history_of(&[5.0, 5.0, 5.0]);
        for p in Predictor::ALL {
            assert_eq!(p.predict(&h), 5.0, "{p:?}");
        }
        // Linear ramp: linear and quadratic exact.
        let h = history_of(&[1.0, 2.0, 3.0]);
        assert_eq!(Predictor::Linear.predict(&h), 4.0);
        assert_eq!(Predictor::Quadratic.predict(&h), 4.0);
        // Parabola t^2 at t = 1, 2, 3 -> predicts 16 at t = 4.
        let h = history_of(&[1.0, 4.0, 9.0]);
        assert_eq!(Predictor::Quadratic.predict(&h), 16.0);
    }

    #[test]
    fn degradation_with_short_history() {
        let empty = History::new();
        for p in Predictor::ALL {
            assert_eq!(p.predict(&empty), 0.0);
        }
        let one = history_of(&[7.0]);
        assert_eq!(Predictor::Quadratic.predict(&one), 7.0);
        let two = history_of(&[1.0, 3.0]);
        assert_eq!(Predictor::Quadratic.predict(&two), 5.0);
    }

    #[test]
    fn selection_picks_the_matching_model() {
        let ramp: Vec<f64> = (0..100).map(|i| 2.0 * f64::from(i)).collect();
        assert_eq!(
            Predictor::select(&ramp, &History::new(), 0.0),
            Predictor::Linear
        );
        let parab: Vec<f64> = (0..100).map(|i| f64::from(i * i)).collect();
        assert_eq!(
            Predictor::select(&parab, &History::new(), 0.0),
            Predictor::Quadratic
        );
    }

    #[test]
    fn tags_round_trip() {
        for p in Predictor::ALL {
            assert_eq!(Predictor::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Predictor::from_tag(9), None);
    }

    #[test]
    fn selection_handles_non_finite() {
        let block = [1.0, f64::INFINITY, 2.0];
        // Must not panic; any predictor is acceptable.
        let _ = Predictor::select(&block, &History::new(), 1e-3);
    }

    /// The historical selection loop, kept verbatim as the reference the
    /// kernel-backed [`Predictor::select`] is differentially tested
    /// against: identical costs (bit for bit) and identical choice.
    fn select_reference(block: &[f64], seed: &History, eb: f64) -> (Predictor, [f64; 3]) {
        let mut best = Predictor::Last;
        let mut best_cost = f64::INFINITY;
        let mut costs = [0.0f64; 3];
        for (k, p) in Predictor::ALL.into_iter().enumerate() {
            let mut h = *seed;
            let mut cost = 0.0;
            for &x in block {
                let r = (x - p.predict(&h)).abs();
                if r.is_finite() {
                    cost += (r - eb).max(0.0);
                } else {
                    cost += 1e30; // escapes are expensive
                }
                h.push(x);
            }
            costs[k] = cost;
            if cost < best_cost {
                best_cost = cost;
                best = p;
            }
        }
        (best, costs)
    }

    #[test]
    fn kernel_selection_is_bit_identical_to_the_historical_loop() {
        let mut s = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for len in [0usize, 1, 2, 3, 4, 5, 9, 64, 257] {
            for seed_vals in [0usize, 1, 2, 3] {
                let mut seed = History::new();
                for _ in 0..seed_vals {
                    seed.push(next() * 10.0 - 5.0);
                }
                let mut block: Vec<f64> = (0..len).map(|_| next() * 100.0).collect();
                if len > 4 {
                    block[1] = f64::NAN;
                    block[3] = f64::INFINITY;
                }
                for eb in [0.0, 1e-6, 0.5] {
                    let (want, want_costs) = select_reference(&block, &seed, eb);
                    let got = Predictor::select(&block, &seed, eb);
                    assert_eq!(got, want, "len={len} seed={seed_vals} eb={eb}");
                    // And the kernel costs themselves, bit for bit.
                    let hist = seed.len();
                    let mut ext = Vec::new();
                    for k in (0..hist).rev() {
                        ext.push(seed.prev(k));
                    }
                    ext.extend_from_slice(&block);
                    let costs = zmesh_kernels::sz::trial_costs(&ext, hist, eb);
                    let scalar = zmesh_kernels::sz::trial_costs_scalar(&ext, hist, eb);
                    for k in 0..3 {
                        assert_eq!(costs[k].to_bits(), want_costs[k].to_bits());
                        assert_eq!(scalar[k].to_bits(), want_costs[k].to_bits());
                    }
                }
            }
        }
    }
}
