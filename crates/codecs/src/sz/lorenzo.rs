//! Multi-dimensional Lorenzo prediction for uniform grids.
//!
//! The 1-D stream path (what zMesh feeds) lives in the parent module; this
//! module adds the classic SZ treatment of *uniform* 2-D/3-D grids, where
//! each value is predicted from its already-reconstructed neighbors with
//! the Lorenzo stencil:
//!
//! * 2-D: `x̂(i,j) = x(i-1,j) + x(i,j-1) − x(i-1,j-1)`
//! * 3-D: the 7-term inclusion–exclusion stencil over the unit cube corner.
//!
//! Out-of-domain neighbors read as 0 (SZ's convention). Prediction always
//! uses reconstructed values so encoder and decoder agree exactly.

use super::quantizer::{QuantOutcome, Quantizer, ESCAPE};

/// Encodes a row-major grid, producing quantization symbols and the
/// verbatim escape values.
pub fn encode(
    data: &[f64],
    grid: [usize; 3],
    dims: usize,
    quant: &Quantizer,
) -> (Vec<u16>, Vec<f64>) {
    debug_assert_eq!(data.len(), grid[0] * grid[1] * grid[2]);
    let mut symbols = Vec::with_capacity(data.len());
    let mut exact = Vec::new();
    let mut recon = vec![0.0f64; data.len()];
    let (nx, ny, nz) = (grid[0], grid[1], grid[2]);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = (z * ny + y) * nx + x;
                let pred = predict(&recon, nx, ny, dims, x, y, z);
                match quant.quantize(data[idx], pred) {
                    QuantOutcome::Code { symbol, recon: r } => {
                        symbols.push(symbol);
                        recon[idx] = r;
                    }
                    QuantOutcome::Escape => {
                        symbols.push(ESCAPE);
                        exact.push(data[idx]);
                        recon[idx] = data[idx];
                    }
                }
            }
        }
    }
    (symbols, exact)
}

/// Decodes symbols produced by [`encode`].
pub fn decode(
    symbols: &[u16],
    exact: &[f64],
    grid: [usize; 3],
    dims: usize,
    quant: &Quantizer,
) -> Option<Vec<f64>> {
    let n = grid[0] * grid[1] * grid[2];
    if symbols.len() != n {
        return None;
    }
    let mut recon = vec![0.0f64; n];
    let (nx, ny, nz) = (grid[0], grid[1], grid[2]);
    let mut exact_iter = exact.iter();
    // Bulk-computed (symbol − RADIUS)·2eb terms (SIMD kernel); the stencil
    // walk below stays sequential through `recon` but each step is one add.
    let deltas = quant.symbol_deltas(symbols);
    let mut si = 0;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = (z * ny + y) * nx + x;
                let s = symbols[si];
                recon[idx] = if s == ESCAPE {
                    *exact_iter.next()?
                } else {
                    let pred = predict(&recon, nx, ny, dims, x, y, z);
                    quant.reconstruct_delta(deltas[si], pred)
                };
                si += 1;
            }
        }
    }
    if exact_iter.next().is_some() {
        return None;
    }
    Some(recon)
}

/// Lorenzo prediction from reconstructed neighbors (0 outside the domain).
#[inline]
fn predict(recon: &[f64], nx: usize, ny: usize, dims: usize, x: usize, y: usize, z: usize) -> f64 {
    let at = |dx: usize, dy: usize, dz: usize| -> f64 {
        if x < dx || y < dy || z < dz {
            return 0.0;
        }
        recon[((z - dz) * ny + (y - dy)) * nx + (x - dx)]
    };
    match dims {
        2 => at(1, 0, 0) + at(0, 1, 0) - at(1, 1, 0),
        3 => {
            at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) - at(1, 1, 0) - at(1, 0, 1) - at(0, 1, 1)
                + at(1, 1, 1)
        }
        _ => unreachable!("lorenzo is for 2-D/3-D"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64], grid: [usize; 3], dims: usize, eb: f64) {
        let quant = Quantizer::new(eb);
        let (symbols, exact) = encode(data, grid, dims, &quant);
        let out = decode(&symbols, &exact, grid, dims, &quant).expect("decode");
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!((a - b).abs() <= eb * (1.0 + 1e-12), "index {i}");
        }
    }

    #[test]
    fn planes_are_predicted_exactly() {
        // A bilinear-free plane a + b·x + c·y is annihilated by the 2-D
        // Lorenzo stencil -> every residual (after warm-up) is tiny.
        let (nx, ny) = (32, 24);
        let data: Vec<f64> = (0..nx * ny)
            .map(|i| {
                let (x, y) = (i % nx, i / nx);
                1.0 + 0.5 * x as f64 - 0.25 * y as f64
            })
            .collect();
        let quant = Quantizer::new(1e-3);
        let (symbols, exact) = encode(&data, [nx, ny, 1], 2, &quant);
        assert!(exact.len() <= 2, "plane should rarely escape");
        // Most symbols are the zero code.
        let zero = (crate::sz::quantizer::RADIUS) as u16;
        let zeros = symbols.iter().filter(|&&s| s == zero).count();
        assert!(zeros * 10 >= symbols.len() * 9, "{zeros}/{}", symbols.len());
        round_trip(&data, [nx, ny, 1], 2, 1e-3);
    }

    #[test]
    fn trilinear_fields_are_predicted_exactly_3d() {
        let (nx, ny, nz) = (10, 9, 8);
        let data: Vec<f64> = (0..nx * ny * nz)
            .map(|i| {
                let x = i % nx;
                let y = (i / nx) % ny;
                let z = i / (nx * ny);
                2.0 + x as f64 - 0.5 * y as f64 + 0.25 * z as f64
            })
            .collect();
        round_trip(&data, [nx, ny, nz], 3, 1e-4);
    }

    #[test]
    fn rough_grids_stay_bounded() {
        let (nx, ny) = (31, 17); // non-power-of-two on purpose
        let mut s = 5u64;
        let data: Vec<f64> = (0..nx * ny)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0
            })
            .collect();
        round_trip(&data, [nx, ny, 1], 2, 1e-2);
        round_trip(&data, [nx, ny, 1], 2, 10.0);
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let quant = Quantizer::new(0.1);
        assert!(decode(&[0; 5], &[], [2, 2, 1], 2, &quant).is_none());
        // Missing exact value for an escape symbol.
        assert!(decode(&[ESCAPE; 4], &[1.0], [2, 2, 1], 2, &quant).is_none());
    }
}
