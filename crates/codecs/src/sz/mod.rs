//! SZ-style prediction-based error-bounded lossy compressor.
//!
//! Pipeline (mirrors SZ 1.4, the version the paper benchmarks against):
//!
//! 1. the stream is cut into fixed-size chunks; for each chunk the best of
//!    three predictors (last-value / linear / quadratic Lorenzo along the
//!    stream) is selected by trial ([`predictor`]);
//! 2. each value's prediction residual is quantized against the absolute
//!    error bound with *linear-scaling quantization* ([`quantizer`]): code
//!    `round(residual / 2eb)` if it fits the code table, otherwise the value
//!    is flagged *unpredictable* and stored verbatim;
//! 3. the quantization codes are entropy-coded with canonical Huffman, and
//!    the whole payload optionally passes through a byte-level lossless back
//!    end ([`crate::lossless::Backend`]).
//!
//! Prediction always runs on *reconstructed* values, so encoder and decoder
//! stay in lockstep and the bound `|x - x̂| <= eb` holds pointwise — the
//! crate-level property tests enforce this for arbitrary finite inputs.
//!
//! This codec is the one most sensitive to 1-D stream smoothness: a smooth
//! stream concentrates quantization codes near zero, which Huffman rewards.
//! That sensitivity is exactly what zMesh exploits (the abstract reports up
//! to +133.7 % compression ratio for SZ after reordering).
//!
//! When [`CodecParams::dims`] declares a uniform 2-D/3-D grid, prediction
//! switches to the multi-dimensional Lorenzo stencil ([`lorenzo`]), the way
//! SZ treats regular grids.

pub mod lorenzo;
pub mod predictor;
pub mod quantizer;

use crate::lossless::{huffman, rangecoder, Backend};
use crate::{varint, Codec, CodecError, CodecKind, CodecParams, ErrorControl, ValueType};
use predictor::{History, Predictor};
use quantizer::{QuantOutcome, Quantizer, ESCAPE};

const MAGIC: &[u8; 4] = b"SZR1";

/// Entropy stage for the quantization codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyCoder {
    /// Canonical Huffman (SZ's choice; fast, ≤ ½ bit/symbol overhead).
    #[default]
    Huffman,
    /// Adaptive binary range coder with bit-tree models — denser on
    /// drifting distributions, slower (see ablation A14).
    Range,
}

impl EntropyCoder {
    /// Stream tag.
    pub fn tag(&self) -> u8 {
        match self {
            EntropyCoder::Huffman => 0,
            EntropyCoder::Range => 1,
        }
    }

    /// Inverse of [`EntropyCoder::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(EntropyCoder::Huffman),
            1 => Some(EntropyCoder::Range),
            _ => None,
        }
    }

    /// Short label for harness output.
    pub fn label(&self) -> &'static str {
        match self {
            EntropyCoder::Huffman => "huffman",
            EntropyCoder::Range => "range",
        }
    }

    fn encode(&self, symbols: &[u16]) -> Vec<u8> {
        match self {
            EntropyCoder::Huffman => huffman::encode(symbols),
            EntropyCoder::Range => rangecoder::encode(symbols),
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<u16>, CodecError> {
        match self {
            EntropyCoder::Huffman => huffman::decode(bytes),
            EntropyCoder::Range => rangecoder::decode(bytes),
        }
    }
}

/// Configuration for [`SzCodec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SzConfig {
    /// Number of values per predictor-selection chunk.
    pub chunk_size: usize,
    /// Byte-level lossless back end applied to the payload.
    pub backend: Backend,
    /// Entropy stage for the quantization codes.
    pub entropy: EntropyCoder,
}

impl Default for SzConfig {
    fn default() -> Self {
        Self {
            chunk_size: 4096,
            backend: Backend::None,
            entropy: EntropyCoder::Huffman,
        }
    }
}

/// The SZ-style codec. See the [module docs](self) for the pipeline.
///
/// ```
/// use zmesh_codecs::{Codec, CodecParams, SzCodec};
///
/// let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
/// let codec = SzCodec::new();
/// let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-4)).unwrap();
/// let out = codec.decompress(&bytes).unwrap();
/// assert!(data.iter().zip(&out).all(|(a, b)| (a - b).abs() <= 1e-4));
/// assert!(bytes.len() < data.len() * 8 / 4); // > 4x on a smooth stream
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCodec {
    /// Tuning knobs; the default matches the paper's setup.
    pub config: SzConfig,
}

impl SzCodec {
    /// Codec with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Codec with an explicit lossless back end.
    pub fn with_backend(backend: Backend) -> Self {
        Self {
            config: SzConfig {
                backend,
                ..SzConfig::default()
            },
        }
    }

    /// Codec with an explicit entropy stage.
    pub fn with_entropy(entropy: EntropyCoder) -> Self {
        Self {
            config: SzConfig {
                entropy,
                ..SzConfig::default()
            },
        }
    }
}

impl Codec for SzCodec {
    fn compress(&self, data: &[f64], params: &CodecParams) -> Result<Vec<u8>, CodecError> {
        let eb = match params.control {
            ErrorControl::FixedRate(_) | ErrorControl::FixedPrecision(_) => {
                return Err(CodecError::InvalidBound(f64::NAN));
            }
            ref c => c.absolute_bound(data).expect("bound-style control"),
        };
        if !eb.is_finite() || eb < 0.0 {
            return Err(CodecError::InvalidBound(eb));
        }
        let dims = params.dimensionality();
        let grid = match dims {
            1 => [data.len(), 1, 1],
            2 => [params.dims[0], params.dims[1], 1],
            _ => params.dims,
        };
        let expected: usize = grid.iter().product();
        if dims > 1 && expected != data.len() {
            return Err(CodecError::DimsMismatch {
                expected,
                actual: data.len(),
            });
        }
        if params.value_type == ValueType::F32 {
            // Escapes are stored in 4 bytes, so every value must survive the
            // f64 -> f32 -> f64 round trip exactly (NaN payloads excepted).
            for (i, &v) in data.iter().enumerate() {
                if !v.is_nan() && v != f64::from(v as f32) {
                    return Err(CodecError::NotSinglePrecision { index: i });
                }
            }
        }
        compress_impl(
            data,
            eb,
            params.dims,
            dims,
            grid,
            params.value_type,
            &self.config,
        )
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        decompress_impl(bytes)
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Sz
    }
}

fn compress_impl(
    data: &[f64],
    eb: f64,
    stored_dims: [usize; 3],
    dims: usize,
    grid: [usize; 3],
    value_type: ValueType,
    config: &SzConfig,
) -> Result<Vec<u8>, CodecError> {
    let chunk = config.chunk_size.max(1);
    let quant = Quantizer::with_snap(eb, value_type == ValueType::F32);

    let mut pred_tags = Vec::new();
    let (symbols, exact) = if dims == 1 {
        let n_chunks = data.len().div_ceil(chunk);
        pred_tags.reserve(n_chunks);
        let mut symbols: Vec<u16> = Vec::with_capacity(data.len());
        let mut exact: Vec<f64> = Vec::new();
        let mut history = History::new();
        for block in data.chunks(chunk) {
            let pred = Predictor::select(block, &history, eb);
            pred_tags.push(pred.tag());
            for &x in block {
                let p = pred.predict(&history);
                match quant.quantize(x, p) {
                    QuantOutcome::Code { symbol, recon } => {
                        symbols.push(symbol);
                        history.push(recon);
                    }
                    QuantOutcome::Escape => {
                        symbols.push(ESCAPE);
                        exact.push(x);
                        history.push(x);
                    }
                }
            }
        }
        (symbols, exact)
    } else {
        lorenzo::encode(data, grid, dims, &quant)
    };

    // Payload: predictor tags (1-D only), entropy-coded symbols, exact values.
    let mut payload = Vec::with_capacity(data.len() / 2 + 64);
    payload.extend_from_slice(&pred_tags);
    let coded = config.entropy.encode(&symbols);
    varint::write_u64(&mut payload, coded.len() as u64);
    payload.extend_from_slice(&coded);
    varint::write_u64(&mut payload, exact.len() as u64);
    for &v in &exact {
        match value_type {
            ValueType::F64 => varint::write_f64(&mut payload, v),
            ValueType::F32 => varint::write_f32(&mut payload, v as f32),
        }
    }

    let body = config.backend.compress(&payload);
    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(MAGIC);
    varint::write_u64(&mut out, data.len() as u64);
    varint::write_f64(&mut out, eb);
    for d in stored_dims {
        varint::write_u64(&mut out, d as u64);
    }
    varint::write_u64(&mut out, chunk as u64);
    out.push(config.backend.tag());
    out.push(config.entropy.tag());
    out.push(value_type.tag());
    out.extend_from_slice(&body);
    Ok(out)
}

fn decompress_impl(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    let mut pos = 0;
    if varint::read_bytes(bytes, &mut pos, 4)? != MAGIC {
        return Err(CodecError::WrongMagic);
    }
    let n = varint::read_u64(bytes, &mut pos)? as usize;
    let eb = varint::read_f64(bytes, &mut pos)?;
    if !eb.is_finite() || eb < 0.0 {
        return Err(CodecError::Corrupt("invalid stored error bound"));
    }
    let mut stored_dims = [0usize; 3];
    for d in &mut stored_dims {
        *d = varint::read_u64(bytes, &mut pos)? as usize;
    }
    let dims = match stored_dims {
        [0, 0, 0] => 1,
        [_, _, 0] => 2,
        _ => 3,
    };
    let grid = match dims {
        1 => [n, 1, 1],
        2 => [stored_dims[0], stored_dims[1], 1],
        _ => stored_dims,
    };
    if grid.iter().product::<usize>() != n {
        return Err(CodecError::Corrupt("stored dims mismatch length"));
    }
    let chunk = varint::read_u64(bytes, &mut pos)? as usize;
    if chunk == 0 {
        return Err(CodecError::Corrupt("zero chunk size"));
    }
    let backend = Backend::from_tag(
        *bytes
            .get(pos)
            .ok_or(CodecError::Corrupt("no backend tag"))?,
    )
    .ok_or(CodecError::Corrupt("unknown backend tag"))?;
    pos += 1;
    let entropy = EntropyCoder::from_tag(
        *bytes
            .get(pos)
            .ok_or(CodecError::Corrupt("no entropy tag"))?,
    )
    .ok_or(CodecError::Corrupt("unknown entropy tag"))?;
    pos += 1;
    let value_type = ValueType::from_tag(
        *bytes
            .get(pos)
            .ok_or(CodecError::Corrupt("no value-type tag"))?,
    )
    .ok_or(CodecError::Corrupt("unknown value-type tag"))?;
    pos += 1;
    let payload = backend.decompress(&bytes[pos..])?;

    let n_chunks = if dims == 1 { n.div_ceil(chunk) } else { 0 };
    let mut ppos = 0;
    let tags = varint::read_bytes(&payload, &mut ppos, n_chunks)?.to_vec();
    let preds: Vec<Predictor> = tags
        .iter()
        .map(|&t| Predictor::from_tag(t).ok_or(CodecError::Corrupt("unknown predictor tag")))
        .collect::<Result<_, _>>()?;
    let coded_len = varint::read_u64(&payload, &mut ppos)? as usize;
    let coded = varint::read_bytes(&payload, &mut ppos, coded_len)?;
    let symbols = entropy.decode(coded)?;
    if symbols.len() != n {
        return Err(CodecError::Corrupt("symbol count mismatch"));
    }
    let n_exact = varint::read_u64(&payload, &mut ppos)? as usize;
    let mut exact = Vec::with_capacity(n_exact);
    for _ in 0..n_exact {
        exact.push(match value_type {
            ValueType::F64 => varint::read_f64(&payload, &mut ppos)?,
            ValueType::F32 => f64::from(varint::read_f32(&payload, &mut ppos)?),
        });
    }

    let quant = Quantizer::with_snap(eb, value_type == ValueType::F32);
    if dims > 1 {
        return lorenzo::decode(&symbols, &exact, grid, dims, &quant)
            .ok_or(CodecError::Corrupt("lorenzo payload inconsistent"));
    }
    let mut out = Vec::with_capacity(n);
    let mut history = History::new();
    let mut exact_iter = exact.iter();
    // Bulk-computed (symbol − RADIUS)·2eb terms (SIMD kernel): the
    // sequential reconstruction chain below is left with one add each.
    let deltas = quant.symbol_deltas(&symbols);
    for (ci, (chunk_syms, chunk_deltas)) in
        symbols.chunks(chunk).zip(deltas.chunks(chunk)).enumerate()
    {
        let pred = preds
            .get(ci)
            .copied()
            .ok_or(CodecError::Corrupt("missing predictor tag"))?;
        for (&s, &d) in chunk_syms.iter().zip(chunk_deltas) {
            let x = if s == ESCAPE {
                *exact_iter
                    .next()
                    .ok_or(CodecError::Corrupt("missing exact value"))?
            } else {
                let p = pred.predict(&history);
                quant.reconstruct_delta(d, p)
            };
            out.push(x);
            history.push(x);
        }
    }
    if exact_iter.next().is_some() {
        return Err(CodecError::Corrupt("trailing exact values"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64], eb: f64) -> Vec<f64> {
        let codec = SzCodec::new();
        let bytes = codec
            .compress(data, &CodecParams::abs_1d(eb))
            .expect("compress");
        let out = codec.decompress(&bytes).expect("decompress");
        assert_eq!(out.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!(
                (a - b).abs() <= eb * (1.0 + 1e-12),
                "index {i}: |{a} - {b}| > {eb}"
            );
        }
        out
    }

    #[test]
    fn empty_input() {
        round_trip(&[], 0.1);
    }

    #[test]
    fn constant_stream() {
        round_trip(&[5.0; 1000], 1e-3);
    }

    #[test]
    fn smooth_stream_compresses_hard() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.001).sin()).collect();
        let codec = SzCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-4)).unwrap();
        let ratio = (data.len() * 8) as f64 / bytes.len() as f64;
        assert!(ratio > 8.0, "ratio = {ratio}");
        round_trip(&data, 1e-4);
    }

    #[test]
    fn rough_stream_still_bounded() {
        let data: Vec<f64> = (0..5000)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
            })
            .collect();
        round_trip(&data, 1e-2);
    }

    #[test]
    fn zero_error_bound_is_lossless() {
        let data = [1.0, 2.5, -3.125, 0.0, f64::MIN_POSITIVE, 1e300];
        let out = round_trip(&data, 0.0);
        assert_eq!(out, data);
    }

    #[test]
    fn non_finite_values_survive_via_escape() {
        let data = [1.0, f64::NAN, f64::INFINITY, -2.0, f64::NEG_INFINITY];
        let codec = SzCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(0.1)).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        assert_eq!(out[0], 1.0);
        assert!(out[1].is_nan());
        assert_eq!(out[2], f64::INFINITY);
        assert_eq!(out[4], f64::NEG_INFINITY);
    }

    #[test]
    fn huge_jumps_escape() {
        let data = [0.0, 1e308, -1e308, 0.0, 1e-300];
        round_trip(&data, 1e-3);
    }

    #[test]
    fn all_backends_round_trip() {
        let data: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.01).cos() * 10.0).collect();
        for backend in [Backend::None, Backend::Rle, Backend::Lzss] {
            let codec = SzCodec::with_backend(backend);
            let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-3)).unwrap();
            let out = codec.decompress(&bytes).unwrap();
            for (&a, &b) in data.iter().zip(&out) {
                assert!((a - b).abs() <= 1e-3 * (1.0 + 1e-12), "{backend:?}");
            }
        }
    }

    #[test]
    fn range_entropy_round_trips_within_bound() {
        let data: Vec<f64> = (0..6000).map(|i| (i as f64 * 0.004).sin() * 2.0).collect();
        let codec = SzCodec::with_entropy(EntropyCoder::Range);
        let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-4)).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + 1e-12));
        }
        // Cross-config decode: the stream self-describes its entropy stage.
        let other = SzCodec::new();
        assert_eq!(other.decompress(&bytes).unwrap(), out);
    }

    #[test]
    fn entropy_tags_round_trip() {
        for e in [EntropyCoder::Huffman, EntropyCoder::Range] {
            assert_eq!(EntropyCoder::from_tag(e.tag()), Some(e));
        }
        assert_eq!(EntropyCoder::from_tag(9), None);
    }

    #[test]
    fn relative_bound_resolves() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let codec = SzCodec::new();
        let bytes = codec.compress(&data, &CodecParams::rel_1d(1e-3)).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        let bound = 1e-3 * 999.0;
        for (&a, &b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= bound * (1.0 + 1e-12));
        }
    }

    #[test]
    fn rejects_bad_bounds() {
        let codec = SzCodec::new();
        let params = CodecParams {
            control: ErrorControl::Absolute(-1.0),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };
        assert!(matches!(
            codec.compress(&[1.0], &params),
            Err(CodecError::InvalidBound(_))
        ));
        let params = CodecParams {
            control: ErrorControl::FixedRate(8.0),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        };
        assert!(codec.compress(&[1.0], &params).is_err());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let data: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let codec = SzCodec::new();
        let bytes = codec.compress(&data, &CodecParams::abs_1d(1e-2)).unwrap();
        assert!(codec.decompress(&[]).is_err());
        assert!(codec.decompress(b"NOPE").is_err());
        for cut in [4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(codec.decompress(&bytes[..cut]).is_err(), "cut = {cut}");
        }
        // Flip a header byte (magic) -> wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(bad.len(), _l if codec.decompress(&bad).is_err()));
    }

    #[test]
    fn tighter_bound_costs_more_bits() {
        let data: Vec<f64> = (0..20_000)
            .map(|i| (i as f64 * 0.002).sin() * 3.0)
            .collect();
        let codec = SzCodec::new();
        let loose = codec.compress(&data, &CodecParams::abs_1d(1e-2)).unwrap();
        let tight = codec.compress(&data, &CodecParams::abs_1d(1e-6)).unwrap();
        assert!(loose.len() < tight.len());
    }
}

#[cfg(test)]
mod multidim_tests {
    use super::*;
    use crate::CodecParams;

    #[test]
    fn grid_2d_round_trips_within_bound() {
        let (nx, ny) = (57, 43);
        let data: Vec<f64> = (0..nx * ny)
            .map(|i| {
                let (x, y) = (i % nx, i / nx);
                ((x as f64) * 0.2).sin() * ((y as f64) * 0.15).cos() * 5.0
            })
            .collect();
        let codec = SzCodec::new();
        let params = CodecParams::abs_1d(1e-4).with_dims_2d(nx, ny);
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn grid_3d_round_trips_within_bound() {
        let (nx, ny, nz) = (15, 11, 9);
        let data: Vec<f64> = (0..nx * ny * nz)
            .map(|i| {
                let x = i % nx;
                let y = (i / nx) % ny;
                let z = i / (nx * ny);
                (x as f64 * 0.4).sin() + (y as f64 * 0.3).cos() + z as f64 * 0.1
            })
            .collect();
        let codec = SzCodec::new();
        let params = CodecParams::abs_1d(1e-3).with_dims_3d(nx, ny, nz);
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-3 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn lorenzo_2d_beats_1d_on_separable_rough_grids() {
        // The Lorenzo stencil annihilates additive fields f(x) + g(y)
        // exactly, however rough f and g are; the 1-D curve-fitting
        // predictors cannot track per-sample noise.
        let n = 128;
        let noise = |k: u64| {
            let mut h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (h >> 11) as f64 / (1u64 << 53) as f64
        };
        let data: Vec<f64> = (0..n * n)
            .map(|i| {
                let (x, y) = (i % n, i / n);
                noise(x as u64) + noise(1000 + y as u64)
            })
            .collect();
        let codec = SzCodec::new();
        let one_d = codec.compress(&data, &CodecParams::abs_1d(1e-5)).unwrap();
        let two_d = codec
            .compress(&data, &CodecParams::abs_1d(1e-5).with_dims_2d(n, n))
            .unwrap();
        assert!(
            two_d.len() * 2 < one_d.len(),
            "2d {} !< 1d {}",
            two_d.len(),
            one_d.len()
        );
    }

    #[test]
    fn dims_mismatch_is_rejected() {
        let codec = SzCodec::new();
        let params = CodecParams::abs_1d(0.1).with_dims_2d(4, 4);
        assert!(matches!(
            codec.compress(&[0.0; 10], &params),
            Err(CodecError::DimsMismatch { .. })
        ));
    }
}

#[cfg(test)]
mod f32_tests {
    use super::*;
    use crate::CodecParams;

    fn f32_data(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| f64::from(((i as f32) * 0.004).sin() * 10.0))
            .collect()
    }

    #[test]
    fn f32_streams_round_trip_within_bound() {
        let data = f32_data(8000);
        let codec = SzCodec::new();
        let params = CodecParams::abs_1d(1e-4).as_f32();
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            assert_eq!(b, f64::from(b as f32), "output not f32");
            assert!((a - b).abs() <= 1e-4 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn f32_escapes_cost_four_bytes() {
        // All-escape stream (eb = 0): f32 mode should be ~half the size.
        let data = f32_data(4000);
        let codec = SzCodec::new();
        let f64_bytes = codec.compress(&data, &CodecParams::abs_1d(0.0)).unwrap();
        let f32_bytes = codec
            .compress(&data, &CodecParams::abs_1d(0.0).as_f32())
            .unwrap();
        assert!(
            (f32_bytes.len() as f64) < 0.6 * f64_bytes.len() as f64,
            "{} vs {}",
            f32_bytes.len(),
            f64_bytes.len()
        );
        assert_eq!(codec.decompress(&f32_bytes).unwrap(), data);
    }

    #[test]
    fn non_f32_input_is_rejected_in_f32_mode() {
        let codec = SzCodec::new();
        let params = CodecParams::abs_1d(0.1).as_f32();
        assert!(matches!(
            codec.compress(&[0.1f64], &params),
            Err(CodecError::NotSinglePrecision { index: 0 })
        ));
        // NaNs are allowed (payload reduced to f32 NaN).
        let data = [1.0f64, f64::NAN, 2.0];
        let bytes = codec.compress(&data, &params).unwrap();
        let out = codec.decompress(&bytes).unwrap();
        assert!(out[1].is_nan());
    }
}
