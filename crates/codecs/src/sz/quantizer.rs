//! Linear-scaling quantization (the SZ error-control mechanism).
//!
//! The residual `x - pred` is quantized to `code = round(residual / 2eb)`;
//! reconstruction is `pred + code · 2eb`, which is within `eb` of `x` by
//! construction. Codes outside the table (or any case where floating-point
//! rounding would break the bound) fall back to the *escape* symbol and the
//! value is stored verbatim — so the bound holds **unconditionally**.

/// Reserved symbol meaning "unpredictable, value stored verbatim".
pub const ESCAPE: u16 = 0;

/// Half-width of the code table: codes occupy `[-(RADIUS-1), RADIUS-1]`,
/// mapped to symbols `1 ..= 2*RADIUS - 1` (symbol 0 is [`ESCAPE`]).
pub const RADIUS: i64 = 1 << 15;

/// Quantizer for a fixed absolute error bound.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    eb: f64,
    two_eb: f64,
    /// Snap reconstructions to `f32` (single-precision source data). The
    /// bound is re-verified *after* snapping, so it still holds pointwise.
    snap_f32: bool,
}

/// Result of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantOutcome {
    /// Residual fits the code table; `recon` is the decoder-side value.
    Code {
        /// Huffman symbol (`code + RADIUS`).
        symbol: u16,
        /// Reconstructed value, shared by encoder and decoder.
        recon: f64,
    },
    /// Value must be stored verbatim.
    Escape,
}

impl Quantizer {
    /// Creates a quantizer. `eb == 0` forces every value to escape
    /// (lossless mode).
    pub fn new(eb: f64) -> Self {
        Self::with_snap(eb, false)
    }

    /// Creates a quantizer that snaps reconstructions to `f32` when
    /// `snap_f32` is set (for single-precision source data).
    pub fn with_snap(eb: f64, snap_f32: bool) -> Self {
        debug_assert!(eb.is_finite() && eb >= 0.0);
        Self {
            eb,
            two_eb: 2.0 * eb,
            snap_f32,
        }
    }

    #[inline]
    fn snap(&self, v: f64) -> f64 {
        if self.snap_f32 {
            v as f32 as f64
        } else {
            v
        }
    }

    /// Quantizes `x` against prediction `pred`.
    ///
    /// The negated comparisons below are deliberate: they treat NaN as
    /// out-of-range, which must fall through to the escape path.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn quantize(&self, x: f64, pred: f64) -> QuantOutcome {
        if self.eb == 0.0 || !x.is_finite() || !pred.is_finite() {
            return QuantOutcome::Escape;
        }
        let diff = x - pred;
        let code_f = (diff / self.two_eb).round();
        if !(code_f.abs() < (RADIUS - 1) as f64) {
            return QuantOutcome::Escape;
        }
        let code = code_f as i64;
        let recon = self.snap(pred + code as f64 * self.two_eb);
        // Floating-point safety net (including snap error): guarantee the
        // bound or escape.
        if !((x - recon).abs() <= self.eb) {
            return QuantOutcome::Escape;
        }
        QuantOutcome::Code {
            symbol: (code + RADIUS) as u16,
            recon,
        }
    }

    /// Decoder-side reconstruction for a non-escape symbol.
    #[inline]
    pub fn reconstruct(&self, symbol: u16, pred: f64) -> f64 {
        debug_assert_ne!(symbol, ESCAPE);
        let code = i64::from(symbol) - RADIUS;
        self.snap(pred + code as f64 * self.two_eb)
    }

    /// Reconstruction from a precomputed `(symbol − RADIUS) · 2eb` delta
    /// (see [`Quantizer::symbol_deltas`]): lifting the int→float convert
    /// and multiply out of the sequential prediction chain leaves a
    /// single add (+ optional f32 snap) per value. Bit-identical to
    /// [`Quantizer::reconstruct`] because the delta is the same f64 the
    /// inline expression would produce.
    #[inline]
    pub fn reconstruct_delta(&self, delta: f64, pred: f64) -> f64 {
        self.snap(pred + delta)
    }

    /// Bulk-computes each symbol's reconstruction delta
    /// `(symbol − RADIUS) · 2eb` via the SIMD-dispatched
    /// [`zmesh_kernels::sz::symbol_deltas`] kernel. Escape positions get
    /// a (well-defined, unused) delta too, so callers can index the
    /// result by symbol position unconditionally.
    pub fn symbol_deltas(&self, symbols: &[u16]) -> Vec<f64> {
        let mut out = vec![0.0f64; symbols.len()];
        zmesh_kernels::sz::symbol_deltas(symbols, RADIUS as i32, self.two_eb, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_prediction_gives_zero_code() {
        let q = Quantizer::new(0.1);
        match q.quantize(5.0, 5.0) {
            QuantOutcome::Code { symbol, recon } => {
                assert_eq!(symbol, RADIUS as u16);
                assert_eq!(recon, 5.0);
            }
            QuantOutcome::Escape => panic!("should quantize"),
        }
    }

    #[test]
    fn reconstruction_matches_encoder() {
        let q = Quantizer::new(1e-3);
        for (x, pred) in [(1.0, 0.9), (-5.5, -5.2), (100.0, 99.999), (0.0, 0.0015)] {
            if let QuantOutcome::Code { symbol, recon } = q.quantize(x, pred) {
                assert_eq!(q.reconstruct(symbol, pred), recon);
                assert!((x - recon).abs() <= 1e-3 * (1.0 + 1e-12));
            } else {
                panic!("small residuals must quantize");
            }
        }
    }

    #[test]
    fn large_residual_escapes() {
        let q = Quantizer::new(1e-6);
        assert_eq!(q.quantize(1.0, 0.0), QuantOutcome::Escape);
    }

    #[test]
    fn boundary_codes() {
        let q = Quantizer::new(0.5);
        // Residual exactly (RADIUS-2) * 2eb is representable...
        let diff = (RADIUS - 2) as f64;
        assert!(matches!(q.quantize(diff, 0.0), QuantOutcome::Code { .. }));
        // ...but RADIUS * 2eb is not.
        let diff = RADIUS as f64;
        assert_eq!(q.quantize(diff, 0.0), QuantOutcome::Escape);
    }

    #[test]
    fn non_finite_escapes() {
        let q = Quantizer::new(0.1);
        assert_eq!(q.quantize(f64::NAN, 0.0), QuantOutcome::Escape);
        assert_eq!(q.quantize(1.0, f64::INFINITY), QuantOutcome::Escape);
        assert_eq!(q.quantize(f64::INFINITY, 1.0), QuantOutcome::Escape);
    }

    #[test]
    fn zero_bound_always_escapes() {
        let q = Quantizer::new(0.0);
        assert_eq!(q.quantize(1.0, 1.0), QuantOutcome::Escape);
    }

    #[test]
    fn snapped_reconstruction_honors_the_bound() {
        let q = Quantizer::with_snap(1e-3, true);
        for x in [1.0f32, -7.25, 1234.567, 1e-20, 3.0e7] {
            let x = f64::from(x);
            match q.quantize(x, x * (1.0 + 5e-4)) {
                QuantOutcome::Code { recon, .. } => {
                    assert_eq!(recon, recon as f32 as f64, "recon not f32");
                    assert!((x - recon).abs() <= 1e-3 * (1.0 + 1e-12));
                }
                QuantOutcome::Escape => {} // also fine: bound preserved
            }
        }
    }

    #[test]
    fn snap_escapes_when_f32_cannot_hold_the_bound() {
        // eb far below f32 ulp at this magnitude: snapping breaks the
        // bound, so the quantizer must escape rather than emit a code.
        let q = Quantizer::with_snap(1e-12, true);
        let x = 1.0e8 + 0.3;
        assert_eq!(q.quantize(x, 1.0e8), QuantOutcome::Escape);
    }

    #[test]
    fn delta_reconstruction_is_bit_identical_to_inline() {
        for (eb, snap) in [(1e-3, false), (0.5, false), (1e-3, true)] {
            let q = Quantizer::with_snap(eb, snap);
            let symbols: Vec<u16> = (1..=2000u16).map(|i| i.wrapping_mul(31).max(1)).collect();
            let deltas = q.symbol_deltas(&symbols);
            for (&s, &d) in symbols.iter().zip(&deltas) {
                for pred in [0.0, 1.5, -1e6, 0.125] {
                    assert_eq!(
                        q.reconstruct_delta(d, pred).to_bits(),
                        q.reconstruct(s, pred).to_bits(),
                        "symbol={s} pred={pred} eb={eb} snap={snap}"
                    );
                }
            }
        }
    }

    #[test]
    fn symbols_never_collide_with_escape() {
        let q = Quantizer::new(0.5);
        for diff_steps in [-(RADIUS - 2), -1, 0, 1, RADIUS - 2] {
            let x = diff_steps as f64; // residual = diff_steps * 2eb with eb=0.5
            if let QuantOutcome::Code { symbol, .. } = q.quantize(x, 0.0) {
                assert_ne!(symbol, ESCAPE);
            } else {
                panic!("in-range residual escaped: {diff_steps}");
            }
        }
    }
}
