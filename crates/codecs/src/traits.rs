//! The codec abstraction shared by SZ, ZFP, and the pipeline.

use std::fmt;

/// How the lossy codec's distortion is controlled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorControl {
    /// Pointwise absolute error bound: `|x - x̂| <= bound` for every value.
    Absolute(f64),
    /// Error bound relative to the data's value range:
    /// `|x - x̂| <= rel * (max - min)`. Resolved to an absolute bound at
    /// compression time (the resolved bound is stored in the stream header).
    ValueRangeRelative(f64),
    /// Fixed rate in bits per value (ZFP only); no error guarantee.
    FixedRate(f64),
    /// Fixed number of bit planes kept per block (ZFP only, 1..=64);
    /// relative-accuracy-style control, no absolute guarantee.
    FixedPrecision(u32),
}

impl ErrorControl {
    /// Resolves this control to an absolute bound for the given data.
    /// Returns `None` for [`ErrorControl::FixedRate`].
    pub fn absolute_bound(&self, data: &[f64]) -> Option<f64> {
        match *self {
            ErrorControl::Absolute(b) => Some(b),
            ErrorControl::ValueRangeRelative(r) => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &x in data {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                let range = if lo <= hi { hi - lo } else { 0.0 };
                Some(r * range)
            }
            ErrorControl::FixedRate(_) | ErrorControl::FixedPrecision(_) => None,
        }
    }
}

/// Precision of the *source* data. Values always travel as `f64` through
/// the API; `F32` tells the codec the payload originated as single
/// precision, so reconstructed values are snapped to `f32` (keeping the
/// error bound, which the quantizer re-verifies after snapping) and
/// verbatim escapes are stored in 4 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueType {
    /// Double-precision source data.
    #[default]
    F64,
    /// Single-precision source data (half-size escapes, snapped output).
    F32,
}

impl ValueType {
    /// Stream tag.
    pub fn tag(&self) -> u8 {
        match self {
            ValueType::F64 => 0,
            ValueType::F32 => 1,
        }
    }

    /// Inverse of [`ValueType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ValueType::F64),
            1 => Some(ValueType::F32),
            _ => None,
        }
    }

    /// Bytes per raw value of this type.
    pub fn width(&self) -> usize {
        match self {
            ValueType::F64 => 8,
            ValueType::F32 => 4,
        }
    }
}

/// Parameters handed to a codec's `compress`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecParams {
    /// Distortion control.
    pub control: ErrorControl,
    /// Logical dimensionality of the stream (1 for zMesh-linearized data;
    /// 2/3 let ZFP use square/cubic blocks on uniform grids).
    pub dims: [usize; 3],
    /// Source precision (affects escape storage and output snapping).
    pub value_type: ValueType,
}

impl CodecParams {
    /// 1-D stream with a pointwise absolute error bound — the configuration
    /// used by the zMesh pipeline.
    pub fn abs_1d(bound: f64) -> Self {
        Self {
            control: ErrorControl::Absolute(bound),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        }
    }

    /// 1-D stream with a value-range-relative bound.
    pub fn rel_1d(rel: f64) -> Self {
        Self {
            control: ErrorControl::ValueRangeRelative(rel),
            dims: [0, 0, 0],
            value_type: ValueType::F64,
        }
    }

    /// Marks the source data as single precision.
    pub fn as_f32(mut self) -> Self {
        self.value_type = ValueType::F32;
        self
    }

    /// Explicit 2-D grid (nx fastest-varying).
    pub fn with_dims_2d(mut self, nx: usize, ny: usize) -> Self {
        self.dims = [nx, ny, 0];
        self
    }

    /// Explicit 3-D grid (nx fastest-varying).
    pub fn with_dims_3d(mut self, nx: usize, ny: usize, nz: usize) -> Self {
        self.dims = [nx, ny, nz];
        self
    }

    /// Effective dimensionality implied by `dims`.
    pub fn dimensionality(&self) -> usize {
        match self.dims {
            [0, 0, 0] => 1,
            [_, _, 0] => 2,
            _ => 3,
        }
    }
}

/// Errors produced by compression or decompression.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The requested error bound is not positive/finite.
    InvalidBound(f64),
    /// Input contains NaN/Inf and the codec cannot represent it.
    NonFiniteInput { index: usize },
    /// `ValueType::F32` was requested but a value is not representable in
    /// single precision.
    NotSinglePrecision { index: usize },
    /// Declared dims do not match the data length.
    DimsMismatch { expected: usize, actual: usize },
    /// The compressed stream is malformed.
    Corrupt(&'static str),
    /// The compressed stream was produced by a different codec/version.
    WrongMagic,
    /// Chunked compression was requested with parameters it cannot honor.
    ChunkParams(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidBound(b) => write!(f, "invalid error bound: {b}"),
            CodecError::NonFiniteInput { index } => {
                write!(f, "non-finite input value at index {index}")
            }
            CodecError::NotSinglePrecision { index } => {
                write!(f, "value at index {index} is not representable as f32")
            }
            CodecError::DimsMismatch { expected, actual } => {
                write!(f, "dims imply {expected} values but stream has {actual}")
            }
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::WrongMagic => write!(f, "stream magic/version mismatch"),
            CodecError::ChunkParams(what) => write!(f, "chunked compression: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A 1-D stream compressed as independently decodable chunks (the entry
/// point the chunked container format v2 builds on).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedStream {
    /// Self-describing compressed payloads, one per `chunk_values`-sized
    /// run of the input (the last may cover fewer values). Each decodes
    /// on its own with [`Codec::decompress`].
    pub payloads: Vec<Vec<u8>>,
    /// Values covered by each payload, in order.
    pub chunk_lens: Vec<usize>,
    /// The absolute error bound every chunk was compressed under, resolved
    /// over the *whole* stream (so relative bounds match the monolithic
    /// path). `None` for fixed-rate / fixed-precision control.
    pub resolved_bound: Option<f64>,
}

/// An error-bounded lossy codec over `f64` streams.
pub trait Codec {
    /// Compresses `data` under `params`, returning a self-describing buffer.
    fn compress(&self, data: &[f64], params: &CodecParams) -> Result<Vec<u8>, CodecError>;

    /// Decompresses a buffer produced by [`Codec::compress`].
    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError>;

    /// Stable identifier for harness output.
    fn kind(&self) -> CodecKind;

    /// Compresses `data` as a sequence of independently decodable chunks of
    /// `chunk_values` values each (last chunk may be short), in parallel.
    ///
    /// Value-range-relative bounds are resolved against the **whole**
    /// stream first, so every chunk honors the same pointwise absolute
    /// bound and the result is distortion-equivalent to the monolithic
    /// path. Only 1-D params are accepted — chunk boundaries would cut
    /// through rows of a declared 2-D/3-D grid.
    fn compress_chunks(
        &self,
        data: &[f64],
        params: &CodecParams,
        chunk_values: usize,
    ) -> Result<ChunkedStream, CodecError>
    where
        Self: Sync,
    {
        use rayon::prelude::*;

        if chunk_values == 0 {
            return Err(CodecError::ChunkParams("chunk size must be positive"));
        }
        if params.dimensionality() != 1 {
            return Err(CodecError::ChunkParams("requires 1-D params"));
        }
        let mut params = *params;
        let resolved_bound = params.control.absolute_bound(data);
        if let Some(bound) = resolved_bound {
            params.control = ErrorControl::Absolute(bound);
        }
        let chunks: Vec<&[f64]> = data.chunks(chunk_values).collect();
        let payloads: Result<Vec<Vec<u8>>, CodecError> = chunks
            .par_iter()
            .map(|chunk| self.compress(chunk, &params))
            .collect();
        Ok(ChunkedStream {
            payloads: payloads?,
            chunk_lens: chunks.iter().map(|c| c.len()).collect(),
            resolved_bound,
        })
    }

    /// Decodes and concatenates a chunk sequence produced by
    /// [`Codec::compress_chunks`] (the full-stream inverse; readers wanting
    /// a subset decode individual payloads with [`Codec::decompress`]).
    fn decompress_chunks(&self, payloads: &[Vec<u8>]) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        for payload in payloads {
            out.extend(self.decompress(payload)?);
        }
        Ok(out)
    }
}

/// Identifies a codec in harness output and container headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// The SZ-style predictive codec.
    Sz,
    /// The ZFP-style transform codec.
    Zfp,
}

impl CodecKind {
    /// Short label used by the benchmark harness output.
    pub fn label(&self) -> &'static str {
        match self {
            CodecKind::Sz => "sz",
            CodecKind::Zfp => "zfp",
        }
    }

    /// Container-header tag.
    pub fn tag(&self) -> u8 {
        match self {
            CodecKind::Sz => 1,
            CodecKind::Zfp => 2,
        }
    }

    /// Inverse of [`CodecKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(CodecKind::Sz),
            2 => Some(CodecKind::Zfp),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_bound_resolves_against_range() {
        let data = [0.0, 5.0, 10.0];
        let c = ErrorControl::ValueRangeRelative(1e-2);
        assert_eq!(c.absolute_bound(&data), Some(0.1));
        assert_eq!(ErrorControl::Absolute(0.5).absolute_bound(&data), Some(0.5));
        assert_eq!(ErrorControl::FixedRate(8.0).absolute_bound(&data), None);
    }

    #[test]
    fn relative_bound_of_constant_data_is_zero() {
        let data = [2.0; 8];
        assert_eq!(
            ErrorControl::ValueRangeRelative(1e-3).absolute_bound(&data),
            Some(0.0)
        );
    }

    #[test]
    fn params_dimensionality() {
        assert_eq!(CodecParams::abs_1d(0.1).dimensionality(), 1);
        assert_eq!(
            CodecParams::abs_1d(0.1).with_dims_2d(8, 8).dimensionality(),
            2
        );
        assert_eq!(
            CodecParams::abs_1d(0.1)
                .with_dims_3d(4, 4, 4)
                .dimensionality(),
            3
        );
    }

    #[test]
    fn chunk_params_validation() {
        let codec = crate::SzCodec::default();
        let data = vec![1.0; 64];
        assert!(matches!(
            codec.compress_chunks(&data, &CodecParams::abs_1d(1e-3), 0),
            Err(CodecError::ChunkParams(_))
        ));
        let grid = CodecParams::abs_1d(1e-3).with_dims_2d(8, 8);
        assert!(matches!(
            codec.compress_chunks(&data, &grid, 16),
            Err(CodecError::ChunkParams(_))
        ));
    }

    #[test]
    fn chunked_round_trip_matches_monolithic_bound() {
        for codec in [
            Box::new(crate::SzCodec::default()) as Box<dyn Codec + Sync>,
            Box::new(crate::ZfpCodec),
        ] {
            let data: Vec<f64> = (0..1000)
                .map(|i| (i as f64 * 0.02).sin() + 0.3 * (i as f64 * 0.11).cos())
                .collect();
            let bound = 1e-4;
            let stream = codec
                .compress_chunks(&data, &CodecParams::abs_1d(bound), 137)
                .unwrap();
            assert_eq!(stream.payloads.len(), 1000usize.div_ceil(137));
            assert_eq!(stream.chunk_lens.iter().sum::<usize>(), 1000);
            assert_eq!(stream.resolved_bound, Some(bound));
            let out = codec.decompress_chunks(&stream.payloads).unwrap();
            assert_eq!(out.len(), data.len());
            for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
                assert!((a - b).abs() <= bound, "idx {i}: |{a} - {b}| > {bound}");
            }
        }
    }

    #[test]
    fn relative_bound_resolves_globally_not_per_chunk() {
        // First chunk is constant: a per-chunk relative resolution would
        // give it a zero bound; global resolution must use the full range.
        let mut data = vec![5.0; 100];
        data.extend((0..100).map(|i| i as f64));
        let codec = crate::SzCodec::default();
        let stream = codec
            .compress_chunks(&data, &CodecParams::rel_1d(1e-3), 100)
            .unwrap();
        let global_bound = 1e-3 * 99.0;
        assert!((stream.resolved_bound.unwrap() - global_bound).abs() < 1e-12);
        let out = codec.decompress_chunks(&stream.payloads).unwrap();
        for (&a, &b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= global_bound);
        }
    }

    #[test]
    fn each_chunk_decodes_independently() {
        let data: Vec<f64> = (0..300).map(|i| (i as f64).sqrt()).collect();
        let codec = crate::ZfpCodec;
        let stream = codec
            .compress_chunks(&data, &CodecParams::abs_1d(1e-6), 100)
            .unwrap();
        // Decode only the middle chunk.
        let mid = codec.decompress(&stream.payloads[1]).unwrap();
        assert_eq!(mid.len(), 100);
        for (i, &v) in mid.iter().enumerate() {
            assert!((v - data[100 + i]).abs() <= 1e-6);
        }
    }

    #[test]
    fn codec_kind_tags_round_trip() {
        for kind in [CodecKind::Sz, CodecKind::Zfp] {
            assert_eq!(CodecKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(CodecKind::from_tag(99), None);
    }
}
