//! # zmesh-codecs — error-bounded lossy compressors, from scratch
//!
//! The zMesh paper evaluates its reordering with the two dominant
//! error-bounded lossy compressors of its era, SZ and ZFP. Neither is
//! available here as a Rust library, so this crate re-implements both
//! pipelines from scratch (see `DESIGN.md` §2 for the substitution
//! rationale):
//!
//! * [`sz`] — a prediction-based compressor in the style of SZ 1.4:
//!   per-chunk predictor selection (last-value / linear / quadratic),
//!   linear-scaling quantization against an absolute error bound, canonical
//!   Huffman coding of the quantization codes, verbatim storage of
//!   unpredictable points.
//! * [`zfp`] — a transform-based compressor in the style of ZFP 0.5:
//!   4 / 4×4 / 4×4×4 blocks, block-floating-point, lifted decorrelating
//!   transform, total-sequency coefficient order, negabinary, embedded
//!   group-tested bit-plane coding; fixed-accuracy and fixed-rate modes.
//! * [`lossless`] — the lossless substrate both build on: canonical Huffman,
//!   PackBits RLE, and LZSS.
//!
//! Both lossy codecs implement the [`Codec`] trait and honor the configured
//! absolute error bound **pointwise** (property-tested in `tests/`).

pub mod lossless;
pub mod sz;
pub mod zfp;

mod traits;
pub(crate) mod varint;

pub use sz::{EntropyCoder, SzCodec};
pub use traits::{
    ChunkedStream, Codec, CodecError, CodecKind, CodecParams, ErrorControl, ValueType,
};
pub use zfp::ZfpCodec;
