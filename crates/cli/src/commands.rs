//! The six subcommands.

use crate::args::Args;
use zmesh::{CompressionConfig, OrderingPolicy, Pipeline};
use zmesh_amr::datasets::{self, Dataset, Scale};
use zmesh_amr::{load_dataset, save_dataset, AmrField, DatasetStats, StorageMode};
use zmesh_codecs::{CodecKind, ErrorControl};
use zmesh_metrics::ErrorStats;

fn parse_scale(args: &Args) -> Result<Scale, String> {
    match args.option("scale").unwrap_or("small") {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "standard" => Ok(Scale::Standard),
        other => Err(format!("unknown scale {other:?}")),
    }
}

fn parse_mode(args: &Args) -> Result<StorageMode, String> {
    match args.option("mode").unwrap_or("all") {
        "leaf" => Ok(StorageMode::LeafOnly),
        "all" => Ok(StorageMode::AllCells),
        other => Err(format!("unknown mode {other:?} (leaf|all)")),
    }
}

fn parse_policy(args: &Args) -> Result<OrderingPolicy, String> {
    match args.option("policy").unwrap_or("hilbert") {
        "baseline" | "levelorder" => Ok(OrderingPolicy::LevelOrder),
        "zorder" => Ok(OrderingPolicy::ZOrder),
        "hilbert" => Ok(OrderingPolicy::Hilbert),
        other => Err(format!("unknown policy {other:?} (baseline|zorder|hilbert)")),
    }
}

fn parse_codec(args: &Args) -> Result<CodecKind, String> {
    match args.option("codec").unwrap_or("sz") {
        "sz" => Ok(CodecKind::Sz),
        "zfp" => Ok(CodecKind::Zfp),
        other => Err(format!("unknown codec {other:?} (sz|zfp)")),
    }
}

fn parse_control(args: &Args) -> Result<ErrorControl, String> {
    match (args.float("abs-eb")?, args.float("rel-eb")?) {
        (Some(_), Some(_)) => Err("--abs-eb and --rel-eb are mutually exclusive".into()),
        (Some(abs), None) => Ok(ErrorControl::Absolute(abs)),
        (None, Some(rel)) => Ok(ErrorControl::ValueRangeRelative(rel)),
        (None, None) => Ok(ErrorControl::ValueRangeRelative(1e-4)),
    }
}

/// `zmesh generate <preset> -o file.zmd`
pub fn generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let preset = args.positional(0, "preset name")?;
    let out = args.required("output")?;
    let ds = datasets::by_name(preset, parse_mode(&args)?, parse_scale(&args)?)
        .ok_or_else(|| {
            format!(
                "unknown preset {preset:?}; available: {}",
                datasets::names().join(", ")
            )
        })?;
    save_dataset(out, &ds).map_err(|e| e.to_string())?;
    let stats = DatasetStats::compute(&ds.tree);
    println!(
        "wrote {out}: {} levels, {} cells, {} quantities, {} bytes raw",
        stats.levels.len(),
        stats.total_cells,
        ds.fields.len(),
        ds.nbytes()
    );
    Ok(())
}

/// `zmesh compress <in.zmd> -o <out.zmc> [--policy] [--codec] [--rel-eb|--abs-eb]`
pub fn compress(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "input dataset (.zmd)")?;
    let out = args.required("output")?;
    let ds = load_dataset(input).map_err(|e| e.to_string())?;
    let config = CompressionConfig {
        policy: parse_policy(&args)?,
        codec: parse_codec(&args)?,
        control: parse_control(&args)?,
    };
    let fields: Vec<(&str, &AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let compressed = Pipeline::new(config)
        .compress(&fields)
        .map_err(|e| e.to_string())?;
    std::fs::write(out, &compressed.bytes).map_err(|e| e.to_string())?;
    let s = compressed.stats;
    println!(
        "wrote {out}: {} -> {} bytes (ratio {:.2}) | recipe {:.2} ms, reorder {:.2} ms, encode {:.2} ms",
        s.raw_bytes,
        s.container_bytes,
        s.ratio(),
        s.recipe_ns as f64 / 1e6,
        s.reorder_ns as f64 / 1e6,
        s.encode_ns as f64 / 1e6,
    );
    Ok(())
}

/// `zmesh decompress <in.zmc> -o <out.zmd>`
pub fn decompress(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "input container (.zmc)")?;
    let out = args.required("output")?;
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let restored = Pipeline::decompress(&bytes).map_err(|e| e.to_string())?;
    let ds = Dataset {
        name: "restored".to_string(),
        description: String::new(),
        tree: restored.tree,
        fields: restored.fields,
    };
    save_dataset(out, &ds).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} quantities restored ({:?} ordering, recipe rebuilt in {:.2} ms)",
        ds.fields.len(),
        restored.policy,
        restored.recipe_ns as f64 / 1e6
    );
    Ok(())
}

/// `zmesh extract <in.zmc> --field <name> -o <out.zmd>` — selective decode.
pub fn extract(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "input container (.zmc)")?;
    let name = args.required("field")?;
    let out = args.required("output")?;
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let (tree, field) = Pipeline::decompress_field(&bytes, name).map_err(|e| {
        if let Ok(fields) = Pipeline::list_fields(&bytes) {
            format!("{e} (available: {})", fields.join(", "))
        } else {
            e.to_string()
        }
    })?;
    let ds = Dataset {
        name: name.to_string(),
        description: String::new(),
        tree,
        fields: vec![(name.to_string(), field)],
    };
    save_dataset(out, &ds).map_err(|e| e.to_string())?;
    println!("wrote {out}: field {name:?} ({} values)", ds.fields[0].1.len());
    Ok(())
}

/// `zmesh info <file>` — dataset or container, decided by magic.
pub fn info(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let input = args.positional(0, "input file")?;
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    if bytes.starts_with(zmesh::CONTAINER_MAGIC) {
        let header = zmesh::ContainerHeader::parse(&bytes).map_err(|e| e.to_string())?;
        println!(
            "zMesh container: policy {:?}, codec {}, {} fields, {} bytes total ({} metadata)",
            header.policy,
            header.codec.label(),
            header.fields.len(),
            bytes.len(),
            header.header_bytes
        );
        for (name, range) in &header.fields {
            println!("  field {name:?}: {} payload bytes", range.len());
        }
    } else {
        let ds = load_dataset(input).map_err(|e| e.to_string())?;
        let stats = DatasetStats::compute(&ds.tree);
        println!(
            "dataset {:?}: {} levels, {} cells ({} leaves), {} quantities, {} bytes raw",
            ds.name,
            stats.levels.len(),
            stats.total_cells,
            stats.total_leaves,
            ds.fields.len(),
            ds.nbytes()
        );
        for l in &stats.levels {
            println!("  level {}: {} cells, {} leaves", l.level, l.cells, l.leaves);
        }
    }
    Ok(())
}

/// `zmesh verify <orig.zmd> <restored.zmd> [--rel-eb 1e-4]`
pub fn verify(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let orig = load_dataset(args.positional(0, "original dataset")?).map_err(|e| e.to_string())?;
    let rest = load_dataset(args.positional(1, "restored dataset")?).map_err(|e| e.to_string())?;
    if orig.fields.len() != rest.fields.len() {
        return Err(format!(
            "field count mismatch: {} vs {}",
            orig.fields.len(),
            rest.fields.len()
        ));
    }
    let rel_eb = args.float("rel-eb")?.unwrap_or(1e-4);
    let mut ok = true;
    for ((name, a), (_, b)) in orig.fields.iter().zip(&rest.fields) {
        if a.len() != b.len() {
            return Err(format!("field {name:?}: length mismatch"));
        }
        let stats = ErrorStats::between(a.values(), b.values());
        let bound = rel_eb * stats.range;
        let pass = stats.max_abs <= bound * (1.0 + 1e-9);
        ok &= pass;
        println!(
            "field {name:?}: max_err {:.3e} (bound {:.3e}) psnr {:.1} dB -> {}",
            stats.max_abs,
            bound,
            stats.psnr_db,
            if pass { "OK" } else { "FAIL" }
        );
    }
    if ok {
        Ok(())
    } else {
        Err("verification failed".into())
    }
}
