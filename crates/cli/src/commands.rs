//! The subcommands.

use crate::args::Args;
use crate::error::CliError;
use zmesh::{CompressionConfig, OrderingPolicy, Pipeline};
use zmesh_amr::datasets::{self, Dataset, Scale};
use zmesh_amr::{load_dataset, save_dataset, AmrField, DatasetStats, StorageMode};
use zmesh_codecs::{CodecKind, ErrorControl};
use zmesh_metrics::ErrorStats;
#[cfg(unix)]
use zmesh_store::FileSource;
use zmesh_store::{
    ByteSource, DamageReport, Parity, Query, RawSource, ReadPolicy, RecipeCache, RepairOutcome,
    RepairSource, SalvageFill, StoreError, StoreReader, StoreWriteStats, StoreWriter,
    StreamOptions, DEFAULT_PARITY_GROUP_WIDTH,
};

fn parse_scale(args: &Args) -> Result<Scale, CliError> {
    match args.option("scale").unwrap_or("small") {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "standard" => Ok(Scale::Standard),
        other => Err(CliError::Usage(format!("unknown scale {other:?}"))),
    }
}

fn parse_mode(args: &Args) -> Result<StorageMode, CliError> {
    match args.option("mode").unwrap_or("all") {
        "leaf" => Ok(StorageMode::LeafOnly),
        "all" => Ok(StorageMode::AllCells),
        other => Err(CliError::Usage(format!(
            "unknown mode {other:?} (leaf|all)"
        ))),
    }
}

fn parse_policy(args: &Args) -> Result<OrderingPolicy, CliError> {
    match args.option("policy").unwrap_or("hilbert") {
        "baseline" | "levelorder" => Ok(OrderingPolicy::LevelOrder),
        "zorder" => Ok(OrderingPolicy::ZOrder),
        "hilbert" => Ok(OrderingPolicy::Hilbert),
        other => Err(CliError::Usage(format!(
            "unknown policy {other:?} (baseline|zorder|hilbert)"
        ))),
    }
}

fn parse_codec(args: &Args) -> Result<CodecKind, CliError> {
    match args.option("codec").unwrap_or("sz") {
        "sz" => Ok(CodecKind::Sz),
        "zfp" => Ok(CodecKind::Zfp),
        other => Err(CliError::Usage(format!("unknown codec {other:?} (sz|zfp)"))),
    }
}

fn parse_control(args: &Args) -> Result<ErrorControl, CliError> {
    let abs = args.float("abs-eb").map_err(CliError::Usage)?;
    let rel = args.float("rel-eb").map_err(CliError::Usage)?;
    match (abs, rel) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--abs-eb and --rel-eb are mutually exclusive".into(),
        )),
        (Some(abs), None) => Ok(ErrorControl::Absolute(abs)),
        (None, Some(rel)) => Ok(ErrorControl::ValueRangeRelative(rel)),
        (None, None) => Ok(ErrorControl::ValueRangeRelative(1e-4)),
    }
}

/// Parses the erasure-protection scheme: `--parity none|xor[:W]|rs:K,M`
/// (or the legacy `--parity-width N`, where 0 means none and `N > 0` an
/// XOR group of `N`). Returns `None` when neither flag was given.
fn parse_parity(args: &Args) -> Result<Option<Parity>, CliError> {
    let spec = match (args.option("parity"), args.option("parity-width")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--parity and --parity-width are mutually exclusive".into(),
            ))
        }
        (None, Some(w)) => {
            let width: u32 = w
                .parse()
                .map_err(|_| CliError::Usage(format!("--parity-width: not a count: {w}")))?;
            return Ok(Some(if width == 0 {
                Parity::None
            } else {
                Parity::Xor { width }
            }));
        }
        (Some(s), None) => s,
        (None, None) => return Ok(None),
    };
    let bad = || {
        CliError::Usage(format!(
            "--parity {spec:?}: want none, xor, xor:WIDTH, or rs:DATA,PARITY"
        ))
    };
    let parity = if spec == "none" {
        Parity::None
    } else if spec == "xor" {
        Parity::Xor {
            width: DEFAULT_PARITY_GROUP_WIDTH,
        }
    } else if let Some(w) = spec.strip_prefix("xor:") {
        Parity::Xor {
            width: w.parse().map_err(|_| bad())?,
        }
    } else if let Some(km) = spec.strip_prefix("rs:") {
        let (k, m) = km.split_once(',').ok_or_else(bad)?;
        Parity::Rs {
            data: k.trim().parse().map_err(|_| bad())?,
            parity: m.trim().parse().map_err(|_| bad())?,
        }
    } else {
        return Err(bad());
    };
    Ok(Some(parity))
}

fn parse_config(args: &Args) -> Result<CompressionConfig, CliError> {
    Ok(CompressionConfig {
        policy: parse_policy(args)?,
        codec: parse_codec(args)?,
        control: parse_control(args)?,
    })
}

fn parse(argv: &[String]) -> Result<Args, CliError> {
    Args::parse(argv).map_err(CliError::Usage)
}

fn positional<'a>(args: &'a Args, i: usize, what: &str) -> Result<&'a str, CliError> {
    args.positional(i, what).map_err(CliError::Usage)
}

fn required<'a>(args: &'a Args, name: &str) -> Result<&'a str, CliError> {
    args.required(name).map_err(CliError::Usage)
}

fn read_file(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|e| CliError::io(path, e))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|e| CliError::io(path, e))
}

/// Opens `path` as a ranged [`FileSource`]: only the footer and the chunk
/// ranges a command actually touches are ever read, so store commands stay
/// O(touched bytes) in memory instead of O(file size). The `--in-memory`
/// switch on each store command falls back to the historical
/// whole-file-in-RAM path.
#[cfg(unix)]
fn ranged_source(path: &str) -> Result<FileSource, CliError> {
    FileSource::open(path).map_err(CliError::from)
}

fn field_refs(ds: &Dataset) -> Vec<(&str, &AmrField)> {
    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
}

/// `zmesh generate <preset> -o file.zmd`
pub fn generate(argv: &[String]) -> Result<(), CliError> {
    let args = parse(argv)?;
    let preset = positional(&args, 0, "preset name")?;
    let out = required(&args, "output")?;
    let ds =
        datasets::by_name(preset, parse_mode(&args)?, parse_scale(&args)?).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown preset {preset:?}; available: {}",
                datasets::names().join(", ")
            ))
        })?;
    save_dataset(out, &ds)?;
    let stats = DatasetStats::compute(&ds.tree);
    println!(
        "wrote {out}: {} levels, {} cells, {} quantities, {} bytes raw",
        stats.levels.len(),
        stats.total_cells,
        ds.fields.len(),
        ds.nbytes()
    );
    Ok(())
}

/// `zmesh compress <in.zmd> -o <out.zmc> [--policy] [--codec] [--rel-eb|--abs-eb]`
pub fn compress(argv: &[String]) -> Result<(), CliError> {
    let args = parse(argv)?;
    let input = positional(&args, 0, "input dataset (.zmd)")?;
    let out = required(&args, "output")?;
    let ds = load_dataset(input)?;
    let compressed = Pipeline::new(parse_config(&args)?).compress(&field_refs(&ds))?;
    write_file(out, &compressed.bytes)?;
    let s = compressed.stats;
    println!(
        "wrote {out}: {} -> {} bytes (ratio {:.2}) | recipe {:.2} ms, reorder {:.2} ms, encode {:.2} ms",
        s.raw_bytes,
        s.container_bytes,
        s.ratio(),
        s.recipe_ns as f64 / 1e6,
        s.reorder_ns as f64 / 1e6,
        s.encode_ns as f64 / 1e6,
    );
    Ok(())
}

/// `zmesh decompress <in.zmc> -o <out.zmd>`
pub fn decompress(argv: &[String]) -> Result<(), CliError> {
    let args = parse(argv)?;
    let input = positional(&args, 0, "input container (.zmc)")?;
    let out = required(&args, "output")?;
    let bytes = read_file(input)?;
    let restored = Pipeline::decompress(&bytes)?;
    let ds = Dataset {
        name: "restored".to_string(),
        description: String::new(),
        tree: restored.tree,
        fields: restored.fields,
    };
    save_dataset(out, &ds)?;
    println!(
        "wrote {out}: {} quantities restored ({:?} ordering, recipe rebuilt in {:.2} ms)",
        ds.fields.len(),
        restored.policy,
        restored.recipe_ns as f64 / 1e6
    );
    Ok(())
}

/// `zmesh extract <in.zmc> --field <name> -o <out.zmd>` — selective decode.
pub fn extract(argv: &[String]) -> Result<(), CliError> {
    let args = parse(argv)?;
    let input = positional(&args, 0, "input container (.zmc)")?;
    let name = required(&args, "field")?;
    let out = required(&args, "output")?;
    let bytes = read_file(input)?;
    let (tree, field) = Pipeline::decompress_field(&bytes, name).map_err(|e| {
        if let Ok(fields) = Pipeline::list_fields(&bytes) {
            CliError::Usage(format!("{e} (available: {})", fields.join(", ")))
        } else {
            CliError::from(e)
        }
    })?;
    let ds = Dataset {
        name: name.to_string(),
        description: String::new(),
        tree,
        fields: vec![(name.to_string(), field)],
    };
    save_dataset(out, &ds)?;
    println!(
        "wrote {out}: field {name:?} ({} values)",
        ds.fields[0].1.len()
    );
    Ok(())
}

/// `zmesh pack <in.zmd> -o <out.zms> [--policy] [--codec] [--rel-eb|--abs-eb]
/// [--chunk-kb N] [--parity none|xor[:W]|rs:K,M] [--stream]
/// [--window-bytes N] [--fault-sink SPEC]` — write a chunked,
/// indexed store (v3 with XOR parity by default; `--parity none` writes a
/// plain v2, `--parity rs:K,M` a v4 with `M` Reed–Solomon shards per group
/// of `K` chunks). The output lands via an atomic temp-file + rename, so a
/// crash mid-pack never leaves a half-written store at the target path.
///
/// `--stream` packs through the bounded compress→write window instead of
/// assembling the container in memory — byte-identical output, O(window)
/// peak encode memory (`--window-bytes`, default 8 MiB, 0 = unbounded;
/// either flag implies `--stream`). `--fault-sink` (testing builds only)
/// injects deterministic write faults into the streaming sink for
/// crash-consistency drills; a `crash_at=` plan leaves its torn `.tmp`
/// behind on purpose, the way a real kill would.
pub fn pack(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse_with_switches(argv, &["stream"]).map_err(CliError::Usage)?;
    let input = positional(&args, 0, "input dataset (.zmd)")?;
    let out = required(&args, "output")?;
    let ds = load_dataset(input)?;
    let mut writer = StoreWriter::new(parse_config(&args)?);
    if let Some(kb) = args.float("chunk-kb").map_err(CliError::Usage)? {
        let valid = kb.is_finite() && kb > 0.0;
        if !valid {
            return Err(CliError::Usage("--chunk-kb must be positive".into()));
        }
        writer = writer.with_chunk_target_bytes((kb * 1024.0) as u32);
    }
    if let Some(parity) = parse_parity(&args)? {
        writer = writer.with_parity(parity);
    }
    let window = args
        .option("window-bytes")
        .map(|w| {
            w.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("--window-bytes {w:?} is not a byte count")))
        })
        .transpose()?;
    let stream = args.switch("stream") || window.is_some() || args.option("fault-sink").is_some();
    let s = if stream {
        let opts = StreamOptions {
            window_bytes: window.unwrap_or_else(|| StreamOptions::default().window_bytes),
            ..StreamOptions::default()
        };
        pack_streaming(&args, &ds, out, &writer, &opts)?
    } else {
        writer
            .write_to_path(&field_refs(&ds), std::path::Path::new(out))?
            .stats
    };
    println!(
        "wrote {out}: {} -> {} bytes (ratio {:.2}) | {} fields x {} chunks, {} parity bytes ({} groups), {} index bytes{}",
        s.raw_bytes,
        s.container_bytes,
        s.ratio(),
        s.n_fields,
        s.n_chunks,
        s.parity_bytes,
        s.parity_groups,
        s.metadata_bytes,
        if s.streamed {
            format!(
                " | streamed (window {} bytes, peak buffer {} bytes)",
                s.window_bytes, s.peak_buffer_bytes
            )
        } else {
            String::new()
        },
    );
    Ok(())
}

/// The streaming leg of `pack`, honoring `--fault-sink <spec>` in testing
/// builds: the plan wraps the file sink in a deterministic write-fault
/// injector (see `zmesh_store::faultinject::FaultSpec::parse` for the
/// grammar). Release builds reject the flag instead of silently packing
/// clean.
#[cfg(unix)]
fn pack_streaming(
    args: &Args,
    ds: &Dataset,
    out: &str,
    writer: &StoreWriter,
    opts: &StreamOptions,
) -> Result<StoreWriteStats, CliError> {
    match args.option("fault-sink") {
        None => {
            Ok(writer.write_streaming_to_path(&field_refs(ds), std::path::Path::new(out), opts)?)
        }
        #[cfg(feature = "testing")]
        Some(spec) => {
            let plan = zmesh_store::faultinject::FaultSpec::parse(spec)
                .map_err(|e| CliError::Usage(format!("--fault-sink: {e}")))?;
            eprintln!("pack: write fault injection active: {spec}");
            let sink = zmesh_store::FileSink::create(std::path::Path::new(out))?;
            let mut sink = zmesh_store::faultinject::FaultSink::new(sink, plan);
            let stats = writer.write_to_sink(&field_refs(ds), &mut sink, opts);
            if sink.stats().crashed {
                // A real kill never runs cleanup: leave the torn tmp for
                // the atomicity harness to examine.
                sink.inner_mut().preserve_tmp_on_drop();
            }
            Ok(stats?)
        }
        #[cfg(not(feature = "testing"))]
        Some(_) => Err(CliError::Usage(
            "--fault-sink requires a testing build: \
             cargo build -p zmesh-cli --features testing"
                .into(),
        )),
    }
}

#[cfg(not(unix))]
fn pack_streaming(
    _args: &Args,
    _ds: &Dataset,
    _out: &str,
    _writer: &StoreWriter,
    _opts: &StreamOptions,
) -> Result<StoreWriteStats, CliError> {
    Err(CliError::Usage(
        "--stream packing needs the unix file sink".into(),
    ))
}

/// Prints a per-field summary of what a salvage read repaired or lost.
fn print_damage(report: &DamageReport) {
    if report.is_empty() {
        return;
    }
    let repaired = report.repaired().count();
    let lost = report.lost().count();
    eprintln!(
        "warning: salvaged read: {} corrupt chunk(s): {repaired} repaired from parity, {lost} lost ({} value(s) filled with {})",
        report.chunks.len(),
        report.total_values_lost(),
        match report.fill {
            SalvageFill::Nan => "NaN",
            SalvageFill::Zero => "0.0",
        },
    );
    for (field, lost) in report.by_field() {
        eprintln!("  field {field:?}: {lost} value(s) lost");
    }
    for g in &report.groups {
        eprintln!(
            "  field {:?}: group {}: {} erasure(s), {} repaired",
            g.field, g.group, g.erasures, g.repaired
        );
    }
    for p in &report.parity {
        eprintln!(
            "  field {:?}: parity group {} shard {} damaged (data intact, healing margin reduced)",
            p.field, p.group, p.shard
        );
    }
}

/// Parses `--salvage-fill nan|zero`.
fn parse_salvage_fill(args: &Args) -> Result<Option<SalvageFill>, CliError> {
    match args.option("salvage-fill") {
        None => Ok(None),
        Some("nan") => Ok(Some(SalvageFill::Nan)),
        Some("zero") => Ok(Some(SalvageFill::Zero)),
        Some(other) => Err(CliError::Usage(format!(
            "unknown salvage fill {other:?} (nan|zero)"
        ))),
    }
}

/// `zmesh unpack <in.zms> -o <out.zmd> [--salvage] [--salvage-fill nan|zero]
/// [--in-memory]` — full decode of a store. With `--salvage`, corrupt
/// chunks are rebuilt from parity where possible; what stays lost decodes
/// to the fill value (NaN by default) and the damage is summarized on
/// stderr instead of failing. `--salvage-fill` implies `--salvage`. Reads
/// stream chunk ranges straight from the file (overlapping I/O with
/// decode) unless `--in-memory` loads the whole store up front.
pub fn unpack(argv: &[String]) -> Result<(), CliError> {
    let args =
        Args::parse_with_switches(argv, &["salvage", "in-memory"]).map_err(CliError::Usage)?;
    let input = positional(&args, 0, "input store (.zms)")?;
    let out = required(&args, "output")?;
    #[cfg(unix)]
    if !args.switch("in-memory") {
        let reader = StoreReader::open_source(ranged_source(input)?)?;
        return unpack_reader(reader, &args, out);
    }
    let bytes = read_file(input)?;
    unpack_reader(StoreReader::open(&bytes)?, &args, out)
}

fn unpack_reader<S: ByteSource>(
    mut reader: StoreReader<S>,
    args: &Args,
    out: &str,
) -> Result<(), CliError> {
    let fill = parse_salvage_fill(args)?;
    if args.switch("salvage") || fill.is_some() {
        reader = reader.with_read_policy(ReadPolicy::Salvage {
            fill: fill.unwrap_or_default(),
        });
    }
    let mut fields = Vec::new();
    let mut damage = DamageReport {
        fill: fill.unwrap_or_default(),
        ..DamageReport::default()
    };
    for name in reader.field_names() {
        let name = name.to_string();
        let (field, report) = reader.decode_field_with_report(&name)?;
        damage.merge(report);
        fields.push((name, field));
    }
    let ds = Dataset {
        name: "restored".to_string(),
        description: String::new(),
        tree: std::sync::Arc::clone(reader.tree()),
        fields,
    };
    save_dataset(out, &ds)?;
    print_damage(&damage);
    println!(
        "wrote {out}: {} quantities restored from v{} store",
        ds.fields.len(),
        reader.header().version,
    );
    Ok(())
}

/// `zmesh scrub <in.zms> [--in-memory]` — verify every data and parity
/// chunk's CRC without decoding payloads and print a JSON damage summary
/// (including `bytes_read` vs `store_bytes` and the CRC-walk throughput as
/// `elapsed_secs`/`bytes_per_s`) on stdout. Exit 0 when clean,
/// 6 when all damage is parity-recoverable, 4 when any chunk is beyond
/// parity, 7 when the store is a torn (incomplete) write. The store is
/// streamed span by span unless `--in-memory` loads it whole.
pub fn scrub(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse_with_switches(argv, &["in-memory"]).map_err(CliError::Usage)?;
    let input = positional(&args, 0, "input store (.zms)")?;
    let scrubbed;
    #[cfg(unix)]
    {
        scrubbed = if args.switch("in-memory") {
            zmesh_store::scrub(&read_file(input)?)
        } else {
            zmesh_store::scrub_source(&ranged_source(input)?)
        };
    }
    #[cfg(not(unix))]
    {
        scrubbed = zmesh_store::scrub(&read_file(input)?);
    }
    let report = match scrubbed {
        Err(StoreError::Torn) => {
            println!("{{\"torn\":true,\"clean\":false}}");
            return Err(CliError::Torn(
                "store is torn (incomplete write, no commit record): \
                 rerun the writer or `zmesh repair --from-raw <dataset.zmd>`"
                    .into(),
            ));
        }
        other => other?,
    };
    println!("{}", report.to_json());
    if !report.parity_available {
        eprintln!(
            "note: no parity available (v{} store, width 0): damage is not self-healable",
            report.version
        );
    }
    if report.is_clean() {
        Ok(())
    } else if report.unrecoverable() == 0 {
        Err(CliError::Recoverable(format!(
            "{} damaged chunk(s), all recoverable — run `zmesh repair`",
            report.damaged.len()
        )))
    } else {
        Err(CliError::Corrupt(format!(
            "{} damaged chunk(s), {} beyond parity recovery",
            report.damaged.len(),
            report.unrecoverable()
        )))
    }
}

/// `zmesh repair <in.zms> -o <out.zms> [--replica <other.zms>]
/// [--from-raw <dataset.zmd>] [--in-memory]` — rewrite a damaged store by
/// rebuilding
/// chunks from parity (XOR or Reed–Solomon), then from a structurally
/// identical `--replica` copy, then by re-encoding lost chunks from the
/// original `--from-raw` dataset; the avenues cascade until nothing more
/// heals. A *torn* store (interrupted write, no commit record) is rebuilt
/// from `--from-raw` wholesale — accepted only when the result extends the
/// torn prefix byte-for-byte — or, without `--from-raw`, salvaged down to
/// every field's intact whole-chunk prefix (lossless when only the
/// trailing commit record was lost; exit 6 when chunks were dropped).
/// The output is written only when every chunk was recovered; otherwise
/// the losses are listed and the exit code is 4.
pub fn repair(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse_with_switches(argv, &["in-memory"]).map_err(CliError::Usage)?;
    let input = positional(&args, 0, "input store (.zms)")?;
    let out = required(&args, "output")?;
    let raw_ds = args.option("from-raw").map(load_dataset).transpose()?;
    #[cfg(unix)]
    if !args.switch("in-memory") {
        let src = ranged_source(input)?;
        if matches!(zmesh_store::open_parts_source(&src), Err(StoreError::Torn)) {
            // Torn handling scans (or compares against) the whole torn
            // prefix, so only this path still loads the file.
            return match &raw_ds {
                Some(ds) => rebuild_torn(&read_file(input)?, ds, &args, out),
                None => salvage_torn_prefix(&read_file(input)?, out),
            };
        }
        let replica = args.option("replica").map(ranged_source).transpose()?;
        let raw_fields = raw_ds.as_ref().map(field_refs);
        let raw = raw_fields.as_deref().map(RawSource::new);
        let outcome = zmesh_store::repair_with_sources(&src, replica.as_ref(), raw.as_ref())?;
        let had_sources = replica.is_some() || raw_ds.is_some();
        return report_repair(outcome, had_sources, out);
    }
    let bytes = read_file(input)?;
    if matches!(zmesh_store::open_parts(&bytes), Err(StoreError::Torn)) {
        return match &raw_ds {
            Some(ds) => rebuild_torn(&bytes, ds, &args, out),
            None => salvage_torn_prefix(&bytes, out),
        };
    }
    let replica = args.option("replica").map(read_file).transpose()?;
    let raw_fields = raw_ds.as_ref().map(field_refs);
    let raw = raw_fields.as_deref().map(RawSource::new);
    let outcome = zmesh_store::repair_with(&bytes, replica.as_deref(), raw.as_ref())?;
    let had_sources = replica.is_some() || raw_ds.is_some();
    report_repair(outcome, had_sources, out)
}

/// Prints a repair outcome (shared between the ranged and in-memory
/// paths), writes the healed store when complete, and maps losses to the
/// corrupt exit code. The machine-readable summary line goes to stderr
/// with the rest of the progress chatter, keeping stdout reserved for
/// command output.
fn report_repair(outcome: RepairOutcome, had_sources: bool, out: &str) -> Result<(), CliError> {
    for r in &outcome.repaired {
        println!(
            "repaired field {:?} chunk {} from {}",
            r.field,
            r.chunk,
            match r.source {
                RepairSource::Parity => "parity",
                RepairSource::Replica => "replica",
                RepairSource::Raw => "raw data",
            }
        );
    }
    if outcome.parity_rebuilt > 0 {
        println!("rebuilt {} parity chunk(s)", outcome.parity_rebuilt);
    }
    eprintln!(
        "{{\"repaired\":{},\"lost\":{},\"parity_rebuilt\":{},\"bytes_read\":{}}}",
        outcome.repaired.len(),
        outcome.lost.len(),
        outcome.parity_rebuilt,
        outcome.bytes_read,
    );
    match outcome.bytes {
        Some(repaired) => {
            write_file(out, &repaired)?;
            println!(
                "wrote {out}: {} chunk(s) repaired, store verified clean",
                outcome.repaired.len()
            );
            Ok(())
        }
        None => {
            for l in &outcome.lost {
                eprintln!("lost: field {:?} chunk {}: {}", l.field, l.chunk, l.error);
            }
            Err(CliError::Corrupt(format!(
                "{} chunk(s) unrecoverable{}; no output written",
                outcome.lost.len(),
                if had_sources {
                    " even with the extra sources"
                } else {
                    " (try --replica <copy> or --from-raw <dataset.zmd>)"
                },
            )))
        }
    }
}

/// Salvages a torn store without the original dataset: keeps every
/// field's intact whole-chunk prefix, recomputes parity over it, and
/// writes a shorter but fully committed store. Lossless when only the
/// trailing commit record was torn off; otherwise the dropped chunks are
/// listed and the exit code is 6 (recoverable — `--from-raw` can still
/// rebuild them). The machine-readable summary goes to stderr with the
/// rest of the progress chatter, matching [`report_repair`].
fn salvage_torn_prefix(torn: &[u8], out: &str) -> Result<(), CliError> {
    let salvage = zmesh_store::salvage_torn(torn)?;
    eprintln!("{}", salvage.to_json());
    let Some(bytes) = &salvage.bytes else {
        return Err(CliError::Torn(
            "store is torn and no chunk survived intact; pass --from-raw \
             <dataset.zmd> to rebuild it"
                .into(),
        ));
    };
    write_file(out, bytes)?;
    for lost in &salvage.dropped {
        eprintln!(
            "dropped: field {:?} chunk {}: {}",
            lost.field, lost.chunk, lost.error
        );
    }
    println!(
        "wrote {out}: torn store salvaged, kept {}/{} chunk(s) across {} field(s)",
        salvage.chunks_kept, salvage.chunks_total, salvage.fields
    );
    if salvage.dropped.is_empty() {
        Ok(())
    } else {
        Err(CliError::Recoverable(format!(
            "{} chunk(s) beyond the salvaged prefix; pass --from-raw \
             <dataset.zmd> to rebuild them",
            salvage.dropped.len()
        )))
    }
}

/// Rebuilds a torn store from the original dataset: the surviving header
/// prefix supplies the encoding parameters (policy, codec, chunking,
/// parity scheme), the error bound comes from `--rel-eb`/`--abs-eb`
/// (default: the pack default), and the rebuilt store is accepted only
/// when the torn file is a byte-for-byte prefix of it — proof it is the
/// same write, just completed.
fn rebuild_torn(torn: &[u8], ds: &Dataset, args: &Args, out: &str) -> Result<(), CliError> {
    let header = zmesh_store::peek_header(torn)
        .map_err(|e| CliError::Torn(format!("torn store header unreadable: {e}")))?;
    let config = CompressionConfig {
        policy: header.policy,
        codec: header.codec,
        control: parse_control(args)?,
    };
    let writer = StoreWriter::new(config)
        .with_chunk_target_bytes(header.chunk_target_bytes)
        .with_parity(header.scheme());
    let written = writer.write(&field_refs(ds))?;
    if !written.bytes.starts_with(torn) {
        return Err(CliError::Verify(
            "rebuilt store does not extend the torn prefix — the dataset or \
             error bound differ from the original write; no output written"
                .into(),
        ));
    }
    zmesh_store::persist_store(&written.bytes, std::path::Path::new(out))?;
    println!(
        "wrote {out}: torn store rebuilt from raw data ({} bytes, verified against the {}-byte torn prefix)",
        written.bytes.len(),
        torn.len()
    );
    Ok(())
}

/// Parses `x0,y0[,z0]:x1,y1[,z1]` into inclusive finest-grid corners.
fn parse_bbox(spec: &str) -> Result<([u32; 3], [u32; 3]), CliError> {
    let bad = || CliError::Usage(format!("--bbox {spec:?}: want x0,y0[,z0]:x1,y1[,z1]"));
    let corner = |s: &str| -> Result<[u32; 3], CliError> {
        let parts: Vec<u32> = s
            .split(',')
            .map(|t| t.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad())?;
        match parts[..] {
            [x, y] => Ok([x, y, 0]),
            [x, y, z] => Ok([x, y, z]),
            _ => Err(bad()),
        }
    };
    let (lo, hi) = spec.split_once(':').ok_or_else(bad)?;
    Ok((corner(lo)?, corner(hi)?))
}

/// `zmesh query <in.zms> --field <name> --bbox x0,y0[,z0]:x1,y1[,z1]
/// [--level L[,L...]] [--salvage] [--in-memory] [-o out.csv]` — region
/// read decoding only the overlapping chunks. With `--salvage`, corrupt
/// chunks are dropped from the result and summarized on stderr instead of
/// failing. By default only the footer and the selected chunk ranges are
/// read from the file (reported as `read N of M store bytes` on stderr);
/// `--in-memory` loads the whole store first.
pub fn query(argv: &[String]) -> Result<(), CliError> {
    let args =
        Args::parse_with_switches(argv, &["salvage", "in-memory"]).map_err(CliError::Usage)?;
    let input = positional(&args, 0, "input store (.zms)")?;
    let name = required(&args, "field")?;
    let (lo, hi) = parse_bbox(required(&args, "bbox")?)?;
    let mut q = Query::bbox(lo, hi);
    if let Some(spec) = args.option("level") {
        let levels: Vec<u32> = spec
            .split(',')
            .map(|t| t.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| CliError::Usage(format!("--level {spec:?}: want L[,L...]")))?;
        q = q.with_levels(levels);
    }
    #[cfg(unix)]
    if !args.switch("in-memory") {
        let reader = StoreReader::open_source(ranged_source(input)?)?;
        return query_reader(reader, &args, name, &q, lo, hi);
    }
    let bytes = read_file(input)?;
    query_reader(StoreReader::open(&bytes)?, &args, name, &q, lo, hi)
}

fn query_reader<S: ByteSource>(
    mut reader: StoreReader<S>,
    args: &Args,
    name: &str,
    q: &Query,
    lo: [u32; 3],
    hi: [u32; 3],
) -> Result<(), CliError> {
    if args.switch("salvage") {
        reader = reader.with_read_policy(ReadPolicy::salvage());
    }
    let result = reader.query(name, q)?;
    print_damage(&result.damage);
    // Accounting is diagnostics, not command output: stderr, so scripts
    // can parse stdout (and the CSV) without filtering.
    eprintln!(
        "read {} of {} store bytes",
        reader.bytes_read(),
        reader.source().len()
    );
    println!(
        "field {name:?} bbox ({},{},{})..({},{},{}): {} cells | decoded {}/{} chunks{}",
        lo[0],
        lo[1],
        lo[2],
        hi[0],
        hi[1],
        hi[2],
        result.values.len(),
        result.chunks_decoded,
        result.chunks_total,
        match result.bound {
            Some(b) => format!(" | abs bound {b:.3e}"),
            None => String::new(),
        },
    );
    if let Some(out) = args.option("output") {
        let mut csv = String::from("storage_index,value\n");
        for (&s, &v) in result.storage_indices.iter().zip(&result.values) {
            csv.push_str(&format!("{s},{v}\n"));
        }
        write_file(out, csv.as_bytes())?;
        println!("wrote {out}: {} rows", result.values.len());
    }
    Ok(())
}

/// Runs the same corner query twice through a reader wired to a fresh
/// decoded-chunk cache: the first pass misses, the second hits, so the
/// printed counters demonstrate the LRU is live over this store.
fn exercise_chunk_cache<S: ByteSource>(
    reader: StoreReader<S>,
) -> Result<zmesh_store::ChunkCacheStats, CliError> {
    let cache = std::sync::Arc::new(zmesh_store::ChunkCache::new(8 << 20));
    let reader = reader.with_chunk_cache(std::sync::Arc::clone(&cache), 0);
    if let Some(name) = reader.field_names().first().map(|s| s.to_string()) {
        let q = Query::bbox([0, 0, 0], [3, 3, 0]);
        for _ in 0..2 {
            reader.query(&name, &q)?;
        }
    }
    Ok(cache.stats())
}

/// Prints the store summary for `info`, shared between the ranged and
/// in-memory paths. `reopen` opens the store a second time through the
/// same cache when `--stats` asks for the counters; `chunk_probe` opens
/// a chunk-cache-wired reader and reports its counters.
fn info_store<S: ByteSource>(
    reader: &StoreReader<S>,
    cache: &RecipeCache,
    args: &Args,
    reopen: impl FnOnce(&RecipeCache) -> Result<(), CliError>,
    chunk_probe: impl FnOnce() -> Result<zmesh_store::ChunkCacheStats, CliError>,
) -> Result<(), CliError> {
    let h = reader.header();
    let tree = reader.tree();
    println!(
        "zMesh v{} store: policy {:?}, codec {}, {} fields, {} bytes total ({} KiB chunk target, {})",
        h.version,
        h.policy,
        h.codec.label(),
        reader.fields().len(),
        reader.source().len(),
        h.chunk_target_bytes / 1024,
        match h.scheme() {
            Parity::None => "no parity".to_string(),
            Parity::Xor { width } => format!("parity width {width}"),
            Parity::Rs { data, parity } =>
                format!("rs parity {data}+{parity} (heals {parity}/group)"),
        },
    );
    println!(
        "  mesh: {:?}, {} cells ({} leaves), {} levels",
        tree.dim(),
        tree.cell_count(),
        tree.leaf_count(),
        tree.max_level() + 1,
    );
    for entry in reader.fields() {
        let payload: u64 = entry.chunks.iter().map(|c| c.len).sum();
        println!(
            "  field {:?}: {} chunks (+{} parity), {} payload bytes{}",
            entry.name,
            entry.chunks.len(),
            entry.parity.len(),
            payload,
            match entry.resolved_bound {
                Some(b) => format!(", abs bound {b:.3e}"),
                None => String::new(),
            },
        );
    }
    if args.switch("stats") {
        // A second open through the same cache turns the counters
        // over: one miss from the first open, one hit here — plus any
        // collisions or poison recoveries the cache had to absorb.
        reopen(cache)?;
        let s = cache.stats();
        println!(
            "  recipe cache: {} hit(s), {} miss(es), {} collision(s), {} poison recovery(ies), {} entry(ies)",
            s.hits, s.misses, s.collisions, s.poison_recoveries, s.entries
        );
        let chunk = chunk_probe()?;
        println!(
            "  decoded-chunk LRU: {} hit(s), {} miss(es), {} eviction(s), {} coalesced, {} entry(ies), {} bytes",
            chunk.hits, chunk.misses, chunk.evictions, chunk.coalesced, chunk.entries, chunk.bytes
        );
    }
    Ok(())
}

/// `zmesh info <file> [--stats] [--in-memory]` — dataset, v1 container, or
/// v2/v3/v4 store, by magic. `--stats` additionally exercises and prints
/// the recipe-cache counters (hits, misses, collisions, poison
/// recoveries). Stores are inspected via ranged reads (footer only) unless
/// `--in-memory` is given; other artifact kinds are always loaded whole.
pub fn info(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse_with_switches(argv, &["stats", "in-memory"]).map_err(CliError::Usage)?;
    let input = positional(&args, 0, "input file")?;
    #[cfg(unix)]
    if !args.switch("in-memory") {
        let src = ranged_source(input)?;
        let head = src.read_vec(0, src.len().min(8) as usize)?;
        if zmesh_store::is_store(&head) {
            let cache = RecipeCache::new();
            let reader = StoreReader::open_source_with_cache(src, &cache)?;
            return info_store(
                &reader,
                &cache,
                &args,
                |c| {
                    StoreReader::open_source_with_cache(ranged_source(input)?, c)
                        .map(|_| ())
                        .map_err(CliError::from)
                },
                || {
                    exercise_chunk_cache(StoreReader::open_source_with_cache(
                        ranged_source(input)?,
                        &cache,
                    )?)
                },
            );
        }
    }
    let bytes = read_file(input)?;
    if zmesh_store::is_store(&bytes) {
        let cache = RecipeCache::new();
        let reader = StoreReader::open_with_cache(&bytes, &cache)?;
        info_store(
            &reader,
            &cache,
            &args,
            |c| {
                StoreReader::open_with_cache(&bytes, c)
                    .map(|_| ())
                    .map_err(CliError::from)
            },
            || exercise_chunk_cache(StoreReader::open_with_cache(&bytes, &cache)?),
        )?;
    } else if bytes.starts_with(zmesh::CONTAINER_MAGIC) {
        let header = zmesh::ContainerHeader::parse(&bytes)?;
        println!(
            "zMesh container: policy {:?}, codec {}, {} fields, {} bytes total ({} metadata)",
            header.policy,
            header.codec.label(),
            header.fields.len(),
            bytes.len(),
            header.header_bytes
        );
        for (name, range) in &header.fields {
            println!("  field {name:?}: {} payload bytes", range.len());
        }
    } else {
        let ds = load_dataset(input)?;
        let stats = DatasetStats::compute(&ds.tree);
        println!(
            "dataset {:?}: {} levels, {} cells ({} leaves), {} quantities, {} bytes raw",
            ds.name,
            stats.levels.len(),
            stats.total_cells,
            stats.total_leaves,
            ds.fields.len(),
            ds.nbytes()
        );
        for l in &stats.levels {
            println!(
                "  level {}: {} cells, {} leaves",
                l.level, l.cells, l.leaves
            );
        }
    }
    Ok(())
}

/// `zmesh verify <orig.zmd> <restored.zmd> [--rel-eb 1e-4]`
pub fn verify(argv: &[String]) -> Result<(), CliError> {
    let args = parse(argv)?;
    let orig = load_dataset(positional(&args, 0, "original dataset")?)?;
    let rest = load_dataset(positional(&args, 1, "restored dataset")?)?;
    if orig.fields.len() != rest.fields.len() {
        return Err(CliError::Verify(format!(
            "field count mismatch: {} vs {}",
            orig.fields.len(),
            rest.fields.len()
        )));
    }
    let rel_eb = args
        .float("rel-eb")
        .map_err(CliError::Usage)?
        .unwrap_or(1e-4);
    let mut ok = true;
    for ((name, a), (_, b)) in orig.fields.iter().zip(&rest.fields) {
        if a.len() != b.len() {
            return Err(CliError::Verify(format!("field {name:?}: length mismatch")));
        }
        let stats = ErrorStats::between(a.values(), b.values());
        let bound = rel_eb * stats.range;
        let pass = stats.max_abs <= bound * (1.0 + 1e-9);
        ok &= pass;
        println!(
            "field {name:?}: max_err {:.3e} (bound {:.3e}) psnr {:.1} dB -> {}",
            stats.max_abs,
            bound,
            stats.psnr_db,
            if pass { "OK" } else { "FAIL" }
        );
    }
    if ok {
        Ok(())
    } else {
        Err(CliError::Verify("verification failed".into()))
    }
}

/// A positive-integer option.
#[cfg(unix)]
fn parse_count(args: &Args, name: &str) -> Result<Option<usize>, CliError> {
    args.option(name)
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| CliError::Usage(format!("--{name}: want a positive integer: {v}")))
        })
        .transpose()
}

/// Binds the daemon, honoring `--fault-plan <spec>` in testing builds:
/// the plan wraps every matching store's file reads in a deterministic
/// fault injector (see `zmesh_store::faultinject::FaultSpec::parse` for
/// the grammar). Release builds reject the flag instead of silently
/// serving clean.
#[cfg(unix)]
fn bind_server(
    args: &Args,
    dir: &str,
    opts: zmesh_serve::ServeOptions,
) -> Result<zmesh_serve::Server, CliError> {
    match args.option("fault-plan") {
        None => zmesh_serve::Server::bind(dir, opts).map_err(|e| CliError::Io(e.to_string())),
        #[cfg(feature = "testing")]
        Some(spec) => {
            let plan = zmesh_store::faultinject::FaultSpec::parse(spec)
                .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?;
            eprintln!("serve: fault injection active: {spec}");
            zmesh_serve::Server::bind_with_faults(dir, opts, Some(plan))
                .map_err(|e| CliError::Io(e.to_string()))
        }
        #[cfg(not(feature = "testing"))]
        Some(_) => Err(CliError::Usage(
            "--fault-plan requires a testing build: \
             cargo build -p zmesh-cli --features testing"
                .into(),
        )),
    }
}

/// `zmesh serve <dir> [--addr host:port] [--workers N] [--queue N]
/// [--cache-mb N] [--idle-timeout SECS] [--max-requests N]
/// [--fault-plan SPEC]` — resident
/// query daemon over every `*.zms` under `<dir>`. Prints the bound
/// address on stdout (`--addr 127.0.0.1:0` picks an ephemeral port),
/// then serves until SIGTERM/SIGINT, draining in-flight requests before
/// exiting 0. Connections are persistent (HTTP/1.1 keep-alive) up to
/// `--max-requests` per connection; a connection idle past
/// `--idle-timeout` is answered `408` and closed so it cannot pin a
/// worker. Endpoints: `/healthz`, `/metrics`, `/catalog[?refresh=1]`,
/// `/stores/{id}/info`, `/stores/{id}/query`,
/// `POST /stores/{id}/query-batch`. `--fault-plan` (testing builds only)
/// injects deterministic read faults for chaos drills.
#[cfg(unix)]
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    use std::io::Write as _;

    let args = parse(argv)?;
    let dir = positional(&args, 0, "store directory")?;
    let mut opts = zmesh_serve::ServeOptions::default();
    if let Some(addr) = args.option("addr") {
        opts.addr = addr.to_string();
    }
    if let Some(workers) = parse_count(&args, "workers")? {
        opts.workers = workers;
    }
    if let Some(queue) = parse_count(&args, "queue")? {
        opts.queue_depth = queue;
    }
    if let Some(mb) = parse_count(&args, "cache-mb")? {
        opts.cache_bytes = (mb as u64) << 20;
    }
    if let Some(secs) = parse_count(&args, "idle-timeout")? {
        opts.idle_timeout = std::time::Duration::from_secs(secs as u64);
    }
    if let Some(n) = parse_count(&args, "max-requests")? {
        opts.max_requests = n;
    }
    let server = bind_server(&args, dir, opts)?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    let catalog = server.catalog();
    // The listen line is the machine-readable contract (scripts parse the
    // port from it); flush so it is visible before the blocking run loop.
    println!("listening on http://{addr} ({} stores)", catalog.len());
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Io(e.to_string()))?;
    zmesh_serve::install_signal_handlers();
    server.run().map_err(|e| CliError::Io(e.to_string()))?;
    eprintln!("serve: drained in-flight requests, shutting down");
    Ok(())
}

#[cfg(not(unix))]
pub fn serve(_argv: &[String]) -> Result<(), CliError> {
    Err(CliError::Usage(
        "serve requires a unix platform (ranged FileSource reads)".into(),
    ))
}

/// Removes the ephemeral bench catalog on exit.
#[cfg(unix)]
struct TempCatalog(std::path::PathBuf);

#[cfg(unix)]
impl Drop for TempCatalog {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `zmesh bench-serve [dir] [--clients N] [--requests N] [--workers N]
/// [--zipf S] [--seed N] [--cache-mb N] [--no-keepalive] [-o out.json]`
/// — traffic generator against an in-process daemon on an ephemeral
/// port. Without `dir`, packs a disposable three-store catalog first.
/// Measures closed-connection (cold/warm), reused-keep-alive-connection,
/// batch-POST, and concurrent mixed phases; `--no-keepalive` makes the
/// mixed phase reconnect per request (the pre-keep-alive baseline).
/// Writes the latency/QPS/cache report as JSON (default
/// `BENCH_serve.json`, or `$BENCH_SERVE_JSON`) in the same
/// `{"results":[...]}` dialect the criterion benches emit via
/// `CRITERION_JSON`.
#[cfg(unix)]
pub fn bench_serve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse_with_switches(argv, &["no-keepalive"]).map_err(CliError::Usage)?;
    let mut opts = zmesh_serve::BenchOptions {
        keepalive: !args.switch("no-keepalive"),
        ..Default::default()
    };
    if let Some(clients) = parse_count(&args, "clients")? {
        opts.clients = clients;
    }
    if let Some(requests) = parse_count(&args, "requests")? {
        opts.requests = requests;
    }
    if let Some(workers) = parse_count(&args, "workers")? {
        opts.workers = workers;
    }
    if let Some(s) = args.float("zipf").map_err(CliError::Usage)? {
        if s <= 0.0 || s.is_nan() {
            return Err(CliError::Usage(format!("--zipf: want s > 0, got {s}")));
        }
        opts.zipf_s = s;
    }
    if let Some(seed) = args.option("seed") {
        opts.seed = seed
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--seed: not an integer: {seed}")))?;
    }
    if let Some(mb) = parse_count(&args, "cache-mb")? {
        opts.cache_bytes = (mb as u64) << 20;
    }

    // Bench the given catalog, or pack a disposable one.
    let (dir, _cleanup) = match args.positional(0, "dir") {
        Ok(dir) => (std::path::PathBuf::from(dir), None),
        Err(_) => {
            let dir =
                std::env::temp_dir().join(format!("zmesh_bench_serve_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).map_err(|e| CliError::Io(e.to_string()))?;
            for preset in ["blast2d", "front2d", "advect2d"] {
                let ds = datasets::by_name(preset, StorageMode::AllCells, Scale::Tiny)
                    .expect("built-in preset");
                let fields: Vec<(&str, &AmrField)> =
                    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
                // Small chunks so every query touches several of them —
                // the cache and coalescing paths get real work.
                let out = StoreWriter::new(CompressionConfig::zmesh_default())
                    .with_chunk_target_bytes(2048)
                    .write(&fields)?;
                zmesh_store::persist_store(&out.bytes, &dir.join(format!("{preset}.zms")))?;
            }
            (dir.clone(), Some(TempCatalog(dir)))
        }
    };

    let report = zmesh_serve::bench::run(&dir, &opts).map_err(|e| CliError::Io(e.to_string()))?;
    let out = args
        .option("output")
        .map(String::from)
        .or_else(|| std::env::var("BENCH_SERVE_JSON").ok())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    write_file(&out, report.to_json().as_bytes())?;

    let us = |ns: u64| ns as f64 / 1000.0;
    println!(
        "bench-serve: {} clients x {} requests over {} store(s), {} workers",
        report.clients, report.requests_per_client, report.stores, opts.workers
    );
    for (label, p) in [
        ("cold", &report.cold),
        ("warm", &report.warm),
        ("reused", &report.reused),
        ("salvage", &report.salvage),
    ] {
        println!(
            "  {label}: p50 {:.1}us p95 {:.1}us p99 {:.1}us ({} queries, {} errors)",
            us(p.p50_ns),
            us(p.p95_ns),
            us(p.p99_ns),
            p.count,
            p.errors,
        );
    }
    println!(
        "  batch: p50 {:.1}us/POST, {} queries at {:.0} query/s ({} POSTs, {} errors)",
        us(report.batch.p50_ns),
        report.batch_queries,
        report.batch_qps(),
        report.batch.count,
        report.batch.errors,
    );
    println!(
        "  mixed{}: p50 {:.1}us p95 {:.1}us p99 {:.1}us, {:.0} req/s ({} requests, {} errors)",
        if report.keepalive {
            " (keep-alive)"
        } else {
            " (closed connections)"
        },
        us(report.mixed.p50_ns),
        us(report.mixed.p95_ns),
        us(report.mixed.p99_ns),
        report.mixed.qps(),
        report.mixed.count,
        report.mixed.errors,
    );
    println!(
        "  chunk cache: {} hit(s) / {} miss(es), {} eviction(s), {} coalesced; recipe cache: {} hit(s) / {} miss(es)",
        report.chunk_cache.hits,
        report.chunk_cache.misses,
        report.chunk_cache.evictions,
        report.chunk_cache.coalesced,
        report.recipe_cache.hits,
        report.recipe_cache.misses,
    );
    println!("wrote {out}");
    Ok(())
}

#[cfg(not(unix))]
pub fn bench_serve(_argv: &[String]) -> Result<(), CliError> {
    Err(CliError::Usage(
        "bench-serve requires a unix platform (ranged FileSource reads)".into(),
    ))
}
