//! `zmesh` — command-line front end for the zMesh reproduction.
//!
//! ```text
//! zmesh generate <preset> -o data.zmd [--scale tiny|small|standard] [--mode leaf|all]
//! zmesh compress data.zmd -o data.zmc [--policy baseline|zorder|hilbert]
//!                                     [--codec sz|zfp] [--rel-eb 1e-4 | --abs-eb X]
//! zmesh decompress data.zmc -o restored.zmd
//! zmesh extract data.zmc --field <name> -o field.zmd
//! zmesh info <file.zmd | file.zmc>
//! zmesh verify original.zmd restored.zmd [--rel-eb 1e-4]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => commands::generate(rest),
        "compress" => commands::compress(rest),
        "decompress" => commands::decompress(rest),
        "extract" => commands::extract(rest),
        "info" => commands::info(rest),
        "verify" => commands::verify(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand {other:?}"))
        }
    }
}

fn print_usage() {
    eprintln!(
        "zmesh — AMR reordering for better lossy compression\n\n\
         usage:\n\
         \x20 zmesh generate <preset> -o data.zmd [--scale tiny|small|standard] [--mode leaf|all]\n\
         \x20 zmesh compress data.zmd -o data.zmc [--policy baseline|zorder|hilbert]\n\
         \x20                                     [--codec sz|zfp] [--rel-eb 1e-4 | --abs-eb X]\n\
         \x20 zmesh decompress data.zmc -o restored.zmd\n\
         \x20 zmesh extract data.zmc --field <name> -o field.zmd\n\
         \x20 zmesh info <file.zmd | file.zmc>\n\
         \x20 zmesh verify original.zmd restored.zmd [--rel-eb 1e-4]\n\n\
         presets: {}",
        zmesh_amr::datasets::names().join(", ")
    );
}
