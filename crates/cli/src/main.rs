//! `zmesh` — command-line front end for the zMesh reproduction.
//!
//! ```text
//! zmesh generate <preset> -o data.zmd [--scale tiny|small|standard] [--mode leaf|all]
//! zmesh compress data.zmd -o data.zmc [--policy baseline|zorder|hilbert]
//!                                     [--codec sz|zfp] [--rel-eb 1e-4 | --abs-eb X]
//! zmesh decompress data.zmc -o restored.zmd
//! zmesh extract data.zmc --field <name> -o field.zmd
//! zmesh pack data.zmd -o data.zms [compress flags] [--chunk-kb 64] [--parity none|xor[:W]|rs:K,M]
//!                                 [--stream] [--window-bytes N]
//! zmesh unpack data.zms -o restored.zmd [--salvage] [--salvage-fill nan|zero]
//! zmesh query data.zms --field <name> --bbox x0,y0:x1,y1 [--level L] [--salvage] [-o out.csv]
//! zmesh scrub data.zms
//! zmesh repair data.zms -o repaired.zms [--replica copy.zms] [--from-raw data.zmd]
//! zmesh info <file.zmd | file.zmc | file.zms> [--stats]
//! zmesh verify original.zmd restored.zmd [--rel-eb 1e-4]
//! ```
//!
//! Exit codes: 0 success, 2 usage, 3 I/O, 4 corrupt input, 5 verification
//! failure, 6 recoverable damage, 7 torn store (see [`error::CliError`]).

mod args;
mod commands;
mod error;

use error::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => commands::generate(rest),
        "compress" => commands::compress(rest),
        "decompress" => commands::decompress(rest),
        "extract" => commands::extract(rest),
        "pack" => commands::pack(rest),
        "unpack" => commands::unpack(rest),
        "query" => commands::query(rest),
        "scrub" => commands::scrub(rest),
        "repair" => commands::repair(rest),
        "info" => commands::info(rest),
        "verify" => commands::verify(rest),
        "serve" => commands::serve(rest),
        "bench-serve" => commands::bench_serve(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(CliError::Usage(format!("unknown subcommand {other:?}")))
        }
    }
}

fn print_usage() {
    eprintln!(
        "zmesh — AMR reordering for better lossy compression\n\n\
         usage:\n\
         \x20 zmesh generate <preset> -o data.zmd [--scale tiny|small|standard] [--mode leaf|all]\n\
         \x20 zmesh compress data.zmd -o data.zmc [--policy baseline|zorder|hilbert]\n\
         \x20                                     [--codec sz|zfp] [--rel-eb 1e-4 | --abs-eb X]\n\
         \x20 zmesh decompress data.zmc -o restored.zmd\n\
         \x20 zmesh extract data.zmc --field <name> -o field.zmd\n\
         \x20 zmesh pack data.zmd -o data.zms [compress flags] [--chunk-kb 64] [--parity none|xor[:W]|rs:K,M] [--stream] [--window-bytes N]\n\
         \x20 zmesh unpack data.zms -o restored.zmd [--salvage] [--salvage-fill nan|zero]\n\
         \x20 zmesh query data.zms --field <name> --bbox x0,y0:x1,y1 [--level L[,L...]] [--salvage] [-o out.csv]\n\
         \x20 zmesh scrub data.zms\n\
         \x20 zmesh repair data.zms -o repaired.zms [--replica copy.zms] [--from-raw data.zmd]\n\
         \x20 zmesh info <file.zmd | file.zmc | file.zms> [--stats]\n\
         \x20 zmesh verify original.zmd restored.zmd [--rel-eb 1e-4]\n\
         \x20 zmesh serve <dir> [--addr 127.0.0.1:0] [--workers 4] [--queue 64] [--cache-mb 64]\n\
         \x20                   [--idle-timeout 10] [--max-requests 1000] [--fault-plan SPEC]\n\
         \x20 zmesh bench-serve [dir] [--clients 4] [--requests 200] [--workers 4] [--zipf 1.1]\n\
         \x20                        [--seed N] [--cache-mb 64] [--no-keepalive] [-o BENCH_serve.json]\n\n\
         exit codes: 0 ok, 2 usage, 3 i/o, 4 corrupt input, 5 verify failure, 6 recoverable damage, 7 torn store\n\
         presets: {}",
        zmesh_amr::datasets::names().join(", ")
    );
}
