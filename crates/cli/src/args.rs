//! Minimal flag parsing (no external dependencies).

/// Parsed positional arguments, `--flag value` options, and boolean
/// `--switch` flags.
pub struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv`; every `--flag` consumes the following token as its
    /// value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        Self::parse_with_switches(argv, &[])
    }

    /// Like [`Args::parse`], but flags named in `switches` are boolean:
    /// they consume no value and are queried with [`Args::switch`].
    pub fn parse_with_switches(argv: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut seen_switches = Vec::new();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                if switches.contains(&flag) {
                    seen_switches.push(flag.to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{flag} needs a value"))?;
                options.push((flag.to_string(), value.clone()));
            } else if tok == "-o" {
                let value = it.next().ok_or("-o needs a value")?;
                options.push(("output".to_string(), value.clone()));
            } else {
                positional.push(tok.clone());
            }
        }
        Ok(Self {
            positional,
            options,
            switches: seen_switches,
        })
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }

    /// An option's value, if present.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A required option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.option(name)
            .ok_or_else(|| format!("missing --{name} (or -o for output)"))
    }

    /// Whether a boolean `--switch` was passed (only names registered via
    /// [`Args::parse_with_switches`] can appear here).
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A float-valued option.
    pub fn float(&self, name: &str) -> Result<Option<f64>, String> {
        self.option(name)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--{name}: not a number: {v}"))
            })
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(&argv(&["in.zmd", "-o", "out.zmc", "--codec", "sz"])).unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "in.zmd");
        assert_eq!(a.required("output").unwrap(), "out.zmc");
        assert_eq!(a.option("codec"), Some("sz"));
        assert_eq!(a.option("nope"), None);
        assert!(a.positional(1, "x").is_err());
    }

    #[test]
    fn flags_need_values() {
        assert!(Args::parse(&argv(&["--policy"])).is_err());
        assert!(Args::parse(&argv(&["-o"])).is_err());
    }

    #[test]
    fn floats_parse() {
        let a = Args::parse(&argv(&["--rel-eb", "1e-4"])).unwrap();
        assert_eq!(a.float("rel-eb").unwrap(), Some(1e-4));
        let bad = Args::parse(&argv(&["--rel-eb", "abc"])).unwrap();
        assert!(bad.float("rel-eb").is_err());
    }

    #[test]
    fn switches_consume_no_value() {
        let a = Args::parse_with_switches(
            &argv(&["in.zms", "--salvage", "--field", "density"]),
            &["salvage"],
        )
        .unwrap();
        assert!(a.switch("salvage"));
        assert!(!a.switch("verbose"));
        assert_eq!(a.positional(0, "input").unwrap(), "in.zms");
        assert_eq!(a.option("field"), Some("density"));
        // A trailing switch parses fine (it never needs a value).
        let b = Args::parse_with_switches(&argv(&["--salvage"]), &["salvage"]).unwrap();
        assert!(b.switch("salvage"));
        // Unregistered, the same token is a value flag and fails.
        assert!(Args::parse(&argv(&["--salvage"])).is_err());
    }

    #[test]
    fn last_repeated_flag_wins() {
        let a = Args::parse(&argv(&["--codec", "sz", "--codec", "zfp"])).unwrap();
        assert_eq!(a.option("codec"), Some("zfp"));
    }
}
