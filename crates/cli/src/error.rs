//! Typed CLI errors with distinct process exit codes.
//!
//! Scripts driving `zmesh` can branch on the exit status instead of
//! scraping stderr:
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | success                                              |
//! | 2    | usage error (bad flags, unknown name/field)          |
//! | 3    | I/O error (missing file, unwritable output, ENOSPC)  |
//! | 4    | corrupt or truncated container / dataset             |
//! | 5    | verification failed (data exceeded error bound)      |
//! | 6    | damage found, but all of it is parity-recoverable    |
//! | 7    | torn store (interrupted write, no commit record)     |
//!
//! Code 6 lets a monitoring loop distinguish "run `zmesh repair` now" from
//! "restore from backup" (code 4) without parsing the scrub report. Code 7
//! separates "the writer never finished" (rerun it, or
//! `zmesh repair --from-raw`) from bit rot in a completed store (code 4).

use std::fmt;
use zmesh::ZmeshError;
use zmesh_amr::AmrError;
use zmesh_store::StoreError;

/// Everything a subcommand can fail with, bucketed by exit code.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad invocation: unknown subcommand/flag/preset/field, malformed
    /// values, conflicting options. Exit code 2.
    Usage(String),
    /// The filesystem said no. Exit code 3.
    Io(String),
    /// The input bytes are not a valid artifact: bad magic, truncation,
    /// CRC mismatch, malformed metadata. Exit code 4.
    Corrupt(String),
    /// `zmesh verify` found values outside the bound. Exit code 5.
    Verify(String),
    /// `zmesh scrub` found damage, but every damaged chunk can be rebuilt
    /// from parity — `zmesh repair` will restore the store bit-exactly.
    /// Exit code 6.
    Recoverable(String),
    /// The store is an incomplete write: its v4 commit record is missing
    /// or invalid, so the file was torn mid-write rather than corrupted
    /// after the fact. Exit code 7.
    Torn(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Corrupt(_) => 4,
            CliError::Verify(_) => 5,
            CliError::Recoverable(_) => 6,
            CliError::Torn(_) => 7,
        }
    }

    /// Wraps a `std::io::Error` with the path it concerned.
    pub fn io(path: &str, e: std::io::Error) -> Self {
        CliError::Io(format!("{path}: {e}"))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(msg) => write!(f, "{msg}"),
            CliError::Corrupt(msg) => write!(f, "{msg}"),
            CliError::Verify(msg) => write!(f, "{msg}"),
            CliError::Recoverable(msg) => write!(f, "{msg}"),
            CliError::Torn(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<AmrError> for CliError {
    fn from(e: AmrError) -> Self {
        match e {
            AmrError::Io(msg) => CliError::Io(msg),
            other => CliError::Corrupt(other.to_string()),
        }
    }
}

impl From<ZmeshError> for CliError {
    fn from(e: ZmeshError) -> Self {
        CliError::Corrupt(e.to_string())
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::UnknownField(_) | StoreError::BadQuery(_) => CliError::Usage(e.to_string()),
            StoreError::InvalidOptions(_) => CliError::Usage(e.to_string()),
            StoreError::Torn => CliError::Torn(e.to_string()),
            // ENOSPC is an I/O failure the operator fixes by freeing
            // space and rerunning; the abort is clean (no tmp file, old
            // destination intact), so it shares exit 3 with the rest of
            // the filesystem failures rather than claiming a corruption
            // code.
            StoreError::Io(_) | StoreError::NoSpace(_) => CliError::Io(e.to_string()),
            StoreError::Amr(inner) => inner.into(),
            other => CliError::Corrupt(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let all = [
            CliError::Usage(String::new()),
            CliError::Io(String::new()),
            CliError::Corrupt(String::new()),
            CliError::Verify(String::new()),
            CliError::Recoverable(String::new()),
            CliError::Torn(String::new()),
        ];
        let mut codes: Vec<u8> = all.iter().map(|e| e.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    fn store_errors_bucket_sensibly() {
        assert_eq!(CliError::from(StoreError::BadMagic).exit_code(), 4);
        assert_eq!(CliError::from(StoreError::Torn).exit_code(), 7);
        assert_eq!(
            CliError::from(StoreError::InvalidOptions("bad geometry")).exit_code(),
            2
        );
        assert_eq!(
            CliError::from(StoreError::Io("disk gone".into())).exit_code(),
            3
        );
        assert_eq!(
            CliError::from(StoreError::NoSpace("disk full".into())).exit_code(),
            3
        );
        assert_eq!(
            CliError::from(StoreError::UnknownField("x".into())).exit_code(),
            2
        );
        assert_eq!(
            CliError::from(StoreError::Amr(AmrError::Io("gone".into()))).exit_code(),
            3
        );
    }
}
