//! End-to-end CLI tests: drive the real binary through the full
//! generate → compress → decompress → verify flow.

use std::path::PathBuf;
use std::process::Command;

fn zmesh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zmesh"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zmesh_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn full_workflow() {
    let zmd = tmp("blast.zmd");
    let zmc = tmp("blast.zmc");
    let restored = tmp("restored.zmd");

    let out = zmesh()
        .args([
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(zmd.exists());

    let out = zmesh()
        .args([
            "compress",
            zmd.to_str().unwrap(),
            "-o",
            zmc.to_str().unwrap(),
            "--policy",
            "hilbert",
            "--codec",
            "sz",
            "--rel-eb",
            "1e-4",
        ])
        .output()
        .expect("run compress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ratio"), "no ratio in: {stdout}");

    let out = zmesh()
        .args([
            "decompress",
            zmc.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
        ])
        .output()
        .expect("run decompress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = zmesh()
        .args([
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-4",
        ])
        .output()
        .expect("run verify");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    // Tighter bound than we compressed with must fail verification.
    let out = zmesh()
        .args([
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-9",
        ])
        .output()
        .expect("run verify");
    assert!(!out.status.success(), "too-tight verify should fail");

    // Info on both artifact kinds.
    for f in [&zmd, &zmc] {
        let out = zmesh()
            .args(["info", f.to_str().unwrap()])
            .output()
            .expect("run info");
        assert!(out.status.success());
    }

    // Selective extraction of one field.
    let extracted = tmp("density.zmd");
    let out = zmesh()
        .args([
            "extract",
            zmc.to_str().unwrap(),
            "--field",
            "density",
            "-o",
            extracted.to_str().unwrap(),
        ])
        .output()
        .expect("run extract");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(extracted.exists());
    // Unknown field lists the available ones.
    let out = zmesh()
        .args([
            "extract",
            zmc.to_str().unwrap(),
            "--field",
            "nope",
            "-o",
            "/dev/null",
        ])
        .output()
        .expect("run extract");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("available"));

    for f in [zmd, zmc, restored, extracted] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown subcommand.
    let out = zmesh().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    // Unknown preset.
    let out = zmesh()
        .args(["generate", "nope", "-o", "/dev/null"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
    // Missing file.
    let out = zmesh()
        .args(["info", "/nonexistent/zmesh/file.zmd"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    // Conflicting bounds.
    let out = zmesh()
        .args([
            "compress", "x.zmd", "-o", "y.zmc", "--abs-eb", "1", "--rel-eb", "1e-4",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn store_workflow_pack_query_unpack() {
    let zmd = tmp("store_in.zmd");
    let zms = tmp("store.zms");
    let restored = tmp("store_out.zmd");
    let csv = tmp("region.csv");

    let out = zmesh()
        .args([
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = zmesh()
        .args([
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            zms.to_str().unwrap(),
            "--policy",
            "hilbert",
            "--chunk-kb",
            "1",
        ])
        .output()
        .expect("run pack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chunks"), "no chunk count in: {stdout}");

    // info recognizes the v3 store and reports its index + parity width.
    let out = zmesh()
        .args(["info", zms.to_str().unwrap()])
        .output()
        .expect("run info");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("v3 store") && stdout.contains("chunks") && stdout.contains("parity"),
        "info said: {stdout}"
    );

    // Region query decodes a strict subset of the chunks.
    let out = zmesh()
        .args([
            "query",
            zms.to_str().unwrap(),
            "--field",
            "density",
            "--bbox",
            "0,0:3,3",
            "-o",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("run query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let (decoded, total) = stdout
        .split_once("decoded ")
        .and_then(|(_, rest)| rest.split_once(" chunks"))
        .and_then(|(frac, _)| frac.split_once('/'))
        .map(|(d, t)| (d.parse::<usize>().unwrap(), t.parse::<usize>().unwrap()))
        .expect("parse decoded m/n chunks");
    assert!(
        decoded < total,
        "query decoded all {total} chunks: {stdout}"
    );
    let rows = std::fs::read_to_string(&csv).expect("read csv");
    assert!(rows.starts_with("storage_index,value\n") && rows.lines().count() > 1);

    // Unpack round-trips within the pack bound.
    let out = zmesh()
        .args([
            "unpack",
            zms.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
        ])
        .output()
        .expect("run unpack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = zmesh()
        .args([
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-4",
        ])
        .output()
        .expect("run verify");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for f in [zmd, zms, restored, csv] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn exit_codes_distinguish_failure_kinds() {
    let zmd = tmp("codes.zmd");
    let zms = tmp("codes.zms");
    let out = zmesh()
        .args([
            "generate",
            "advect2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = zmesh()
        .args(["pack", zmd.to_str().unwrap(), "-o", zms.to_str().unwrap()])
        .output()
        .expect("run pack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let code = |args: &[&str]| zmesh().args(args).output().expect("run").status.code();

    // Usage errors -> 2.
    assert_eq!(code(&["frobnicate"]), Some(2));
    assert_eq!(
        code(&[
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            "/dev/null",
            "--policy",
            "bogus"
        ]),
        Some(2)
    );
    assert_eq!(
        code(&[
            "query",
            zms.to_str().unwrap(),
            "--field",
            "density",
            "--bbox",
            "nope"
        ]),
        Some(2)
    );
    assert_eq!(
        code(&[
            "query",
            zms.to_str().unwrap(),
            "--field",
            "ghost",
            "--bbox",
            "0,0:3,3"
        ]),
        Some(2),
        "unknown field is a usage error"
    );
    // I/O errors -> 3.
    assert_eq!(code(&["info", "/nonexistent/zmesh/file.zms"]), Some(3));
    assert_eq!(
        code(&["unpack", "/nonexistent/a.zms", "-o", "/dev/null"]),
        Some(3)
    );

    // Corrupt containers -> 4: truncation, payload bit-flip, index bit-flip.
    let bytes = std::fs::read(&zms).expect("read store");
    let truncated = tmp("codes_trunc.zms");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).expect("write");
    assert_eq!(
        code(&["unpack", truncated.to_str().unwrap(), "-o", "/dev/null"]),
        Some(4)
    );

    let flipped = tmp("codes_flip.zms");
    let mut b = bytes.clone();
    let mid = b.len() / 2;
    b[mid] ^= 0x10;
    std::fs::write(&flipped, &b).expect("write");
    assert_eq!(
        code(&["unpack", flipped.to_str().unwrap(), "-o", "/dev/null"]),
        Some(4),
        "payload corruption must be caught"
    );

    let bad_index = tmp("codes_index.zms");
    let mut b = bytes.clone();
    let n = b.len();
    b[n - 10] ^= 0x01; // inside the footer-CRC/trailer region
    std::fs::write(&bad_index, &b).expect("write");
    assert_eq!(
        code(&["unpack", bad_index.to_str().unwrap(), "-o", "/dev/null"]),
        Some(4)
    );

    // Verify failure -> 5.
    let restored = tmp("codes_restored.zmd");
    let out = zmesh()
        .args([
            "unpack",
            zms.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
        ])
        .output()
        .expect("run unpack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        code(&[
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-12"
        ]),
        Some(5)
    );

    for f in [zmd, zms, truncated, flipped, bad_index, restored] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn salvage_tolerates_chunk_corruption_strict_exits_4() {
    let zmd = tmp("salvage.zmd");
    let zms = tmp("salvage.zms");
    let broken = tmp("salvage_broken.zms");
    let restored = tmp("salvage_restored.zmd");
    let csv = tmp("salvage.csv");

    for args in [
        vec![
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ],
        vec![
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            zms.to_str().unwrap(),
            "--chunk-kb",
            "1",
        ],
    ] {
        let out = zmesh().args(&args).output().expect("run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Flip one byte inside the first chunk of the first field, located
    // precisely via the fault-injection harness so only that chunk is
    // damaged.
    let mut bytes = std::fs::read(&zms).expect("read store");
    let (_, fields, _) = zmesh_store::open_parts(&bytes).expect("open store");
    assert!(fields[0].chunks.len() > 1, "need multiple chunks");
    let field_name = fields[0].name.clone();
    let whole_domain = {
        let reader = zmesh_store::StoreReader::open(&bytes).expect("open");
        let tree = reader.tree();
        let dims = tree.level_dims(tree.max_level());
        format!("0,0:{},{}", dims[0] - 1, dims[1] - 1)
    };
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 0);
    std::fs::write(&broken, &bytes).expect("write corrupted store");

    let code = |args: &[&str]| zmesh().args(args).output().expect("run").status.code();

    // Strict (default) unpack and query fail with the corrupt exit code.
    assert_eq!(
        code(&["unpack", broken.to_str().unwrap(), "-o", "/dev/null"]),
        Some(4)
    );
    assert_eq!(
        code(&[
            "query",
            broken.to_str().unwrap(),
            "--field",
            &field_name,
            "--bbox",
            &whole_domain,
        ]),
        Some(4)
    );

    // --salvage succeeds; with v3 parity the single damaged chunk is
    // repaired in-flight rather than lost, and stderr says so.
    let out = zmesh()
        .args([
            "unpack",
            broken.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
            "--salvage",
        ])
        .output()
        .expect("run unpack --salvage");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("salvaged")
            && stderr.contains("1 corrupt chunk")
            && stderr.contains("1 repaired from parity"),
        "no damage summary in: {stderr}"
    );
    assert!(restored.exists());

    let out = zmesh()
        .args([
            "query",
            broken.to_str().unwrap(),
            "--field",
            &field_name,
            "--bbox",
            &whole_domain,
            "--salvage",
            "-o",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("run query --salvage");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("salvaged"));
    let rows = std::fs::read_to_string(&csv).expect("read csv");
    assert!(rows.lines().count() > 1, "survivors expected in csv");

    for f in [zmd, zms, broken, restored, csv] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn scrub_and_repair_self_heal_workflow() {
    let zmd = tmp("heal.zmd");
    let zms = tmp("heal.zms");
    let broken = tmp("heal_broken.zms");
    let repaired = tmp("heal_repaired.zms");
    let double = tmp("heal_double.zms");
    let rescued = tmp("heal_rescued.zms");

    for args in [
        vec![
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ],
        vec![
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            zms.to_str().unwrap(),
            "--chunk-kb",
            "1",
        ],
    ] {
        let out = zmesh().args(&args).output().expect("run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let pristine = std::fs::read(&zms).expect("read store");
    let (_, fields, _) = zmesh_store::open_parts(&pristine).expect("open store");
    assert!(fields[0].chunks.len() > 2, "need several chunks per group");

    let code = |args: &[&str]| zmesh().args(args).output().expect("run").status.code();

    // A pristine store scrubs clean: exit 0, machine-readable report.
    let out = zmesh()
        .args(["scrub", zms.to_str().unwrap()])
        .output()
        .expect("run scrub");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"clean\":true") && json.contains("\"parity_available\":true"),
        "scrub said: {json}"
    );

    // One flipped chunk: exit 6 (recoverable), and repair restores the
    // container byte for byte.
    let mut bytes = pristine.clone();
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 1);
    std::fs::write(&broken, &bytes).expect("write");
    let out = zmesh()
        .args(["scrub", broken.to_str().unwrap()])
        .output()
        .expect("run scrub");
    assert_eq!(out.status.code(), Some(6), "recoverable damage exits 6");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"recoverable\":1"));

    let out = zmesh()
        .args([
            "repair",
            broken.to_str().unwrap(),
            "-o",
            repaired.to_str().unwrap(),
        ])
        .output()
        .expect("run repair");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("parity"));
    assert_eq!(
        std::fs::read(&repaired).expect("read repaired"),
        pristine,
        "repair must be byte-identical to the pristine store"
    );

    // Two flipped chunks in the same parity group: beyond parity (exit 4),
    // repair refuses to write, but a replica rescues it bit-exactly.
    let mut bytes = pristine.clone();
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 0);
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 1);
    std::fs::write(&double, &bytes).expect("write");
    assert_eq!(code(&["scrub", double.to_str().unwrap()]), Some(4));
    assert_eq!(
        code(&[
            "repair",
            double.to_str().unwrap(),
            "-o",
            rescued.to_str().unwrap(),
        ]),
        Some(4),
        "repair without a replica cannot recover a double fault"
    );
    assert!(!rescued.exists(), "no output on failed repair");
    let out = zmesh()
        .args([
            "repair",
            double.to_str().unwrap(),
            "-o",
            rescued.to_str().unwrap(),
            "--replica",
            zms.to_str().unwrap(),
        ])
        .output()
        .expect("run repair --replica");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&rescued).expect("read rescued"), pristine);

    // A parity-less (v2) store still scrubs, reporting no self-healing.
    let v2 = tmp("heal_v2.zms");
    let out = zmesh()
        .args([
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            v2.to_str().unwrap(),
            "--parity-width",
            "0",
        ])
        .output()
        .expect("run pack --parity-width 0");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = zmesh()
        .args(["scrub", v2.to_str().unwrap()])
        .output()
        .expect("run scrub v2");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"parity_available\":false"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no parity"));
    let out = zmesh()
        .args(["info", v2.to_str().unwrap()])
        .output()
        .expect("run info v2");
    assert!(String::from_utf8_lossy(&out.stdout).contains("v2 store"));

    for f in [zmd, zms, broken, repaired, double, rescued, v2] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn salvage_fill_zero_replaces_lost_cells() {
    let zmd = tmp("fill.zmd");
    let zms = tmp("fill.zms");
    let restored = tmp("fill_restored.zmd");

    for args in [
        vec![
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ],
        // No parity: damage cannot be healed, so the fill is observable.
        vec![
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            zms.to_str().unwrap(),
            "--chunk-kb",
            "1",
            "--parity-width",
            "0",
        ],
    ] {
        let out = zmesh().args(&args).output().expect("run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let mut bytes = std::fs::read(&zms).expect("read store");
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 0);
    std::fs::write(&zms, &bytes).expect("write");

    // --salvage-fill implies --salvage; stderr reports the chosen fill.
    let out = zmesh()
        .args([
            "unpack",
            zms.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
            "--salvage-fill",
            "zero",
        ])
        .output()
        .expect("run unpack --salvage-fill zero");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("salvaged") && stderr.contains("0.0"),
        "fill not reported: {stderr}"
    );

    // Bogus fill name is a usage error.
    let out = zmesh()
        .args([
            "unpack",
            zms.to_str().unwrap(),
            "-o",
            "/dev/null",
            "--salvage-fill",
            "infinity",
        ])
        .output()
        .expect("run unpack bad fill");
    assert_eq!(out.status.code(), Some(2));

    for f in [zmd, zms, restored] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn rs_parity_and_torn_store_workflow() {
    let zmd = tmp("rs.zmd");
    let zms = tmp("rs.zms");
    let broken = tmp("rs_broken.zms");
    let repaired = tmp("rs_repaired.zms");
    let torn = tmp("rs_torn.zms");
    let rebuilt = tmp("rs_rebuilt.zms");
    let restored = tmp("rs_restored.zmd");

    for args in [
        vec![
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ],
        vec![
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            zms.to_str().unwrap(),
            "--chunk-kb",
            "1",
            "--parity",
            "rs:4,2",
        ],
    ] {
        let out = zmesh().args(&args).output().expect("run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let code = |args: &[&str]| zmesh().args(args).output().expect("run").status.code();

    // info reports the v4 format and the RS scheme; --stats surfaces the
    // recipe-cache counters.
    let out = zmesh()
        .args(["info", zms.to_str().unwrap(), "--stats"])
        .output()
        .expect("run info --stats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("v4 store") && stdout.contains("rs parity 4+2"),
        "info said: {stdout}"
    );
    assert!(
        stdout.contains("recipe cache:")
            && stdout.contains("hit(s)")
            && stdout.contains("collision(s)")
            && stdout.contains("poison recovery(ies)"),
        "no cache counters in: {stdout}"
    );

    let pristine = std::fs::read(&zms).expect("read store");
    let (_, fields, _) = zmesh_store::open_parts(&pristine).expect("open store");
    assert!(fields[0].chunks.len() > 2, "need several chunks per group");

    // Two corrupt chunks in one group sit inside the m = 2 shard budget:
    // scrub calls them recoverable and plain parity repair restores the
    // container byte for byte.
    let mut bytes = pristine.clone();
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 0);
    zmesh_store::faultinject::flip_data_chunk(&mut bytes, 0, 1);
    std::fs::write(&broken, &bytes).expect("write");
    let out = zmesh()
        .args(["scrub", broken.to_str().unwrap()])
        .output()
        .expect("run scrub");
    assert_eq!(out.status.code(), Some(6), "2 <= m erasures exit 6");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"recoverable\":2") && json.contains("\"parity_shards\":2"),
        "scrub said: {json}"
    );
    let out = zmesh()
        .args([
            "repair",
            broken.to_str().unwrap(),
            "-o",
            repaired.to_str().unwrap(),
        ])
        .output()
        .expect("run repair");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&repaired).expect("read repaired"),
        pristine,
        "RS repair must be byte-identical to the pristine store"
    );

    // A write cut off mid-commit-record is *torn*, not corrupt: every
    // reader distinguishes it with exit 7; repair salvages the intact
    // prefix, or completes the write exactly with the raw dataset.
    std::fs::write(&torn, &pristine[..pristine.len() - 7]).expect("write torn");
    let out = zmesh()
        .args(["scrub", torn.to_str().unwrap()])
        .output()
        .expect("run scrub torn");
    assert_eq!(out.status.code(), Some(7), "torn store exits 7");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"torn\":true"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("torn"));
    assert_eq!(code(&["info", torn.to_str().unwrap()]), Some(7));
    assert_eq!(
        code(&[
            "unpack",
            torn.to_str().unwrap(),
            "-o",
            "/dev/null",
            "--salvage",
        ]),
        Some(7),
        "salvage must not paper over a torn store"
    );
    // Repair without --from-raw salvages the intact whole-chunk prefix.
    // Only the commit record was torn off here, so the salvage is
    // lossless — byte-identical to the pristine store.
    let out = zmesh()
        .args([
            "repair",
            torn.to_str().unwrap(),
            "-o",
            rebuilt.to_str().unwrap(),
        ])
        .output()
        .expect("run torn salvage");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("\"salvaged\":true"));
    assert_eq!(
        std::fs::read(&rebuilt).expect("read salvaged"),
        pristine,
        "commit-record-only tear must salvage byte-identically"
    );
    std::fs::remove_file(&rebuilt).expect("drop salvaged output");

    // --from-raw completes the interrupted write: the rebuild extends the
    // torn prefix byte-for-byte and round-trips like the original.
    let out = zmesh()
        .args([
            "repair",
            torn.to_str().unwrap(),
            "-o",
            rebuilt.to_str().unwrap(),
            "--from-raw",
            zmd.to_str().unwrap(),
        ])
        .output()
        .expect("run repair --from-raw");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&rebuilt).expect("read rebuilt"),
        pristine,
        "torn rebuild must complete the original write exactly"
    );
    for args in [
        vec![
            "unpack",
            rebuilt.to_str().unwrap(),
            "-o",
            restored.to_str().unwrap(),
        ],
        vec![
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-4",
        ],
    ] {
        let out = zmesh().args(&args).output().expect("run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Malformed parity specs are usage errors, not writes.
    for spec in ["rs:1", "rs:4", "rs:0,2", "xor:none", "bogus"] {
        assert_eq!(
            code(&[
                "pack",
                zmd.to_str().unwrap(),
                "-o",
                "/dev/null",
                "--parity",
                spec,
            ]),
            Some(2),
            "--parity {spec} should be rejected"
        );
    }
    assert_eq!(
        code(&[
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            "/dev/null",
            "--parity",
            "xor",
            "--parity-width",
            "4",
        ]),
        Some(2),
        "--parity and --parity-width conflict"
    );

    for f in [zmd, zms, broken, repaired, torn, rebuilt, restored] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn help_lists_presets() {
    let out = zmesh().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("front2d") && text.contains("cluster3d"));
}

/// Sorted (name, bytes) snapshot of a directory's direct entries — enough
/// to assert a failed pack changed nothing.
fn dir_snapshot(dir: &std::path::Path) -> Vec<(String, Option<Vec<u8>>)> {
    let mut entries: Vec<(String, Option<Vec<u8>>)> = std::fs::read_dir(dir)
        .expect("read_dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).ok();
            (name, bytes)
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn streaming_pack_is_byte_identical_to_buffered() {
    let zmd = tmp("stream_src.zmd");
    let buffered = tmp("stream_buffered.zms");
    let streamed = tmp("stream_streamed.zms");

    let out = zmesh()
        .args([
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let out = zmesh()
        .args([
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            buffered.to_str().unwrap(),
            "--chunk-kb",
            "1",
            "--parity",
            "rs:4,2",
        ])
        .output()
        .expect("run pack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = zmesh()
        .args([
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            streamed.to_str().unwrap(),
            "--chunk-kb",
            "1",
            "--parity",
            "rs:4,2",
            "--stream",
            "--window-bytes",
            "4096",
        ])
        .output()
        .expect("run streaming pack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("streamed"),
        "streaming pack must say so"
    );

    assert_eq!(
        std::fs::read(&buffered).expect("buffered bytes"),
        std::fs::read(&streamed).expect("streamed bytes"),
        "streaming pack must be byte-identical to buffered"
    );

    for f in [&zmd, &buffered, &streamed] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn failed_pack_leaves_the_target_directory_untouched() {
    let zmd = tmp("failpack_src.zmd");
    let out = zmesh()
        .args([
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let work = tmp("failpack_dir");
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("mkdir");
    std::fs::write(work.join("bystander.zms"), b"do not touch").expect("write");
    // The destination is an existing directory: the temp file streams
    // fine, the atomic rename cannot succeed.
    let dest = work.join("blocked.zms");
    std::fs::create_dir_all(&dest).expect("mkdir dest");
    let before = dir_snapshot(&work);

    for extra in [&["--stream"][..], &[][..]] {
        let mut args = vec![
            "pack".to_string(),
            zmd.to_str().unwrap().to_string(),
            "-o".to_string(),
            dest.to_str().unwrap().to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = zmesh().args(&args).output().expect("run failing pack");
        assert_eq!(
            out.status.code(),
            Some(3),
            "pack onto a directory must exit 3 (I/O): {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            dir_snapshot(&work),
            before,
            "failed pack (args {extra:?}) must leave the target directory \
             byte-identical — no partial output, no stray .tmp"
        );
    }

    let _ = std::fs::remove_file(&zmd);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn fault_sink_requires_a_testing_build() {
    // This test compiles without the testing feature, so the flag must be
    // rejected as usage error instead of silently packing clean.
    if cfg!(feature = "testing") {
        return;
    }
    let zmd = tmp("faultsink_src.zmd");
    let out = zmesh()
        .args([
            "generate",
            "blast2d",
            "-o",
            zmd.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = zmesh()
        .args([
            "pack",
            zmd.to_str().unwrap(),
            "-o",
            tmp("faultsink.zms").to_str().unwrap(),
            "--fault-sink",
            "enospc_at=4096",
        ])
        .output()
        .expect("run pack");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("testing build"),
        "must point at the testing feature"
    );
    let _ = std::fs::remove_file(&zmd);
}
