//! End-to-end CLI tests: drive the real binary through the full
//! generate → compress → decompress → verify flow.

use std::path::PathBuf;
use std::process::Command;

fn zmesh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zmesh"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zmesh_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn full_workflow() {
    let zmd = tmp("blast.zmd");
    let zmc = tmp("blast.zmc");
    let restored = tmp("restored.zmd");

    let out = zmesh()
        .args(["generate", "blast2d", "-o", zmd.to_str().unwrap(), "--scale", "tiny"])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(zmd.exists());

    let out = zmesh()
        .args([
            "compress",
            zmd.to_str().unwrap(),
            "-o",
            zmc.to_str().unwrap(),
            "--policy",
            "hilbert",
            "--codec",
            "sz",
            "--rel-eb",
            "1e-4",
        ])
        .output()
        .expect("run compress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ratio"), "no ratio in: {stdout}");

    let out = zmesh()
        .args(["decompress", zmc.to_str().unwrap(), "-o", restored.to_str().unwrap()])
        .output()
        .expect("run decompress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = zmesh()
        .args([
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-4",
        ])
        .output()
        .expect("run verify");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    // Tighter bound than we compressed with must fail verification.
    let out = zmesh()
        .args([
            "verify",
            zmd.to_str().unwrap(),
            restored.to_str().unwrap(),
            "--rel-eb",
            "1e-9",
        ])
        .output()
        .expect("run verify");
    assert!(!out.status.success(), "too-tight verify should fail");

    // Info on both artifact kinds.
    for f in [&zmd, &zmc] {
        let out = zmesh().args(["info", f.to_str().unwrap()]).output().expect("run info");
        assert!(out.status.success());
    }

    // Selective extraction of one field.
    let extracted = tmp("density.zmd");
    let out = zmesh()
        .args([
            "extract",
            zmc.to_str().unwrap(),
            "--field",
            "density",
            "-o",
            extracted.to_str().unwrap(),
        ])
        .output()
        .expect("run extract");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(extracted.exists());
    // Unknown field lists the available ones.
    let out = zmesh()
        .args(["extract", zmc.to_str().unwrap(), "--field", "nope", "-o", "/dev/null"])
        .output()
        .expect("run extract");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("available"));

    for f in [zmd, zmc, restored, extracted] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown subcommand.
    let out = zmesh().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    // Unknown preset.
    let out = zmesh()
        .args(["generate", "nope", "-o", "/dev/null"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
    // Missing file.
    let out = zmesh()
        .args(["info", "/nonexistent/zmesh/file.zmd"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    // Conflicting bounds.
    let out = zmesh()
        .args([
            "compress", "x.zmd", "-o", "y.zmc", "--abs-eb", "1", "--rel-eb", "1e-4",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn help_lists_presets() {
    let out = zmesh().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("front2d") && text.contains("cluster3d"));
}
