# Developer entry points. `just verify` is the pre-merge gate; it runs the
# same steps as scripts/verify.sh (tier-1 build + tests, workspace tests,
# fmt --check, clippy -D warnings). Everything builds offline: external
# dependency names resolve to workspace-local shims under vendor/ (see
# vendor/README.md).

# Run the full verification gate.
verify:
    bash scripts/verify.sh

# Tier-1 only: release build + root integration suite.
tier1:
    cargo build --release
    cargo test -q --release

# Full workspace test run, both profiles (debug catches overflow panics
# and debug_asserts; release catches what they wrap into).
test:
    cargo test -q --workspace
    cargo test -q --release --workspace

# Criterion micro-benchmarks (includes the store query-latency bench).
bench:
    cargo bench --workspace

# Self-healing smoke: pack → inject fault → scrub → repair → bit-exact.
scrub-smoke:
    bash scripts/scrub_smoke.sh

# Ranged-read smoke: pack a multi-field store, query through the
# file-backed path, assert bytes_read << file size and ranged ≡ in-memory.
store-read-smoke:
    bash scripts/store_read_smoke.sh

# Serve smoke: daemon on a packed catalog, concurrent responses ≡ CLI,
# structured errors, clean SIGTERM drain.
serve-smoke:
    bash scripts/serve_smoke.sh

# Chaos smoke: daemon under a --fault-plan plus live on-disk damage —
# retry absorbs transients, damage degrades, torn quarantines, the
# background probe reinstates after repair.
chaos-smoke:
    bash scripts/chaos_smoke.sh

# Write-crash smoke: streaming pack under injected crashes/ENOSPC and
# real SIGKILLs — destination always {absent, old-intact, committed},
# torn tmps are exact prefixes, reruns heal.
write-crash-smoke:
    bash scripts/write_crash_smoke.sh

# Ranged vs in-memory store read bench, with machine-readable medians.
bench-store-read:
    CRITERION_JSON=BENCH_store_read.json cargo bench -p zmesh-bench --bench store_read

# Buffered vs streaming store write bench (throughput + peak buffer /
# peak RSS), with machine-readable medians.
bench-store-write:
    CRITERION_JSON=BENCH_store_write.json cargo bench -p zmesh-bench --bench store_write

# SIMD kernel tiers vs their scalar references (GF(2⁸) fma, CRC-32 walk,
# SZ selection/delta loops), with machine-readable medians.
bench-kernels:
    CRITERION_JSON=BENCH_kernels.json cargo bench -p zmesh-bench --bench kernels

# Multi-client daemon traffic generator: QPS + p50/p95/p99 and cache hit
# rates, written to BENCH_serve.json.
bench-serve:
    cargo run --release -p zmesh-cli --bin zmesh -- bench-serve

# Single-request daemon latency under criterion (cold vs warm chunk LRU).
bench-serve-micro:
    CRITERION_JSON=BENCH_serve_micro.json cargo bench -p zmesh-bench --bench serve

# Regenerate every reconstructed paper artifact.
repro scale="small":
    cargo run --release -p zmesh-bench --bin repro_all -- --scale {{scale}}
