//! Integration tests for the chunked, indexed v2 store: round-trip and
//! region-query correctness, chunk-selectivity, recipe-cache amortization,
//! and the zero-overhead invariant carried over from the v1 container.

use proptest::prelude::*;
use std::sync::Arc;
use zmesh_amr::datasets::Scale;
use zmesh_amr::{datasets, StorageMode};
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;

fn config(policy: OrderingPolicy) -> CompressionConfig {
    CompressionConfig {
        policy,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    }
}

fn refs(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
}

/// Satellite: a query touching at most 1/8 of the domain must decode
/// strictly fewer chunks than the store holds — the index actually prunes.
#[test]
fn small_region_decodes_strictly_fewer_chunks() {
    for policy in [OrderingPolicy::ZOrder, OrderingPolicy::Hilbert] {
        let ds = datasets::blast2d(StorageMode::AllCells, Scale::Small);
        let out = StoreWriter::new(config(policy))
            .with_chunk_target_bytes(4 * 1024)
            .write(&refs(&ds))
            .expect("write store");
        let reader = StoreReader::open(&out.bytes).expect("open store");
        let side = reader.tree().level_dims(reader.tree().max_level())[0] as u32;
        // A corner box covering 1/8 of each axis: ≤ 1/64 of the 2-D domain.
        let q = Query::bbox([0, 0, 0], [side / 8 - 1, side / 8 - 1, 0]);
        let r = reader.query("density", &q).expect("query");
        assert!(
            r.chunks_total >= 8,
            "{policy:?}: want a multi-chunk store, got {}",
            r.chunks_total
        );
        assert!(
            r.chunks_decoded < r.chunks_total,
            "{policy:?}: decoded {}/{} chunks for a 1/64-domain query",
            r.chunks_decoded,
            r.chunks_total
        );
        assert!(
            !r.values.is_empty(),
            "{policy:?}: corner query found no cells"
        );
    }
}

/// Satellite: with a shared cache, the Nth write against the same mesh
/// reuses the recipe — no rebuild, and the recipe step gets cheaper.
#[test]
fn recipe_cache_amortizes_across_writes() {
    let ds = datasets::turb3d(StorageMode::AllCells, Scale::Small);
    let writer = StoreWriter::new(config(OrderingPolicy::Hilbert));
    let first = writer.write(&refs(&ds)).expect("first write");
    let second = writer.write(&refs(&ds)).expect("second write");
    assert!(!first.stats.recipe_cache_hit);
    assert!(
        second.stats.recipe_cache_hit,
        "second write must hit the cache"
    );
    // A cache hit is a hash lookup; a miss is a parallel sort over every
    // cell. On a Small mesh the gap is orders of magnitude — require 2x to
    // keep the assertion robust on noisy machines.
    assert!(
        second.stats.recipe_ns * 2 < first.stats.recipe_ns,
        "cache hit ({} ns) not measurably cheaper than build ({} ns)",
        second.stats.recipe_ns,
        first.stats.recipe_ns
    );
    let stats = writer.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // The cache also serves readers: opening with the writer's cache skips
    // the rebuild.
    let reader = StoreReader::open_with_cache(&second.bytes, writer.cache()).expect("open");
    assert_eq!(writer.cache().stats().hits, 2);
    drop(reader);
}

/// The v1 zero-overhead invariant holds for v2: chunk framing is by value
/// count, so index/metadata size is byte-for-byte independent of the
/// ordering policy — no recipe (or anything derived from it) is stored.
#[test]
fn v2_metadata_is_identical_across_policies() {
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
    let outs: Vec<_> = OrderingPolicy::ALL
        .iter()
        .map(|&p| {
            StoreWriter::new(config(p))
                .with_chunk_target_bytes(2048)
                .write(&refs(&ds))
                .expect("write store")
        })
        .collect();
    for pair in outs.windows(2) {
        assert_eq!(
            pair[0].stats.metadata_bytes, pair[1].stats.metadata_bytes,
            "index size must not depend on ordering policy"
        );
        assert_eq!(pair[0].stats.n_chunks, pair[1].stats.n_chunks);
    }
    // And the structure block is exactly what any AMR container carries.
    let reader = StoreReader::open(&outs[0].bytes).expect("open");
    assert_eq!(reader.header().structure, ds.tree.structure_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite property: for random presets, policies, and chunk sizes,
    // (a) the chunked store round-trips within the stored error bound and
    // (b) a region query returns bit-identical values to a full decode of
    // the same region.
    #[test]
    fn chunked_store_round_trips_and_queries_match_full_decode(
        preset in prop::sample::select(&["blast2d", "front2d", "advect2d", "turb3d"][..]),
        policy in prop::sample::select(&OrderingPolicy::ALL[..]),
        mode in prop::sample::select(&[StorageMode::LeafOnly, StorageMode::AllCells][..]),
        chunk_kb in 1u32..16,
        corner in any::<bool>(),
    ) {
        let ds = datasets::by_name(preset, mode, Scale::Tiny).expect("preset exists");
        let out = StoreWriter::new(config(policy))
            .with_chunk_target_bytes(chunk_kb * 1024)
            .write(&refs(&ds))
            .expect("write store");
        let reader = StoreReader::open(&out.bytes).expect("open store");

        for (name, original) in &ds.fields {
            // (a) Full decode honors the per-field stored bound.
            let decoded = reader.decode_field(name).expect("decode");
            let entry = reader
                .fields()
                .iter()
                .find(|e| &e.name == name)
                .expect("field entry");
            let bound = entry.resolved_bound.expect("bound recorded");
            for (a, b) in original.values().iter().zip(decoded.values()) {
                prop_assert!((a - b).abs() <= bound * (1.0 + 1e-9));
            }

            // (b) A region query returns exactly the full-decode values.
            let side = reader.tree().level_dims(reader.tree().max_level())[0] as u32;
            let (lo, hi) = if corner {
                ([0u32; 3], [side / 4, side / 4, side / 4])
            } else {
                // z starts at 0 so 2-D meshes (whose cells live at z = 0)
                // are still covered.
                ([side / 3, side / 3, 0], [(2 * side) / 3; 3])
            };
            let r = reader.query(name, &Query::bbox(lo, hi)).expect("query");
            prop_assert!(!r.storage_indices.is_empty());
            prop_assert!(r.chunks_decoded <= r.chunks_total);
            for (&s, &v) in r.storage_indices.iter().zip(&r.values) {
                prop_assert_eq!(v.to_bits(), decoded.values()[s as usize].to_bits());
            }
        }
    }
}

/// Queries work identically through the pipeline extension entry point.
#[test]
fn pipeline_pack_and_shared_tree_arc() {
    let ds = datasets::advect2d(StorageMode::LeafOnly, Scale::Tiny);
    let out = Pipeline::new(config(OrderingPolicy::Hilbert))
        .pack(&refs(&ds))
        .expect("pack");
    let reader = StoreReader::open(&out.bytes).expect("open");
    let field = reader.decode_field("scalar").expect("decode");
    assert!(Arc::ptr_eq(field.tree(), reader.tree()));
    assert_eq!(field.len(), ds.fields[0].1.len());
}

/// Satellite: version negotiation. A writer configured with `Parity::None`
/// emits a v2 store (no parity section, no width field), the default XOR
/// writer a v3, and a Reed–Solomon writer a v4 with a commit record; one
/// reader opens, queries, and full-decodes all three bit-identically, and
/// scrub degrades gracefully where parity is absent.
#[test]
fn reader_round_trips_v2_v3_and_v4_stores() {
    use zmesh_suite::store::{StoreCapabilities, StoreWriteOptions, MIN_STORE_VERSION};

    let ds = datasets::blast2d(StorageMode::AllCells, Scale::Tiny);
    let v2 = StoreWriter::with_options(
        config(OrderingPolicy::Hilbert),
        StoreWriteOptions {
            chunk_target_bytes: 2048,
            parity: Parity::None,
        },
    )
    .write(&refs(&ds))
    .expect("write v2");
    let v3 = StoreWriter::new(config(OrderingPolicy::Hilbert))
        .with_chunk_target_bytes(2048)
        .write(&refs(&ds))
        .expect("write v3");
    let v4 = StoreWriter::new(config(OrderingPolicy::Hilbert))
        .with_chunk_target_bytes(2048)
        .with_parity(Parity::Rs { data: 4, parity: 2 })
        .write(&refs(&ds))
        .expect("write v4");

    let r2 = StoreReader::open(&v2.bytes).expect("reader opens v2");
    let r3 = StoreReader::open(&v3.bytes).expect("open v3");
    let r4 = StoreReader::open(&v4.bytes).expect("open v4");
    assert_eq!(r2.header().version, MIN_STORE_VERSION);
    assert_eq!(r3.header().version, 3);
    assert_eq!(r4.header().version, zmesh_suite::store::STORE_VERSION);
    assert_eq!(
        r2.header().capabilities(),
        StoreCapabilities {
            parity: false,
            erasure_budget: 0
        }
    );
    assert_eq!(
        r3.header().capabilities(),
        StoreCapabilities {
            parity: true,
            erasure_budget: 1
        }
    );
    assert_eq!(
        r4.header().capabilities(),
        StoreCapabilities {
            parity: true,
            erasure_budget: 2
        }
    );
    assert_eq!(v2.stats.parity_bytes, 0);
    assert!(v3.stats.parity_bytes > 0);
    assert!(v4.stats.parity_bytes > v3.stats.parity_bytes / 2);

    // Decoded values are bit-identical across versions: parity changes the
    // container, never the data.
    for name in ["density", "energy"] {
        if !r2.field_names().contains(&name) {
            continue;
        }
        let f2 = r2.decode_field(name).expect("decode v2");
        let f3 = r3.decode_field(name).expect("decode v3");
        let f4 = r4.decode_field(name).expect("decode v4");
        for ((a, b), c) in f2.values().iter().zip(f3.values()).zip(f4.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
        let q = Query::bbox([0, 0, 0], [3, 3, 0]);
        let q2 = r2.query(name, &q).expect("query v2");
        let q3 = r3.query(name, &q).expect("query v3");
        let q4 = r4.query(name, &q).expect("query v4");
        assert_eq!(q2.values, q3.values);
        assert_eq!(q2.values, q4.values);
    }

    // Scrub degrades gracefully on a parity-less store.
    let report = scrub(&v2.bytes).expect("scrub v2");
    assert!(report.is_clean());
    assert!(!report.parity_available);
    assert_eq!(report.parity_chunks, 0);
    let report = scrub(&v3.bytes).expect("scrub v3");
    assert!(report.parity_available);
    assert!(report.parity_chunks > 0);
    let report = scrub(&v4.bytes).expect("scrub v4");
    assert!(report.is_clean());
    assert_eq!(report.parity_shards, 2);
}

/// Satellite: the parity section's cost is bounded by the group width —
/// roughly one parity chunk per `width` data chunks.
#[test]
fn parity_overhead_is_a_small_fraction_of_payload() {
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Small);
    for width in [4u32, 8, 16] {
        let out = StoreWriter::new(config(OrderingPolicy::Hilbert))
            .with_chunk_target_bytes(2048)
            .with_parity_group_width(width)
            .write(&refs(&ds))
            .expect("write store");
        let overhead = out.stats.parity_overhead();
        assert!(
            overhead <= 2.0 / width as f64,
            "width {width}: parity overhead {overhead:.3} exceeds ~1/{width}"
        );
    }
}
