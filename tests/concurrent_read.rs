//! Concurrency equivalence suite: a single shared [`StoreReader`] must be
//! safe to query from many threads at once, and every concurrent result
//! must be bit-identical to the serial execution of the same query.
//!
//! This is the invariant the `zmesh serve` daemon rests on — its worker
//! pool shares one reader per catalog entry — so it is pinned here at the
//! store layer, independent of any HTTP machinery:
//!
//! * **Strict × {Slice, File}:** N threads querying a pristine store
//!   return exactly the serial reader's `storage_indices`, `values`
//!   (compared as bits), chunk accounting, bound, and (empty) damage
//!   report.
//! * **Salvage × {Slice, File}:** the same holds on a parity-damaged
//!   store — concurrent salvage reads reconstruct the flipped chunk
//!   in-flight and report *identical* [`DamageReport`]s, never a
//!   half-repaired or torn view.
//! * **Shared decoded-chunk LRU:** attaching one [`ChunkCache`] to the
//!   reader and hammering it concurrently changes nothing about the
//!   results; the cache's single-flight accounting stays coherent
//!   (`hits + misses + coalesced` covers every decode).
//!
//! Damage is injected exclusively through `zmesh_store::faultinject` so
//! the salvage arm hits exactly the chunk it names.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;
use zmesh_suite::store::{
    faultinject, ByteSource, ChunkCache, DamageReport, FileSource, StoreReader,
};

fn fixture_config() -> CompressionConfig {
    CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    }
}

/// Pristine v3 fixture: many small chunks so queries span several, XOR
/// parity so the salvage arm can actually repair.
fn pristine() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
        let fields: Vec<(&str, &AmrField)> =
            ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
        StoreWriter::with_options(
            fixture_config(),
            StoreWriteOptions {
                chunk_target_bytes: 1024,
                parity: Parity::Xor { width: 4 },
            },
        )
        .write(&fields)
        .expect("write fixture")
        .bytes
    })
}

/// The pristine fixture with one data chunk of field 0 bit-flipped —
/// within XOR parity's budget, so salvage repairs it in-flight.
fn damaged() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut bytes = pristine().clone();
        faultinject::flip_data_chunk(&mut bytes, 0, 0);
        bytes
    })
}

/// Writes `bytes` to a fresh temp file and returns its path. Each call
/// gets a distinct name so concurrent tests never collide.
fn temp_store(bytes: &[u8]) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "zmesh_concurrent_read_{}_{n}.zms",
        std::process::id()
    ));
    std::fs::write(&path, bytes).expect("write temp store");
    path
}

/// Everything a query answer contains, with floats frozen to bits so
/// equality means *bit*-identity.
#[derive(Debug, PartialEq)]
struct Snapshot {
    storage_indices: Vec<u32>,
    value_bits: Vec<u64>,
    chunks_decoded: usize,
    chunks_total: usize,
    bound_bits: Option<u64>,
    damage: DamageReport,
}

fn snapshot(r: &zmesh_store::QueryResult) -> Snapshot {
    Snapshot {
        storage_indices: r.storage_indices.clone(),
        value_bits: r.values.iter().map(|v| v.to_bits()).collect(),
        chunks_decoded: r.chunks_decoded,
        chunks_total: r.chunks_total,
        bound_bits: r.bound.map(f64::to_bits),
        damage: r.damage.clone(),
    }
}

/// Side length of the finest grid, for scaling generated bboxes.
fn finest_side() -> u32 {
    let reader = StoreReader::open(pristine()).expect("open fixture");
    reader.tree().level_dims(reader.tree().max_level())[0] as u32
}

/// A query pool that spans the interesting shapes: full domain (touches
/// the damaged chunk), corners, strips, and level-restricted reads.
fn query_pool(extra: Option<Query>) -> Vec<Query> {
    let side = finest_side();
    let hi = side - 1;
    let mid = side / 2;
    let mut pool = vec![
        Query::bbox([0, 0, 0], [hi, hi, 0]),
        Query::bbox([0, 0, 0], [mid, mid, 0]),
        Query::bbox([mid, mid, 0], [hi, hi, 0]),
        Query::bbox([0, mid, 0], [hi, mid, 0]),
        Query::bbox([0, 0, 0], [hi, hi, 0]).with_levels([0, 1]),
        Query::bbox([0, 0, 0], [hi, hi, 0]).with_levels([2, 3, 4]),
    ];
    pool.extend(extra);
    pool
}

/// Serial golden pass, then `threads` scoped threads re-running every
/// (field × query) against the *same shared reader*, each starting at a
/// different offset so the interleavings differ. Every concurrent answer
/// must equal the serial one exactly.
fn assert_concurrent_matches_serial<S: ByteSource + Sync>(
    reader: &StoreReader<S>,
    threads: usize,
    queries: &[Query],
) -> Vec<Snapshot> {
    let fields: Vec<String> = reader.fields().iter().map(|f| f.name.clone()).collect();
    let work: Vec<(&str, &Query)> = fields
        .iter()
        .flat_map(|f| queries.iter().map(move |q| (f.as_str(), q)))
        .collect();

    let golden: Vec<Snapshot> = work
        .iter()
        .map(|(f, q)| snapshot(&reader.query(f, q).expect("serial query")))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let work = &work;
            let golden = &golden;
            scope.spawn(move || {
                for i in 0..work.len() {
                    let idx = (i + t) % work.len();
                    let (f, q) = work[idx];
                    let got = snapshot(&reader.query(f, q).expect("concurrent query"));
                    assert_eq!(
                        got, golden[idx],
                        "thread {t} diverged from serial on field {f:?} query #{idx}"
                    );
                }
            });
        }
    });
    golden
}

/// Strict policy, pristine store, both sources: concurrent ≡ serial.
#[test]
fn strict_concurrent_queries_match_serial_on_both_sources() {
    let queries = query_pool(None);

    let slice_reader = StoreReader::open(pristine()).expect("open slice");
    let slice_golden = assert_concurrent_matches_serial(&slice_reader, 4, &queries);

    let path = temp_store(pristine());
    let file_reader =
        StoreReader::open_source(FileSource::open(&path).expect("open file")).expect("open ranged");
    let file_golden = assert_concurrent_matches_serial(&file_reader, 4, &queries);
    std::fs::remove_file(&path).ok();

    // The two sources agree with each other, not just each with itself.
    assert_eq!(slice_golden, file_golden);
    // Strict on a pristine store never reports damage.
    assert!(slice_golden.iter().all(|s| s.damage.chunks.is_empty()));
}

/// Salvage policy, damaged store, both sources: concurrent ≡ serial,
/// including the damage report — and the damaged chunk is actually hit.
#[test]
fn salvage_concurrent_queries_on_damaged_store_match_serial() {
    let queries = query_pool(None);

    let slice_reader = StoreReader::open(damaged())
        .expect("open slice")
        .with_read_policy(ReadPolicy::salvage());
    let slice_golden = assert_concurrent_matches_serial(&slice_reader, 4, &queries);

    let path = temp_store(damaged());
    let file_reader = StoreReader::open_source(FileSource::open(&path).expect("open file"))
        .expect("open ranged")
        .with_read_policy(ReadPolicy::salvage());
    let file_golden = assert_concurrent_matches_serial(&file_reader, 4, &queries);
    std::fs::remove_file(&path).ok();

    assert_eq!(slice_golden, file_golden);
    // The full-domain query must have crossed the flipped chunk, so the
    // salvage arm is genuinely exercised (repaired, not silently clean).
    assert!(
        slice_golden.iter().any(|s| !s.damage.chunks.is_empty()),
        "no query touched the damaged chunk — fixture too coarse"
    );
    // XOR parity with a single flip repairs in-flight: values match the
    // pristine store bit for bit.
    let clean = StoreReader::open(pristine()).expect("open pristine");
    let q = &queries[0];
    let clean_snap = snapshot(
        &clean
            .query(&clean.fields()[0].name.clone(), q)
            .expect("clean query"),
    );
    assert_eq!(slice_golden[0].storage_indices, clean_snap.storage_indices);
    assert_eq!(slice_golden[0].value_bits, clean_snap.value_bits);
}

/// A shared decoded-chunk LRU under concurrent hammering: results stay
/// bit-identical and the single-flight accounting remains coherent.
#[test]
fn shared_chunk_cache_keeps_results_identical_under_concurrency() {
    let path = temp_store(pristine());
    let cache = Arc::new(ChunkCache::new(8 << 20));
    let reader = StoreReader::open_source(FileSource::open(&path).expect("open file"))
        .expect("open ranged")
        .with_chunk_cache(Arc::clone(&cache), 1);
    let queries = query_pool(None);
    assert_concurrent_matches_serial(&reader, 4, &queries);
    std::fs::remove_file(&path).ok();

    let stats = cache.stats();
    assert!(stats.misses > 0, "cache never filled: {stats:?}");
    assert!(
        stats.hits > 0,
        "repeat queries never hit the cache: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Random thread counts and a random extra bbox/level query: the
    // whole {Slice, File} × {Strict-on-pristine, Salvage-on-damaged}
    // matrix stays serial-equivalent.
    #[test]
    fn concurrent_reads_equal_serial_reads(
        threads in 2usize..=4,
        ax in 0u32..100,
        ay in 0u32..100,
        bx in 0u32..100,
        by in 0u32..100,
        mask_bits in 1u32..32,
    ) {
        let side = finest_side();
        let scale = |p: u32| p * (side - 1) / 99;
        let (lo_x, hi_x) = (scale(ax).min(scale(bx)), scale(ax).max(scale(bx)));
        let (lo_y, hi_y) = (scale(ay).min(scale(by)), scale(ay).max(scale(by)));
        let levels = (0..5).filter(|l| mask_bits & (1 << l) != 0);
        let extra = Query::bbox([lo_x, lo_y, 0], [hi_x, hi_y, 0]).with_levels(levels);
        let queries = query_pool(Some(extra));

        // Strict × Slice on pristine.
        let reader = StoreReader::open(pristine()).expect("open slice");
        assert_concurrent_matches_serial(&reader, threads, &queries);

        // Salvage × File on damaged.
        let path = temp_store(damaged());
        let reader = StoreReader::open_source(FileSource::open(&path).expect("open file"))
            .expect("open ranged")
            .with_read_policy(ReadPolicy::salvage());
        assert_concurrent_matches_serial(&reader, threads, &queries);
        std::fs::remove_file(&path).ok();
    }
}
