//! Streaming-write equivalence: the bounded-window sink pipeline must be
//! an *implementation detail* — byte-identical output to the in-memory
//! writer across window sizes, parity schemes, and thread counts, and
//! invisible write-side transients behind the retry loop.

use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use zmesh::CompressionConfig;
use zmesh_amr::{datasets, AmrField, StorageMode};
use zmesh_store::faultinject::{FaultSink, FaultSpec};
use zmesh_store::{
    Parity, RetryPolicy, RetryStats, StoreReader, StoreWriter, StreamOptions, VecSink,
};

const CHUNK_BYTES: u32 = 512;

fn dataset() -> &'static datasets::Dataset {
    static DS: OnceLock<datasets::Dataset> = OnceLock::new();
    DS.get_or_init(|| datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny))
}

fn fields(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
}

fn writer_for(parity: Parity) -> StoreWriter {
    StoreWriter::new(CompressionConfig::zmesh_default())
        .with_chunk_target_bytes(CHUNK_BYTES)
        .with_parity(parity)
}

/// Buffered reference bytes per parity scheme, packed once.
fn reference(parity_idx: usize) -> &'static (Parity, Vec<u8>) {
    static REFS: OnceLock<Vec<(Parity, Vec<u8>)>> = OnceLock::new();
    &REFS.get_or_init(|| {
        PARITIES
            .iter()
            .map(|&parity| {
                let out = writer_for(parity)
                    .write(&fields(dataset()))
                    .expect("buffered pack");
                (parity, out.bytes)
            })
            .collect()
    })[parity_idx]
}

const PARITIES: [Parity; 3] = [
    Parity::None,
    Parity::Xor { width: 3 },
    Parity::Rs { data: 4, parity: 2 },
];

/// No-sleep retry policy so fault campaigns run at full speed.
fn fast_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        attempts,
        base: Duration::ZERO,
        cap: Duration::ZERO,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Window sizes {1 chunk, 3 chunks, unbounded} × parity × thread
    // counts: every combination streams to the same bytes the buffered
    // writer produces.
    #[test]
    fn streaming_output_is_bit_identical_to_buffered(
        parity_idx in 0usize..3,
        window_sel in 0usize..3,
        threads in 1usize..=4,
    ) {
        let (parity, want) = reference(parity_idx);
        let window = [CHUNK_BYTES as usize, 3 * CHUNK_BYTES as usize, 0][window_sel];
        let opts = StreamOptions { window_bytes: window, ..StreamOptions::default() };
        let mut sink = VecSink::new();
        let stats = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                writer_for(*parity).write_to_sink(&fields(dataset()), &mut sink, &opts)
            })
            .expect("streaming pack");
        prop_assert_eq!(
            sink.bytes(), &want[..],
            "parity {:?} window {} threads {}", parity, window, threads
        );
        prop_assert!(stats.streamed);
        prop_assert_eq!(stats.retry, RetryStats::default());
        // What streamed is a real store.
        let reader = StoreReader::open(sink.bytes()).expect("open streamed store");
        prop_assert_eq!(reader.field_names().len(), dataset().fields.len());
    }

    // A transient-only write fault plan is invisible behind the retry
    // loop: identical bytes, `gave_up == 0`, and every injected error
    // accounted as a retry.
    #[test]
    fn transient_write_faults_are_invisible_under_retry(
        seed in any::<u64>(),
        wtransient in 0u32..=500,
        wshort in 0u32..=300,
        burst in 1u32..=2,
        parity_idx in 0usize..3,
        window_sel in 0usize..3,
    ) {
        let (parity, want) = reference(parity_idx);
        let window = [CHUNK_BYTES as usize, 3 * CHUNK_BYTES as usize, 0][window_sel];
        let spec = FaultSpec {
            seed,
            write_transient_per_mille: wtransient,
            short_write_per_mille: wshort,
            burst,
            ..FaultSpec::default()
        };
        let mut sink = FaultSink::new(VecSink::new(), spec);
        // Retry budget outlasts the burst: the plan must be invisible.
        let opts = StreamOptions {
            window_bytes: window,
            retry: fast_retry(burst + 2),
        };
        let stats = writer_for(*parity)
            .write_to_sink(&fields(dataset()), &mut sink, &opts)
            .expect("transient-only plan must not fail the pack");
        prop_assert_eq!(stats.retry.gave_up, 0);
        prop_assert_eq!(stats.retry.retries, sink.stats().transient);
        prop_assert_eq!(sink.inner().bytes(), &want[..]);
    }

    // With a retry budget *shorter* than the burst, the writer gives up
    // with a transient error — and reports it — instead of hanging or
    // emitting partial silence.
    #[test]
    fn exhausted_write_retries_surface_as_transient(
        seed in any::<u64>(),
        parity_idx in 0usize..3,
    ) {
        let (parity, _) = reference(parity_idx);
        let spec = FaultSpec {
            seed,
            write_transient_per_mille: 1000,
            burst: 5,
            ..FaultSpec::default()
        };
        let mut sink = FaultSink::new(VecSink::new(), spec);
        let opts = StreamOptions {
            window_bytes: 0,
            retry: fast_retry(2), // 2 attempts vs bursts of 5
        };
        let err = writer_for(*parity)
            .write_to_sink(&fields(dataset()), &mut sink, &opts)
            .expect_err("rate 1000 with burst > attempts must exhaust the budget");
        prop_assert!(err.is_transient(), "{}", err);
    }
}

/// The exact window sizes the satellite task names, deterministically
/// (proptest samples; this pins the boundary cases).
#[test]
fn named_window_sizes_round_trip() {
    for (parity_idx, _) in PARITIES.iter().enumerate() {
        let (parity, want) = reference(parity_idx);
        for window in [
            CHUNK_BYTES as usize,     // one chunk: fully serialized pipeline
            3 * CHUNK_BYTES as usize, // a few chunks in flight
            0,                        // unbounded
        ] {
            let mut sink = VecSink::new();
            writer_for(*parity)
                .write_to_sink(
                    &fields(dataset()),
                    &mut sink,
                    &StreamOptions {
                        window_bytes: window,
                        ..StreamOptions::default()
                    },
                )
                .expect("streaming pack");
            assert_eq!(sink.bytes(), &want[..], "parity {parity:?} window {window}");
        }
    }
}
