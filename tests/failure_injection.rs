//! Failure injection: corrupted, truncated, and bit-flipped containers must
//! produce typed errors or (for payload-region damage) bounded garbage —
//! never panics, hangs, or out-of-bounds behavior.

use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;

fn container() -> Vec<u8> {
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    Pipeline::new(CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    })
    .compress(&fields)
    .expect("compress")
    .bytes
}

#[test]
fn every_truncation_point_errors_cleanly() {
    let bytes = container();
    for cut in 0..bytes.len().min(64) {
        assert!(Pipeline::decompress(&bytes[..cut]).is_err(), "cut = {cut}");
    }
    // Also a spread of larger cuts.
    for frac in 1..20 {
        let cut = bytes.len() * frac / 20;
        let _ = Pipeline::decompress(&bytes[..cut]); // must not panic
    }
}

#[test]
fn single_byte_flips_never_panic() {
    let bytes = container();
    // Deterministic pseudo-random positions covering header and payload.
    let mut pos = 1u64;
    for _ in 0..400 {
        pos = pos
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (pos % bytes.len() as u64) as usize;
        let bit = 1u8 << (pos >> 61);
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= bit;
        let _ = Pipeline::decompress(&corrupted); // Err or garbage, no panic
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut state = 42u64;
    for len in [0usize, 1, 4, 5, 16, 100, 1000] {
        let mut buf = vec![0u8; len];
        for b in &mut buf {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 56) as u8;
        }
        let _ = Pipeline::decompress(&buf);
    }
}

#[test]
fn swapped_payloads_fail_or_restore_wrong_but_safely() {
    // Graft the payload of one container onto another's header region by
    // concatenation tricks: parsing must stay memory-safe.
    let a = container();
    let mut frankenstein = a.clone();
    frankenstein.extend_from_slice(&a);
    assert!(
        Pipeline::decompress(&frankenstein).is_err(),
        "trailing bytes accepted"
    );
}

#[test]
fn structure_metadata_corruption_is_detected() {
    let bytes = container();
    // The structure block starts right after magic+version+3 tags+varint.
    // Flip bytes early in the container (structure region): the tree
    // re-validation must catch inconsistencies rather than panic.
    for idx in 8..40usize.min(bytes.len()) {
        let mut corrupted = bytes.clone();
        corrupted[idx] = corrupted[idx].wrapping_add(13);
        let _ = Pipeline::decompress(&corrupted);
    }
}

// ---- v2 chunked store (the same contract, plus stronger guarantees: the
// ---- index CRC and per-chunk CRCs turn "bounded garbage" into typed
// ---- errors). The CLI path — distinct exit codes for the same injected
// ---- failures — is covered in crates/cli/tests/cli.rs.

fn store() -> Vec<u8> {
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    StoreWriter::new(CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    })
    .with_chunk_target_bytes(2048)
    .write(&fields)
    .expect("write store")
    .bytes
}

fn store_decode_all(bytes: &[u8]) -> Result<(), zmesh_suite::store::StoreError> {
    let reader = StoreReader::open(bytes)?;
    let names: Vec<String> = reader.field_names().iter().map(|s| s.to_string()).collect();
    for name in names {
        reader.decode_field(&name)?;
    }
    Ok(())
}

#[test]
fn store_truncations_error_cleanly() {
    let bytes = store();
    for cut in 0..bytes.len().min(64) {
        assert!(store_decode_all(&bytes[..cut]).is_err(), "cut = {cut}");
    }
    for frac in 1..20 {
        let cut = bytes.len() * frac / 20;
        assert!(
            store_decode_all(&bytes[..cut]).is_err(),
            "cut at {frac}/20 accepted"
        );
    }
}

#[test]
fn store_single_byte_flips_are_typed_errors_not_garbage() {
    // Stronger than v1: every single-byte flip anywhere in the store is
    // *detected* — header/footer flips by the index CRC, payload flips by
    // the per-chunk CRC. (Exception-free: a flip cannot go unnoticed.)
    let bytes = store();
    let mut pos = 7u64;
    for _ in 0..300 {
        pos = pos
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (pos % bytes.len() as u64) as usize;
        let bit = 1u8 << (pos >> 61);
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= bit;
        assert!(
            store_decode_all(&corrupted).is_err(),
            "flip at byte {idx} bit {bit:#x} went undetected"
        );
    }
}

#[test]
fn store_random_garbage_never_panics() {
    let mut state = 1234u64;
    for len in [0usize, 1, 4, 16, 22, 100, 1000] {
        let mut buf = vec![0u8; len];
        for b in &mut buf {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 56) as u8;
        }
        assert!(store_decode_all(&buf).is_err());
    }
}

/// Corrupts one byte in each of `targets` = (field index, chunk index),
/// located exactly via the shared fault-injection harness.
fn corrupt_chunks(bytes: &mut [u8], targets: &[(usize, usize)]) {
    for &(f, c) in targets {
        zmesh_suite::store::faultinject::flip_data_chunk(bytes, f, c);
    }
}

#[test]
fn salvage_report_names_exactly_the_injected_chunks() {
    use zmesh_suite::store::{ReadPolicy, StoreError};

    let clean = store();
    let full = StoreReader::open(&clean)
        .expect("open clean")
        .decode_field("temperature")
        .expect("clean decode");

    // Inject damage into exactly these chunks of field 0 ("temperature");
    // field 1 stays intact. Both chunks sit in the same parity group
    // (default width 8), so parity cannot rebuild either: both stay Lost.
    let injected = [(0usize, 0usize), (0, 2)];
    let mut bytes = clean.clone();
    corrupt_chunks(&mut bytes, &injected);

    // Strict: typed per-chunk CRC error, nothing salvaged.
    let strict = StoreReader::open(&bytes).expect("open");
    assert!(matches!(
        strict.decode_field("temperature"),
        Err(StoreError::ChunkCrc { .. })
    ));

    // Salvage: succeeds, and the report lists exactly the injected chunks.
    let reader = StoreReader::open(&bytes)
        .expect("open")
        .with_read_policy(ReadPolicy::salvage());
    let (field, report) = reader
        .decode_field_with_report("temperature")
        .expect("salvage decode");
    let mut reported: Vec<(usize, usize)> = report
        .chunks
        .iter()
        .map(|d| {
            assert_eq!(d.field, "temperature");
            assert!(d.values_lost > 0);
            assert!(!d.byte_range.is_empty());
            (0, d.chunk)
        })
        .collect();
    reported.sort_unstable();
    assert_eq!(reported, injected, "report must name exactly what was hit");

    // Surviving cells are bit-identical to the clean decode; lost cells
    // are NaN, and there are exactly as many as the report claims.
    let mut nan = 0usize;
    for (a, b) in field.values().iter().zip(full.values()) {
        if a.is_nan() {
            nan += 1;
        } else {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(nan, report.total_values_lost());
    assert_eq!(report.values_lost_in("temperature"), nan);
    assert_eq!(report.values_lost_in("pressure"), 0);

    // The untouched field decodes undamaged under the same policy.
    let (_, untouched) = reader
        .decode_field_with_report("pressure")
        .expect("clean field");
    assert!(untouched.is_empty());
}
