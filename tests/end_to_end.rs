//! Cross-crate integration: every preset × policy × codec round-trips under
//! its error bound through the full container pipeline.

use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_metrics::ErrorStats;
use zmesh_suite::prelude::*;

fn check_dataset(ds: &datasets::Dataset, rel_eb: f64) {
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    for policy in OrderingPolicy::ALL {
        for codec in [CodecKind::Sz, CodecKind::Zfp] {
            let config = CompressionConfig {
                policy,
                codec,
                control: ErrorControl::ValueRangeRelative(rel_eb),
            };
            let compressed = Pipeline::new(config)
                .compress(&fields)
                .unwrap_or_else(|e| panic!("{}/{policy:?}/{codec:?}: {e}", ds.name));
            let restored = Pipeline::decompress(&compressed.bytes)
                .unwrap_or_else(|e| panic!("{}/{policy:?}/{codec:?}: {e}", ds.name));
            assert_eq!(restored.policy, policy);
            assert_eq!(restored.fields.len(), ds.fields.len());
            assert_eq!(restored.tree.cell_count(), ds.tree.cell_count());
            for ((name, orig), (rname, rest)) in ds.fields.iter().zip(&restored.fields) {
                assert_eq!(name, rname);
                let stats = ErrorStats::between(orig.values(), rest.values());
                let bound = rel_eb * stats.range;
                assert!(
                    stats.max_abs <= bound * (1.0 + 1e-9),
                    "{}/{policy:?}/{codec:?}/{name}: {} > {bound}",
                    ds.name,
                    stats.max_abs
                );
            }
        }
    }
}

#[test]
fn every_preset_round_trips_tiny() {
    for mode in [StorageMode::LeafOnly, StorageMode::AllCells] {
        for name in datasets::names() {
            let ds = datasets::by_name(name, mode, Scale::Tiny).expect("known preset");
            check_dataset(&ds, 1e-4);
        }
    }
}

#[test]
fn representative_presets_round_trip_small() {
    for name in ["front2d", "cluster3d"] {
        let ds = datasets::by_name(name, StorageMode::AllCells, Scale::Small).unwrap();
        check_dataset(&ds, 1e-3);
        check_dataset(&ds, 1e-6);
    }
}

#[test]
fn compression_is_deterministic() {
    let ds = datasets::blast2d(StorageMode::AllCells, Scale::Tiny);
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let config = CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    };
    let a = Pipeline::new(config).compress(&fields).unwrap();
    let b = Pipeline::new(config).compress(&fields).unwrap();
    assert_eq!(a.bytes, b.bytes, "containers must be bit-reproducible");
}

#[test]
fn decompressed_container_recompresses_identically() {
    // Idempotence: decompress(compress(x)) compressed again with the same
    // config yields a container of identical size (the data is now exactly
    // representable).
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let config = CompressionConfig {
        policy: OrderingPolicy::ZOrder,
        codec: CodecKind::Sz,
        control: ErrorControl::Absolute(1e-3),
    };
    let c1 = Pipeline::new(config).compress(&fields).unwrap();
    let d1 = Pipeline::decompress(&c1.bytes).unwrap();
    let fields2: Vec<(&str, &zmesh_amr::AmrField)> =
        d1.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let c2 = Pipeline::new(config).compress(&fields2).unwrap();
    let d2 = Pipeline::decompress(&c2.bytes).unwrap();
    // Second generation is a fixed point: values identical.
    for ((_, a), (_, b)) in d1.fields.iter().zip(&d2.fields) {
        assert_eq!(a.values(), b.values());
    }
}
