//! Panic-safety property suite for the untrusted read path.
//!
//! Every parser that accepts bytes from disk — the v1 container
//! ([`zmesh::ContainerHeader::parse`], [`Pipeline::decompress`]) and the
//! v2/v3/v4 store ([`zmesh_suite::store::open_parts`], [`StoreReader::open`],
//! [`zmesh_suite::store::scrub`], [`zmesh_suite::store::repair`]) — must
//! return an `Err` on hostile input, never panic, abort, or wrap around.
//! (A torn v4 tail is an `Err` too — [`StoreError::Torn`] — just a typed
//! one.) The suite feeds each of them:
//!
//! * truncations of a valid artifact at every kind of boundary,
//! * multi-bit flips of a valid artifact (which may land in varint
//!   length fields, CRCs, or payload),
//! * runs of `0xff` splatted over a valid artifact (the worst case for
//!   LEB128-style varint lengths: maximal continuation bytes),
//! * footer mangles *re-signed* with a correct trailer CRC and commit
//!   record, so attacker-controlled counts reach `read_footer` itself,
//! * pure random garbage.
//!
//! Failures here are exactly the class fixed by the checked-add hardening
//! in `read_container` / the store footer parser: in debug builds an
//! unchecked `pos + len` panics on overflow, in release it wraps and can
//! slice out of bounds.

use proptest::prelude::*;
use std::sync::OnceLock;
use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;
use zmesh_suite::store::{self, ReadPolicy, StoreReader, StoreWriter};

fn config() -> CompressionConfig {
    CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    }
}

fn refs(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
}

/// A valid v1 container, built once.
fn v1_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = datasets::blast2d(StorageMode::AllCells, Scale::Tiny);
        Pipeline::new(config())
            .compress(&refs(&ds))
            .expect("compress fixture")
            .bytes
    })
}

/// A valid v3 store with several chunks per field, built once.
fn v2_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
        StoreWriter::new(config())
            .with_chunk_target_bytes(1024)
            .write(&refs(&ds))
            .expect("write fixture")
            .bytes
    })
}

/// A valid v4 Reed–Solomon store (commit record, shard groups), built once.
fn v4_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
        StoreWriter::new(config())
            .with_chunk_target_bytes(1024)
            .with_parity(Parity::Rs { data: 4, parity: 2 })
            .write(&refs(&ds))
            .expect("write fixture")
            .bytes
    })
}

/// Picks a store-generation fixture: 0 = v1 container, 1 = v3 XOR store,
/// 2 = v4 RS store.
fn fixture(kind: usize) -> &'static [u8] {
    match kind {
        0 => v1_bytes(),
        1 => v2_bytes(),
        _ => v4_bytes(),
    }
}

/// Runs every untrusted entry point over `bytes`. Reaching the end of this
/// function without a panic IS the property; the `Result`s are free to be
/// `Err` anything.
fn must_not_panic(bytes: &[u8]) {
    let _ = zmesh::ContainerHeader::parse(bytes);
    let _ = Pipeline::list_fields(bytes);
    let _ = Pipeline::decompress(bytes);
    let _ = store::peek_header(bytes);
    let _ = store::open_parts(bytes);
    let _ = store::scrub(bytes);
    let _ = store::repair(bytes, None);
    let _ = store::repair(bytes, Some(bytes));
    for policy in [
        ReadPolicy::Strict,
        ReadPolicy::Salvage {
            fill: store::SalvageFill::Nan,
        },
        ReadPolicy::Salvage {
            fill: store::SalvageFill::Zero,
        },
    ] {
        if let Ok(reader) = StoreReader::open(bytes) {
            let reader = reader.with_read_policy(policy);
            for name in reader.field_names() {
                let _ = reader.decode_field_with_report(name);
                let _ = reader.query(name, &Query::bbox([0, 0, 0], [u32::MAX; 3]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_artifacts_error_instead_of_panicking(
        kind in 0usize..3,
        frac in 0.0f64..1.0,
    ) {
        let valid = fixture(kind);
        let cut = ((valid.len() as f64) * frac) as usize;
        must_not_panic(&valid[..cut.min(valid.len())]);
    }

    #[test]
    fn bit_flipped_artifacts_error_instead_of_panicking(
        kind in 0usize..3,
        flips in prop::collection::vec((0usize..1 << 16, 0u8..8), 1..8),
    ) {
        let valid = fixture(kind);
        let mut bytes = valid.to_vec();
        for (pos, bit) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        must_not_panic(&bytes);
    }

    #[test]
    fn varint_mangled_artifacts_error_instead_of_panicking(
        kind in 0usize..3,
        start in 0usize..1 << 16,
        run in 1usize..32,
        fill in prop::sample::select(&[0xffu8, 0x80, 0x7f, 0x00][..]),
    ) {
        // Saturate a run of bytes with varint worst cases: all-ones and
        // continuation-bit patterns decode as huge or never-ending LEB128
        // lengths wherever they land on a length field.
        let valid = fixture(kind);
        let mut bytes = valid.to_vec();
        let start = start % bytes.len();
        let end = (start + run).min(bytes.len());
        bytes[start..end].fill(fill);
        must_not_panic(&bytes);
    }

    #[test]
    fn footer_mangled_behind_valid_crcs_errors_instead_of_panicking(
        v4 in any::<bool>(),
        pos in 0usize..1 << 16,
        run in 1usize..24,
        fill in prop::sample::select(&[0xffu8, 0x80, 0x7f, 0x01][..]),
    ) {
        // The nastiest footer attack: tamper with the index, then re-sign
        // it. The trailer CRC (and, on v4, the commit record) is patched to
        // match the mangled bytes, so the parser walks straight past every
        // integrity gate and `read_footer` consumes the attacker-controlled
        // chunk/parity counts directly — exactly where the checked
        // arithmetic must hold the line.
        let valid = if v4 { v4_bytes() } else { v2_bytes() };
        let mut bytes = valid.to_vec();
        let body_len = if v4 {
            bytes.len() - store::COMMIT_RECORD_BYTES
        } else {
            bytes.len()
        };
        let trailer_at = body_len - store::TRAILER_BYTES;
        let footer_at =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        let header_bytes = store::peek_header(&bytes).expect("valid fixture").header_bytes;

        let start = footer_at + pos % (trailer_at - footer_at);
        let end = (start + run).min(trailer_at);
        bytes[start..end].fill(fill);

        let mut signed = bytes[..header_bytes].to_vec();
        signed.extend_from_slice(&bytes[footer_at..trailer_at]);
        let crc = zmesh::crc32(&signed).to_le_bytes();
        bytes[trailer_at + 8..trailer_at + 12].copy_from_slice(&crc);
        if v4 {
            bytes[body_len + 8..body_len + 12].copy_from_slice(&crc);
            let self_crc = zmesh::crc32(&bytes[body_len..body_len + 12]).to_le_bytes();
            bytes[body_len + 12..body_len + 16].copy_from_slice(&self_crc);
        }
        must_not_panic(&bytes);
    }

    #[test]
    fn random_garbage_errors_instead_of_panicking(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
        magic in any::<bool>(),
    ) {
        // Half the cases get a valid magic prefix so parsing proceeds past
        // the first gate into the length-field logic.
        let mut bytes = bytes;
        if magic && bytes.len() >= 4 {
            let m = if bytes[0] & 1 == 0 {
                zmesh::CONTAINER_MAGIC
            } else {
                &store::STORE_MAGIC
            };
            bytes[..4].copy_from_slice(m);
        }
        must_not_panic(&bytes);
    }
}
