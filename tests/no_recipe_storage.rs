//! The paper's zero-overhead claim, end to end: the restore recipe is never
//! written; containers differ across ordering policies only in the policy
//! tag and the payload bytes.

use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;

fn compress(ds: &datasets::Dataset, policy: OrderingPolicy) -> zmesh::Compressed {
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    Pipeline::new(CompressionConfig {
        policy,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    })
    .compress(&fields)
    .expect("compress")
}

#[test]
fn header_bytes_identical_across_policies() {
    let ds = datasets::diffuse2d(StorageMode::AllCells, Scale::Tiny);
    let sizes: Vec<usize> = OrderingPolicy::ALL
        .iter()
        .map(|&p| {
            let c = compress(&ds, p);
            c.stats.container_bytes - c.stats.payload_bytes
        })
        .collect();
    assert_eq!(sizes[0], sizes[1], "zorder header != baseline header");
    assert_eq!(sizes[1], sizes[2], "hilbert header != zorder header");
}

#[test]
fn recipe_is_rebuilt_from_container_metadata_alone() {
    // Decompress a zMesh container in a "fresh process" simulation: only
    // the container bytes exist; the original tree object is dropped.
    let bytes = {
        let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
        compress(&ds, OrderingPolicy::Hilbert).bytes
        // ds (and its tree) dropped here
    };
    let restored = Pipeline::decompress(&bytes).expect("decompress from bytes alone");
    assert!(
        restored.recipe_ns > 0,
        "recipe must be re-generated, not read"
    );
    assert_eq!(restored.fields.len(), 2);
}

#[test]
fn metadata_is_what_any_amr_container_carries() {
    // The container's structure block equals AmrTree::structure_bytes —
    // i.e. zMesh adds no bytes beyond standard AMR metadata.
    let ds = datasets::blast2d(StorageMode::AllCells, Scale::Tiny);
    let c = compress(&ds, OrderingPolicy::Hilbert);
    let header = zmesh::ContainerHeader::parse(&c.bytes).expect("parse");
    assert_eq!(header.structure, ds.tree.structure_bytes());
}

#[test]
fn baseline_and_zmesh_payloads_differ_but_sizes_are_honest() {
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Small);
    let base = compress(&ds, OrderingPolicy::LevelOrder);
    let zm = compress(&ds, OrderingPolicy::Hilbert);
    // Reordering changed the payload...
    assert_ne!(base.bytes, zm.bytes);
    // ...and the ratio accounting covers the whole container.
    assert_eq!(base.stats.container_bytes, base.bytes.len());
    assert_eq!(zm.stats.container_bytes, zm.bytes.len());
}
