//! Self-healing property suite: correlated damage patterns against the
//! parity-protected stores (v3 XOR and v4 Reed–Solomon).
//!
//! The contract under test:
//!
//! * **One failure per parity group** is always recoverable: salvage reads
//!   reconstruct the chunk in-flight (bit-identical to the clean decode),
//!   and `repair` rewrites the whole container byte-identical to the
//!   pristine bytes.
//! * **Two failures in the same group** exceed XOR parity: both chunks are
//!   classified `Lost` (never silently wrong), and `repair` refuses to
//!   write output — unless a structurally identical replica (or the raw
//!   dataset, via `repair_with`) supplies the missing chunks.
//! * **Up to `m` failures per Reed–Solomon group** round-trip
//!   byte-identically for random `(k, m)` geometries; `m + 1` failures
//!   degrade to `Lost` + fill exactly like an overwhelmed v3 group.
//! * **Parity-only damage** never costs data: full decodes still succeed
//!   under salvage (the damage report names the group), and `repair`
//!   rebuilds the parity section byte-identically from the intact data.
//! * **A write truncated at any byte** opens as `StoreError::Torn` (once
//!   enough bytes survive to prove it was a store) — never a panic, never
//!   a silently short decode.
//!
//! Damage is injected exclusively through `zmesh_store::faultinject` so
//! every test hits exactly the chunk it names.

use proptest::prelude::*;
use std::sync::OnceLock;
use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;
use zmesh_suite::store::{faultinject, DamageStatus, RepairSource, StoreWriteOptions};

const WIDTH: u32 = 4;

fn fixture_config() -> CompressionConfig {
    CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    }
}

fn fixture_dataset() -> datasets::Dataset {
    datasets::front2d(StorageMode::AllCells, Scale::Tiny)
}

fn write_fixture(parity: Parity) -> Vec<u8> {
    let ds = fixture_dataset();
    let fields: Vec<(&str, &AmrField)> = ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    StoreWriter::with_options(
        fixture_config(),
        StoreWriteOptions {
            chunk_target_bytes: 1024,
            parity,
        },
    )
    .write(&fields)
    .expect("write fixture")
    .bytes
}

fn pristine() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| write_fixture(Parity::Xor { width: WIDTH }))
}

/// (field name, chunk count) for field 0 of the fixture.
fn field0() -> (String, usize) {
    let reader = StoreReader::open(pristine()).expect("open fixture");
    let entry = &reader.fields()[0];
    (entry.name.clone(), entry.chunks.len())
}

fn clean_decode(name: &str) -> Vec<u64> {
    StoreReader::open(pristine())
        .expect("open")
        .decode_field(name)
        .expect("decode")
        .values()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // One corrupted chunk in every parity group — the worst damage that is
    // still fully recoverable. Every chunk is Repaired (values
    // bit-identical to the clean decode) and repair() restores the exact
    // pristine bytes.
    #[test]
    fn one_failure_per_group_is_fully_repaired(seed in any::<u64>()) {
        let (name, n_chunks) = field0();
        prop_assume!(n_chunks > WIDTH as usize);
        let mut rng = faultinject::Lcg::new(seed);
        let mut bytes = pristine().clone();
        let mut hit = Vec::new();
        for group_start in (0..n_chunks).step_by(WIDTH as usize) {
            let members = (n_chunks - group_start).min(WIDTH as usize);
            let victim = group_start + rng.below(members);
            faultinject::flip_data_chunk(&mut bytes, 0, victim);
            hit.push(victim);
        }

        let reader = StoreReader::open(&bytes)
            .expect("open")
            .with_read_policy(ReadPolicy::salvage());
        let (field, report) = reader
            .decode_field_with_report(&name)
            .expect("salvage decode");
        for d in report.repaired() {
            prop_assert_eq!(d.values_lost, 0);
        }
        let mut repaired: Vec<usize> = report.repaired().map(|d| d.chunk).collect();
        repaired.sort_unstable();
        prop_assert_eq!(&repaired, &hit, "every hit chunk must be Repaired");
        prop_assert_eq!(report.lost().count(), 0);
        prop_assert_eq!(report.total_values_lost(), 0);

        let clean = clean_decode(&name);
        for (v, c) in field.values().iter().zip(&clean) {
            prop_assert_eq!(v.to_bits(), *c, "repaired values must be bit-identical");
        }

        let outcome = scrub(&bytes).expect("scrub");
        prop_assert_eq!(outcome.unrecoverable(), 0);
        prop_assert_eq!(outcome.recoverable(), hit.len());

        let fixed = repair(&bytes, None).expect("repair");
        prop_assert!(fixed.lost.is_empty());
        prop_assert!(fixed.repaired.iter().all(|r| r.source == RepairSource::Parity));
        prop_assert_eq!(fixed.bytes.expect("output"), pristine().clone(),
            "repair must restore the pristine container byte for byte");
    }

    // Adjacent-pair damage: two consecutive chunks either share a parity
    // group (both Lost, repair refuses) or straddle a group boundary
    // (both Repaired, repair is byte-identical).
    #[test]
    fn adjacent_pair_damage_classifies_by_group_boundary(at in 0usize..64) {
        let (name, n_chunks) = field0();
        prop_assume!(n_chunks >= 2);
        let first = at % (n_chunks - 1);
        let same_group = first as u32 % WIDTH != WIDTH - 1;
        let mut bytes = pristine().clone();
        faultinject::flip_data_chunk(&mut bytes, 0, first);
        faultinject::flip_data_chunk(&mut bytes, 0, first + 1);

        let reader = StoreReader::open(&bytes)
            .expect("open")
            .with_read_policy(ReadPolicy::salvage());
        let (_, report) = reader
            .decode_field_with_report(&name)
            .expect("salvage decode");
        prop_assert_eq!(report.chunks.len(), 2);
        let outcome = repair(&bytes, None).expect("repair");
        if same_group {
            prop_assert!(report.chunks.iter().all(|d| d.status == DamageStatus::Lost),
                "two failures in one group must both be Lost");
            prop_assert!(outcome.bytes.is_none(), "repair must refuse");
            prop_assert_eq!(outcome.lost.len(), 2);
            prop_assert_eq!(scrub(&bytes).expect("scrub").unrecoverable(), 2);
            // A pristine replica rescues both, bit-exactly.
            let rescued = repair(&bytes, Some(pristine())).expect("repair w/ replica");
            prop_assert!(rescued.lost.is_empty());
            prop_assert!(rescued
                .repaired
                .iter()
                .any(|r| r.source == RepairSource::Replica));
            prop_assert_eq!(rescued.bytes.expect("output"), pristine().clone());
        } else {
            prop_assert!(report.chunks.iter().all(|d| d.status == DamageStatus::Repaired),
                "cross-boundary neighbors live in different groups");
            prop_assert_eq!(outcome.bytes.expect("output"), pristine().clone());
        }
    }

    // Parity-only damage: data reads stay clean (and bit-identical), the
    // report names the damaged group, and repair rebuilds the parity
    // section byte-identically from the intact data chunks.
    #[test]
    fn parity_damage_never_costs_data(group in 0usize..16) {
        let (name, n_chunks) = field0();
        let n_groups = n_chunks.div_ceil(WIDTH as usize);
        let group = group % n_groups;
        let mut bytes = pristine().clone();
        faultinject::flip_parity_chunk(&mut bytes, 0, group);

        // Strict full decode refuses: the store is not pristine.
        let strict = StoreReader::open(&bytes).expect("open");
        prop_assert!(strict.decode_field(&name).is_err());

        // Salvage decode: all data intact, damage confined to parity.
        let reader = StoreReader::open(&bytes)
            .expect("open")
            .with_read_policy(ReadPolicy::salvage());
        let (field, report) = reader
            .decode_field_with_report(&name)
            .expect("salvage decode");
        prop_assert!(report.chunks.is_empty(), "no data chunk may be reported");
        prop_assert_eq!(report.parity.len(), 1);
        prop_assert_eq!(report.parity[0].group, group);
        let clean = clean_decode(&name);
        for (v, c) in field.values().iter().zip(&clean) {
            prop_assert_eq!(v.to_bits(), *c);
        }

        // Scrub classifies it recoverable; repair regenerates the parity.
        let outcome = scrub(&bytes).expect("scrub");
        prop_assert_eq!(outcome.unrecoverable(), 0);
        prop_assert!(outcome.recoverable() >= 1);
        let fixed = repair(&bytes, None).expect("repair");
        prop_assert!(fixed.parity_rebuilt >= 1);
        prop_assert_eq!(fixed.bytes.expect("output"), pristine().clone());
    }
}

/// A whole parity group wiped out (every member + its parity chunk) is
/// beyond self-healing: salvage fills the gap with the requested fill
/// value, and only a replica brings the bytes back.
#[test]
fn whole_group_loss_fills_and_needs_a_replica() {
    let (name, n_chunks) = field0();
    assert!(n_chunks >= WIDTH as usize, "fixture too small");
    let mut bytes = pristine().clone();
    for c in 0..WIDTH as usize {
        faultinject::flip_data_chunk(&mut bytes, 0, c);
    }
    faultinject::flip_parity_chunk(&mut bytes, 0, 0);

    for fill in [SalvageFill::Nan, SalvageFill::Zero] {
        let reader = StoreReader::open(&bytes)
            .expect("open")
            .with_read_policy(ReadPolicy::Salvage { fill });
        let (field, report) = reader
            .decode_field_with_report(&name)
            .expect("salvage decode");
        assert_eq!(report.lost().count(), WIDTH as usize);
        assert_eq!(report.repaired().count(), 0);
        assert_eq!(report.fill, fill);
        assert!(report.total_values_lost() > 0);
        let filled = field
            .values()
            .iter()
            .filter(|v| match fill {
                SalvageFill::Nan => v.is_nan(),
                SalvageFill::Zero => v.to_bits() == 0,
            })
            .count();
        assert!(
            filled >= report.total_values_lost(),
            "every lost cell must carry the fill value"
        );
    }

    assert!(repair(&bytes, None).expect("repair").bytes.is_none());
    let rescued = repair(&bytes, Some(pristine())).expect("repair w/ replica");
    assert!(rescued.lost.is_empty());
    assert_eq!(rescued.bytes.expect("output"), pristine().clone());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // v4 tentpole property: for a random Reed–Solomon geometry (k, m),
    // any ≤ m failures in a group round-trip byte-identically through
    // salvage *and* repair; m + 1 failures degrade to Lost + fill exactly
    // like an overwhelmed v3 group — never silently wrong data.
    #[test]
    fn rs_round_trips_damage_up_to_the_shard_budget(
        k in 2u32..6,
        m in 1u32..4,
        seed in any::<u64>(),
    ) {
        let clean = write_fixture(Parity::Rs { data: k, parity: m });
        let reader = StoreReader::open(&clean).expect("open clean");
        let entry = &reader.fields()[0];
        let name = entry.name.clone();
        let n_chunks = entry.chunks.len();
        let clean_bits: Vec<u64> = reader
            .decode_field(&name)
            .expect("clean decode")
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect();

        // Damage `budget` distinct chunks of group 0 (a contiguous run at
        // a random start keeps them distinct within the group).
        let group0 = n_chunks.min(k as usize);
        let budget = (m as usize).min(group0);
        let mut rng = faultinject::Lcg::new(seed);
        let start = rng.below(group0);
        let victims: Vec<usize> = (0..budget).map(|i| (start + i) % group0).collect();
        let mut bytes = clean.clone();
        for &v in &victims {
            faultinject::flip_data_chunk(&mut bytes, 0, v);
        }

        let salvage = StoreReader::open(&bytes)
            .expect("open damaged")
            .with_read_policy(ReadPolicy::salvage());
        let (field, report) = salvage
            .decode_field_with_report(&name)
            .expect("salvage decode");
        prop_assert_eq!(report.chunks.len(), budget);
        prop_assert!(
            report.chunks.iter().all(|d| d.status == DamageStatus::Repaired),
            "≤ m failures must all be Repaired (k = {}, m = {})", k, m
        );
        prop_assert_eq!(report.total_values_lost(), 0);
        for (v, c) in field.values().iter().zip(&clean_bits) {
            prop_assert_eq!(v.to_bits(), *c, "repaired values must be bit-identical");
        }

        let fixed = repair(&bytes, None).expect("repair");
        prop_assert!(fixed.lost.is_empty());
        prop_assert!(fixed.repaired.iter().all(|r| r.source == RepairSource::Parity));
        prop_assert_eq!(fixed.bytes.expect("output"), clean.clone());

        // One failure past the budget: every damaged chunk in the group is
        // Lost (fill applied), and repair refuses to write output.
        if budget < group0 {
            let mut bytes = clean.clone();
            for i in 0..budget + 1 {
                faultinject::flip_data_chunk(&mut bytes, 0, (start + i) % group0);
            }
            let salvage = StoreReader::open(&bytes)
                .expect("open overwhelmed")
                .with_read_policy(ReadPolicy::salvage());
            let (field, report) = salvage
                .decode_field_with_report(&name)
                .expect("salvage decode");
            prop_assert_eq!(report.chunks.len(), budget + 1);
            prop_assert!(
                report.chunks.iter().all(|d| d.status == DamageStatus::Lost),
                "m + 1 failures must all be Lost, exactly as an overwhelmed v3 group"
            );
            prop_assert!(report.total_values_lost() > 0);
            prop_assert!(field.values().iter().any(|v| v.is_nan()), "fill must be applied");
            let refused = repair(&bytes, None).expect("repair");
            prop_assert!(refused.bytes.is_none(), "repair must refuse");
        }
    }

}

/// Crash consistency: a v4 write truncated at *any* byte boundary opens as
/// a typed error — `Torn` once enough bytes survive to prove a store was
/// being written — and never panics or decodes short.
#[test]
fn any_truncation_of_a_v4_store_reads_as_torn() {
    let clean = write_fixture(Parity::Rs { data: 4, parity: 2 });
    for cut in 0..clean.len() {
        let torn = faultinject::torn_at(&clean, cut);
        match StoreReader::open(&torn) {
            Err(StoreError::Torn) => assert!(
                cut >= 6,
                "cut {cut} too short to even carry magic + version"
            ),
            Err(_) => assert!(cut < 6, "cut {cut} must be Torn, not another error"),
            Ok(_) => panic!("cut {cut} of {} opened clean", clean.len()),
        }
    }
}

/// Two failures in one XOR group are beyond parity — but `repair_with` can
/// re-encode the lost chunks from the original dataset and restore the
/// store byte-for-byte.
#[test]
fn raw_dataset_rescues_a_group_beyond_xor_parity() {
    let ds = fixture_dataset();
    let fields: Vec<(&str, &AmrField)> = ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let clean = pristine().clone();
    let mut bytes = clean.clone();
    faultinject::flip_data_chunk(&mut bytes, 0, 0);
    faultinject::flip_data_chunk(&mut bytes, 0, 1);
    assert!(
        repair(&bytes, None).expect("repair").bytes.is_none(),
        "two failures in one XOR group must defeat parity alone"
    );

    let raw = RawSource::new(&fields);
    let rescued = repair_with(&bytes, None, Some(&raw)).expect("repair from raw");
    assert!(rescued.lost.is_empty());
    assert!(rescued
        .repaired
        .iter()
        .any(|r| r.source == RepairSource::Raw));
    assert_eq!(rescued.bytes.expect("output"), clean);
}

/// A replica from a different mesh (or different chunking) must be
/// rejected outright rather than splicing foreign bytes into the store.
#[test]
fn mismatched_replica_is_rejected() {
    let ds = datasets::blast2d(StorageMode::AllCells, Scale::Tiny);
    let fields: Vec<(&str, &AmrField)> = ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let other = StoreWriter::new(CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    })
    .write(&fields)
    .expect("write other")
    .bytes;

    let mut bytes = pristine().clone();
    faultinject::flip_data_chunk(&mut bytes, 0, 0);
    faultinject::flip_data_chunk(&mut bytes, 0, 1);
    assert!(
        repair(&bytes, Some(&other)).is_err(),
        "structurally different replica must be refused"
    );
}
