//! Kill-point atomicity matrix: for every injected crash offset during a
//! streaming pack, the on-disk state must be exactly one of
//!
//! 1. destination **absent** (it never existed and was never published),
//! 2. the **old file byte-intact** (the crash hit before the atomic
//!    rename), or
//! 3. **fully committed and scrub-clean** (the crash threshold was past
//!    the last byte).
//!
//! Never a readable-but-wrong store at the destination, and the torn
//! `.tmp` a crash strands is always an exact byte prefix of the true
//! container — re-running the pack heals it. `ENOSPC` aborts must be
//! cleaner still: typed, no temp file, destination untouched.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use zmesh::CompressionConfig;
use zmesh_amr::{datasets, AmrField, StorageMode};
use zmesh_store::faultinject::{FaultSink, FaultSpec};
use zmesh_store::{scrub, FileSink, Parity, StoreError, StoreReader, StoreWriter, StreamOptions};

const PARITIES: [Parity; 3] = [
    Parity::None,                      // v2
    Parity::Xor { width: 3 },          // v3
    Parity::Rs { data: 4, parity: 2 }, // v4 (commit record)
];

fn dataset() -> &'static datasets::Dataset {
    static DS: OnceLock<datasets::Dataset> = OnceLock::new();
    DS.get_or_init(|| datasets::blast2d(StorageMode::AllCells, datasets::Scale::Tiny))
}

fn fields(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
}

fn writer_for(parity: Parity) -> StoreWriter {
    StoreWriter::new(CompressionConfig::zmesh_default())
        .with_chunk_target_bytes(512)
        .with_parity(parity)
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zmesh_write_crash_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn tmp_of(dest: &Path) -> PathBuf {
    let mut s = dest.as_os_str().to_os_string();
    s.push(".tmp");
    PathBuf::from(s)
}

/// Crash offsets covering every structural region of a `total`-byte store:
/// the first bytes (header), a dense stride through data and parity, and
/// the hair around the trailer/commit record where torn-write bugs live.
fn crash_offsets(total: u64) -> Vec<u64> {
    let mut offsets = vec![0, 1, 5, 13];
    let step = (total / 16).max(1);
    offsets.extend((1..16).map(|i| i * step));
    offsets.extend([
        total.saturating_sub(33),
        total.saturating_sub(17),
        total.saturating_sub(16),
        total.saturating_sub(15),
        total.saturating_sub(8),
        total.saturating_sub(1),
        total, // past the last byte: the pack completes and commits
    ]);
    offsets.sort_unstable();
    offsets.dedup();
    offsets.retain(|&o| o <= total);
    offsets
}

#[test]
fn kill_point_matrix_never_leaves_a_readable_wrong_store() {
    let old_marker = b"previous store generation - must survive byte-intact".to_vec();
    for parity in PARITIES {
        let want = writer_for(parity)
            .write(&fields(dataset()))
            .expect("buffered reference")
            .bytes;
        let total = want.len() as u64;
        let writer = writer_for(parity); // one writer: recipe cache warm across the matrix
        let dir = workdir(&format!("matrix_v{}", parity.store_version()));
        for old in [None, Some(&old_marker)] {
            for kill in crash_offsets(total) {
                let dest = dir.join(format!("out_{kill}_{}.zms", old.is_some()));
                match old {
                    Some(bytes) => std::fs::write(&dest, bytes).expect("seed old store"),
                    None => {
                        let _ = std::fs::remove_file(&dest);
                    }
                }
                let file = FileSink::create(&dest).expect("create sink");
                let tmp = tmp_of(&dest);
                let mut sink = FaultSink::new(
                    file,
                    FaultSpec {
                        crash_at: Some(kill),
                        ..FaultSpec::default()
                    },
                );
                let result =
                    writer.write_to_sink(&fields(dataset()), &mut sink, &StreamOptions::default());
                if sink.stats().crashed {
                    // A killed process never runs its cleanup.
                    sink.inner_mut().preserve_tmp_on_drop();
                }
                let crashed = sink.stats().crashed;
                drop(sink);

                if kill >= total {
                    // Outcome 3: fully committed and scrub-clean.
                    assert!(!crashed, "kill past the end must not fire");
                    result.expect("pack must complete");
                    assert_eq!(
                        std::fs::read(&dest).expect("committed store"),
                        want,
                        "committed store must be byte-exact (parity {parity:?})"
                    );
                    assert!(
                        scrub(&std::fs::read(&dest).unwrap())
                            .expect("scrub")
                            .is_clean(),
                        "committed store must scrub clean"
                    );
                    assert!(!tmp.exists(), "commit must consume the temp file");
                } else {
                    // Outcomes 1 / 2: the publish never happened.
                    assert!(result.is_err(), "kill at {kill} must fail the pack");
                    match old {
                        None => assert!(
                            !dest.exists(),
                            "kill at {kill}: destination must stay absent (parity {parity:?})"
                        ),
                        Some(bytes) => assert_eq!(
                            &std::fs::read(&dest).expect("old store"),
                            bytes,
                            "kill at {kill}: old store must stay byte-intact (parity {parity:?})"
                        ),
                    }
                    // The stranded tmp is an exact prefix of the true
                    // container — torn, never wrong.
                    let torn = std::fs::read(&tmp).expect("crashed pack strands its tmp");
                    assert_eq!(
                        torn,
                        &want[..kill as usize],
                        "kill at {kill}: torn tmp must be an exact prefix (parity {parity:?})"
                    );
                    // And a torn prefix can never pass for a complete store.
                    assert!(
                        StoreReader::open(&torn).is_err(),
                        "kill at {kill}: torn prefix must not open (parity {parity:?})"
                    );
                    assert!(
                        scrub(&torn).is_err(),
                        "kill at {kill}: torn prefix must not scrub clean (parity {parity:?})"
                    );
                    std::fs::remove_file(&tmp).expect("clear tmp for next point");
                }
                let _ = std::fs::remove_file(&dest);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rerunning_a_pack_heals_a_stranded_tmp() {
    for parity in PARITIES {
        let want = writer_for(parity)
            .write(&fields(dataset()))
            .expect("buffered reference")
            .bytes;
        let writer = writer_for(parity);
        let dir = workdir(&format!("heal_v{}", parity.store_version()));
        let dest = dir.join("out.zms");
        for kill in [1u64, want.len() as u64 / 2, want.len() as u64 - 1] {
            let file = FileSink::create(&dest).expect("create sink");
            let mut sink = FaultSink::new(
                file,
                FaultSpec {
                    crash_at: Some(kill),
                    ..FaultSpec::default()
                },
            );
            let _ = writer.write_to_sink(&fields(dataset()), &mut sink, &StreamOptions::default());
            sink.inner_mut().preserve_tmp_on_drop();
            drop(sink);
            assert!(tmp_of(&dest).exists(), "precondition: stranded tmp");

            // The rerun truncates the stale tmp and publishes atomically.
            writer
                .write_streaming_to_path(&fields(dataset()), &dest, &StreamOptions::default())
                .expect("rerun pack");
            assert_eq!(std::fs::read(&dest).expect("healed store"), want);
            assert!(!tmp_of(&dest).exists(), "rerun must consume the tmp");
            let _ = std::fs::remove_file(&dest);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn enospc_aborts_typed_and_clean() {
    let old_marker = b"old bytes".to_vec();
    for parity in PARITIES {
        let want = writer_for(parity)
            .write(&fields(dataset()))
            .expect("buffered reference")
            .bytes;
        let total = want.len() as u64;
        let writer = writer_for(parity);
        let dir = workdir(&format!("enospc_v{}", parity.store_version()));
        for wall in [0, 20, total / 2, total - 1] {
            for old in [None, Some(&old_marker)] {
                let dest = dir.join(format!("out_{wall}_{}.zms", old.is_some()));
                match old {
                    Some(bytes) => std::fs::write(&dest, bytes).expect("seed old store"),
                    None => {
                        let _ = std::fs::remove_file(&dest);
                    }
                }
                let file = FileSink::create(&dest).expect("create sink");
                let tmp = tmp_of(&dest);
                let mut sink = FaultSink::new(
                    file,
                    FaultSpec {
                        enospc_at: Some(wall),
                        ..FaultSpec::default()
                    },
                );
                let err = writer
                    .write_to_sink(&fields(dataset()), &mut sink, &StreamOptions::default())
                    .expect_err("a wall below the store size must abort");
                assert!(
                    matches!(err, StoreError::NoSpace(_)),
                    "want typed NoSpace, got {err}"
                );
                drop(sink); // the scope guard runs: ENOSPC is not a crash
                assert!(
                    !tmp.exists(),
                    "ENOSPC abort must remove the temp file (wall {wall})"
                );
                match old {
                    None => assert!(!dest.exists(), "destination must stay absent"),
                    Some(bytes) => assert_eq!(
                        &std::fs::read(&dest).expect("old store"),
                        bytes,
                        "old store must stay byte-intact"
                    ),
                }
                let _ = std::fs::remove_file(&dest);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
