//! Ranged-read equivalence and traffic suite: every [`ByteSource`]
//! implementation must be observationally identical to the in-memory
//! slice reader, and the ranged reader must actually *be* ranged — a
//! small-bbox query on a file-backed store may only touch the footer and
//! the coalesced chunk ranges it selects, not the whole file.
//!
//! The contract under test:
//!
//! * **Acceptance:** a bbox query selecting ≤ 5 % of a field's chunks on a
//!   `FileSource`-opened store reads ≤ 15 % of the file's bytes (counted
//!   by `read_exact_at` traffic), and the decoded values are bit-identical
//!   to the in-memory reader's.
//! * **Equivalence:** across v2/v3/v4 stores, Strict/Salvage policies,
//!   chunk bit-flips, random corruption, and torn tails, `FileSource` and
//!   `MmapSource` readers return exactly the slice reader's results —
//!   the same `Ok` values bit for bit, the same `DamageReport`s, and the
//!   same `StoreError` variants on failure.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::StorageMode;
use zmesh_codecs::ErrorControl;
use zmesh_suite::prelude::*;
use zmesh_suite::store::{
    faultinject, ByteSource, FileSource, MmapSource, SliceSource, StoreReader,
};

fn config() -> CompressionConfig {
    CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    }
}

fn refs(ds: &datasets::Dataset) -> Vec<(&str, &AmrField)> {
    ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect()
}

fn write_fixture(ds: &datasets::Dataset, chunk_bytes: u32, parity: Parity) -> Vec<u8> {
    StoreWriter::with_options(
        config(),
        StoreWriteOptions {
            chunk_target_bytes: chunk_bytes,
            parity,
        },
    )
    .write(&refs(ds))
    .expect("write fixture")
    .bytes
}

/// Writes `bytes` to a fresh temp file and returns its path. Each call
/// gets a distinct name so concurrent tests never collide.
fn temp_store(bytes: &[u8]) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("zmesh_ranged_read_{}_{n}.zms", std::process::id()));
    std::fs::write(&path, bytes).expect("write temp store");
    path
}

/// Acceptance: footer-only open plus a corner query that selects ≤ 5 % of
/// the field's chunks must read ≤ 15 % of the file, byte-identically to
/// the in-memory reader.
#[test]
fn small_bbox_query_reads_small_fraction_of_file() {
    // A multi-field store: replicating the physical fields under distinct
    // names multiplies the payload while the tree structure (stored once
    // in the header) stays fixed, as in a real many-quantity dump. The
    // acceptance ratio is then governed by the footer + selected chunks,
    // not by the header amortization of a toy store.
    let ds = datasets::blast2d(StorageMode::AllCells, Scale::Small);
    let named: Vec<(String, &AmrField)> = (0..6)
        .flat_map(|rep| {
            ds.fields
                .iter()
                .map(move |(n, f)| (format!("{n}_{rep}"), f))
        })
        .collect();
    let fields: Vec<(&str, &AmrField)> = named.iter().map(|(n, f)| (n.as_str(), *f)).collect();
    let bytes = StoreWriter::with_options(
        config(),
        StoreWriteOptions {
            chunk_target_bytes: 1024,
            parity: Parity::Xor { width: 8 },
        },
    )
    .write(&fields)
    .expect("write fixture")
    .bytes;
    let path = temp_store(&bytes);

    let mem_reader = StoreReader::open(&bytes).expect("open in-memory");
    let side = mem_reader.tree().level_dims(mem_reader.tree().max_level())[0] as u32;
    let corner = (side / 16).max(1);
    let q = Query::bbox([0, 0, 0], [corner - 1, corner - 1, 0]);
    let mem = mem_reader.query("density_0", &q).expect("in-memory query");
    assert!(
        mem.chunks_total >= 20,
        "fixture too coarse: {} chunks",
        mem.chunks_total
    );
    assert!(
        mem.chunks_decoded * 20 <= mem.chunks_total,
        "query must select ≤ 5% of chunks, got {}/{}",
        mem.chunks_decoded,
        mem.chunks_total
    );

    let reader =
        StoreReader::open_source(FileSource::open(&path).expect("open file")).expect("open ranged");
    let ranged = reader.query("density_0", &q).expect("ranged query");

    // Result-identical to the in-memory reader, bit for bit.
    assert_eq!(ranged.storage_indices, mem.storage_indices);
    assert_eq!(ranged.values.len(), mem.values.len());
    for (a, b) in ranged.values.iter().zip(&mem.values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(ranged.chunks_decoded, mem.chunks_decoded);
    assert_eq!(ranged.chunks_total, mem.chunks_total);

    // Traffic: open (commit record + trailer + header + footer) plus the
    // coalesced chunk ranges — far below the file size.
    let total = bytes.len() as u64;
    let read = reader.bytes_read();
    assert!(
        read * 100 <= total * 15,
        "ranged query read {read} of {total} bytes (> 15%)"
    );
    assert!(reader.source().read_calls() > 0, "no positioned reads seen");

    let _ = std::fs::remove_file(path);
}

/// A full decode through the ranged reader pays the whole payload but
/// still matches the in-memory decode bit for bit — the prefetch pipeline
/// must not reorder, drop, or duplicate chunks.
#[test]
fn full_decode_matches_in_memory_bit_for_bit() {
    let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
    for parity in [
        Parity::None,
        Parity::Xor { width: 4 },
        Parity::Rs { data: 3, parity: 2 },
    ] {
        let bytes = write_fixture(&ds, 1024, parity);
        let path = temp_store(&bytes);
        let mem_reader = StoreReader::open(&bytes).expect("open in-memory");
        let ranged_reader = StoreReader::open_source(FileSource::open(&path).expect("open file"))
            .expect("open ranged");
        for name in mem_reader.field_names() {
            let mem = mem_reader.decode_field(name).expect("in-memory decode");
            let ranged = ranged_reader.decode_field(name).expect("ranged decode");
            assert_eq!(mem.len(), ranged.len(), "{name}: length mismatch");
            for (a, b) in mem.values().iter().zip(ranged.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: value mismatch");
            }
        }
        let _ = std::fs::remove_file(path);
    }
}

/// Fixture stores for the equivalence property: one per format version.
fn equivalence_fixtures() -> &'static [Vec<u8>; 3] {
    static FIXTURES: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let ds = datasets::front2d(StorageMode::AllCells, Scale::Tiny);
        [
            write_fixture(&ds, 1024, Parity::None),             // v2
            write_fixture(&ds, 1024, Parity::Xor { width: 4 }), // v3
            write_fixture(&ds, 1024, Parity::Rs { data: 3, parity: 2 }), // v4
        ]
    })
}

#[derive(Debug, Clone)]
enum Damage {
    None,
    FlipChunk { chunk: usize },
    RandomFlips { seed: u64, count: usize },
    Torn { frac: f64 },
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![
        Just(Damage::None),
        (0usize..64).prop_map(|chunk| Damage::FlipChunk { chunk }),
        (any::<u64>(), 1usize..4).prop_map(|(seed, count)| Damage::RandomFlips { seed, count }),
        (0.0f64..1.0).prop_map(|frac| Damage::Torn { frac }),
    ]
}

/// Everything observable about one field decode, in comparable form.
type DecodeObservation = Result<(Vec<u64>, zmesh_suite::store::DamageReport), StoreError>;

fn observe_decode<S: ByteSource>(reader: &StoreReader<S>, name: &str) -> DecodeObservation {
    reader
        .decode_field_with_report(name)
        .map(|(field, report)| {
            let bits = field.values().iter().map(|v| v.to_bits()).collect();
            (bits, report)
        })
}

/// Opens all three sources over the same damaged bytes and asserts the
/// slice reader's behavior is reproduced exactly: open errors, per-field
/// decode results and damage reports, and a region query.
fn assert_sources_equivalent(bytes: &[u8], salvage: bool) -> Result<(), TestCaseError> {
    let path = temp_store(bytes);
    let policy = if salvage {
        ReadPolicy::salvage()
    } else {
        ReadPolicy::Strict
    };

    let slice = StoreReader::open_source(SliceSource::new(bytes));
    let file = StoreReader::open_source(FileSource::open(&path).expect("open temp file"));
    let mmap = StoreReader::open_source(MmapSource::map(&path).expect("map temp file"));

    match (slice, file, mmap) {
        (Err(se), fi, mm) => {
            prop_assert_eq!(
                Some(&se),
                fi.as_ref().err(),
                "FileSource open error differs"
            );
            prop_assert_eq!(
                Some(&se),
                mm.as_ref().err(),
                "MmapSource open error differs"
            );
        }
        (Ok(slice), Ok(file), Ok(mmap)) => {
            let slice = slice.with_read_policy(policy);
            let file = file.with_read_policy(policy);
            let mmap = mmap.with_read_policy(policy);
            let names: Vec<String> = slice.field_names().iter().map(|s| s.to_string()).collect();
            for name in &names {
                let want = observe_decode(&slice, name);
                prop_assert_eq!(&want, &observe_decode(&file, name), "FileSource: {}", name);
                prop_assert_eq!(&want, &observe_decode(&mmap, name), "MmapSource: {}", name);
            }
            let side = slice.tree().level_dims(slice.tree().max_level())[0] as u32;
            let q = Query::bbox([0, 0, 0], [(side / 2).max(1) - 1, side - 1, 0]);
            fn observe_query<S: ByteSource>(
                reader: &StoreReader<S>,
                name: &str,
                q: &Query,
            ) -> Result<(Vec<u64>, Vec<u32>, usize, zmesh_suite::store::DamageReport), StoreError>
            {
                reader.query(name, q).map(|res| {
                    let bits: Vec<u64> = res.values.iter().map(|v| v.to_bits()).collect();
                    (bits, res.storage_indices, res.chunks_decoded, res.damage)
                })
            }
            let want = observe_query(&slice, &names[0], &q);
            let got_file = observe_query(&file, &names[0], &q);
            let got_mmap = observe_query(&mmap, &names[0], &q);
            prop_assert_eq!(&want, &got_file, "FileSource query differs");
            prop_assert_eq!(&want, &got_mmap, "MmapSource query differs");
        }
        (slice, file, mmap) => {
            let summary = (
                slice.as_ref().err().cloned(),
                file.as_ref().err().cloned(),
                mmap.as_ref().err().cloned(),
            );
            prop_assert!(false, "open outcomes disagree: {summary:?}");
        }
    }

    let _ = std::fs::remove_file(path);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Every (format version, damage pattern, read policy) triple behaves
    // identically through all three byte sources.
    #[test]
    fn sources_are_result_identical(
        version in 0usize..3,
        damage in damage_strategy(),
        salvage in any::<bool>(),
    ) {
        let pristine = &equivalence_fixtures()[version];
        let mut bytes = pristine.clone();
        match damage {
            Damage::None => {}
            Damage::FlipChunk { chunk } => {
                let (_, fields, _) = zmesh_suite::store::open_parts(&bytes).expect("open");
                let n = fields[0].chunks.len();
                faultinject::flip_data_chunk(&mut bytes, 0, chunk % n);
            }
            Damage::RandomFlips { seed, count } => {
                faultinject::random_flips(&mut bytes, seed, count);
            }
            Damage::Torn { frac } => {
                let cut = ((bytes.len() as f64) * frac) as usize;
                bytes = faultinject::torn_at(&bytes, cut.max(1));
            }
        }
        assert_sources_equivalent(&bytes, salvage)?;
    }
}
