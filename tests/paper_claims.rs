//! Shape checks for the paper's headline claims, run across the whole
//! preset suite (small scale):
//!
//! 1. reordering makes streams smoother on every dataset (F2);
//! 2. Hilbert is at least as smooth as Z-order on average (F2);
//! 3. SZ's ratio improves with zMesh on refinement-heavy data (F3);
//! 4. SZ benefits far more than ZFP (F3 vs F4);
//! 5. overhead amortizes across quantities (F8).

use std::sync::Arc;
use zmesh::linearize;
use zmesh_amr::datasets::{self, Scale};
use zmesh_amr::{analytic, StorageMode};
use zmesh_codecs::ErrorControl;
use zmesh_metrics::smoothness_improvement;
use zmesh_suite::prelude::*;

fn ratio(ds: &datasets::Dataset, policy: OrderingPolicy, codec: CodecKind) -> f64 {
    let fields: Vec<(&str, &zmesh_amr::AmrField)> =
        ds.fields.iter().map(|(n, f)| (n.as_str(), f)).collect();
    Pipeline::new(CompressionConfig {
        policy,
        codec,
        control: ErrorControl::ValueRangeRelative(1e-3),
    })
    .compress(&fields)
    .expect("compress")
    .stats
    .ratio()
}

#[test]
fn claim_1_and_2_smoothness_improves_everywhere() {
    let (mut z_mean, mut h_mean, mut n) = (0.0, 0.0, 0);
    for ds in datasets::all(StorageMode::AllCells, Scale::Small) {
        let field = ds.primary();
        let (base, _) = linearize(field, OrderingPolicy::LevelOrder);
        let (z, _) = linearize(field, OrderingPolicy::ZOrder);
        let (h, _) = linearize(field, OrderingPolicy::Hilbert);
        let zi = smoothness_improvement(&base, &z);
        let hi = smoothness_improvement(&base, &h);
        if ds.name == "kh2d" {
            // The documented adversarial case: Kelvin-Helmholtz vortex
            // sheets are strongly anisotropic and aligned with the
            // within-patch scan direction, so the row scan follows the
            // smooth along-sheet direction while any space-filling curve
            // must repeatedly cut across the sheets. Lock the finding in:
            // reordering does NOT help here (see EXPERIMENTS.md).
            assert!(
                hi < 5.0,
                "kh2d unexpectedly became zMesh-friendly ({hi:.1}%) — update the docs"
            );
            continue;
        }
        // Hilbert must win on every isotropic dataset; Z-order (the weaker
        // curve — it takes long diagonal jumps) may be ~neutral on isolated
        // small 3-D datasets but never clearly worse.
        assert!(zi > -5.0, "{}: z-order clearly rougher ({zi:.1}%)", ds.name);
        assert!(
            hi > 0.0,
            "{}: hilbert made the stream rougher ({hi:.1}%)",
            ds.name
        );
        z_mean += zi;
        h_mean += hi;
        n += 1;
    }
    z_mean /= n as f64;
    h_mean /= n as f64;
    // Paper: 67.9 % (Z) / 71.3 % (Hilbert). We require the qualitative
    // ordering and a substantial effect.
    assert!(
        h_mean >= z_mean,
        "hilbert ({h_mean:.1}) < z-order ({z_mean:.1})"
    );
    assert!(
        h_mean > 20.0,
        "mean hilbert improvement too small: {h_mean:.1}%"
    );
}

#[test]
fn claim_3_sz_gains_on_refinement_heavy_data() {
    for name in ["front2d", "blast2d", "diffuse2d"] {
        let ds = datasets::by_name(name, StorageMode::AllCells, Scale::Small).unwrap();
        let base = ratio(&ds, OrderingPolicy::LevelOrder, CodecKind::Sz);
        let h = ratio(&ds, OrderingPolicy::Hilbert, CodecKind::Sz);
        assert!(
            h > base * 1.02,
            "{name}: zMesh SZ gain too small ({base:.2} -> {h:.2})"
        );
    }
}

#[test]
fn claim_4_sz_benefits_more_than_zfp() {
    let (mut sz_gain, mut zfp_gain, mut n) = (0.0, 0.0, 0);
    for ds in datasets::all(StorageMode::AllCells, Scale::Small) {
        let sz = ratio(&ds, OrderingPolicy::Hilbert, CodecKind::Sz)
            / ratio(&ds, OrderingPolicy::LevelOrder, CodecKind::Sz);
        let zfp = ratio(&ds, OrderingPolicy::Hilbert, CodecKind::Zfp)
            / ratio(&ds, OrderingPolicy::LevelOrder, CodecKind::Zfp);
        sz_gain += sz;
        zfp_gain += zfp;
        n += 1;
    }
    sz_gain /= n as f64;
    zfp_gain /= n as f64;
    assert!(
        sz_gain > zfp_gain,
        "SZ mean gain factor {sz_gain:.3} must exceed ZFP's {zfp_gain:.3} (paper: 133.7% vs 16.5%)"
    );
    assert!(
        sz_gain > 1.05,
        "SZ mean gain factor too small: {sz_gain:.3}"
    );
}

#[test]
fn claim_5_recipe_cost_amortizes() {
    let ds = datasets::blast2d(StorageMode::AllCells, Scale::Small);
    let tree = Arc::clone(&ds.tree);
    let quantities: Vec<(String, zmesh_amr::AmrField)> = (0..8u64)
        .map(|q| {
            let f = analytic::multiscale(500 + q, 3);
            (
                format!("q{q}"),
                zmesh_amr::AmrField::sample(Arc::clone(&tree), StorageMode::AllCells, move |p| {
                    f(p)
                }),
            )
        })
        .collect();
    let config = CompressionConfig {
        policy: OrderingPolicy::Hilbert,
        codec: CodecKind::Sz,
        control: ErrorControl::ValueRangeRelative(1e-4),
    };
    let share = |nq: usize| {
        let fields: Vec<(&str, &zmesh_amr::AmrField)> = quantities[..nq]
            .iter()
            .map(|(n, f)| (n.as_str(), f))
            .collect();
        // Median of several runs to de-noise wall-clock timings.
        let mut shares: Vec<f64> = (0..5)
            .map(|_| {
                let c = Pipeline::new(config).compress(&fields).unwrap();
                c.stats.recipe_ns as f64
                    / (c.stats.recipe_ns + c.stats.reorder_ns + c.stats.encode_ns) as f64
            })
            .collect();
        shares.sort_by(f64::total_cmp);
        shares[2]
    };
    let one = share(1);
    let eight = share(8);
    assert!(
        eight < one,
        "recipe share must fall with more quantities: 1 -> {one:.3}, 8 -> {eight:.3}"
    );
}
