//! # zmesh-suite
//!
//! Meta-crate for the zMesh reproduction workspace. It re-exports every
//! workspace crate under one roof and provides a [`prelude`] so that the
//! examples and integration tests can `use zmesh_suite::prelude::*;` and get
//! the whole public surface.
//!
//! The individual crates are:
//!
//! * [`zmesh`] — the paper's contribution: AMR stream reordering with a
//!   re-generated restore recipe, plus the end-to-end compression pipeline.
//! * [`amr`] — the adaptive-mesh-refinement substrate (trees, fields,
//!   generators, mini-solvers, dataset presets).
//! * [`sfc`] — space-filling curves (Morton, Hilbert, row-major).
//! * [`bitstream`] — bit-granular I/O used by the codecs.
//! * [`codecs`] — SZ-like and ZFP-like error-bounded lossy compressors and
//!   the lossless substrate (Huffman, range coder, Gorilla, RLE, LZSS).
//! * [`metrics`] — smoothness, distortion, and ratio metrics.
//! * [`store`] — the chunked, indexed v2/v3/v4 container with
//!   random-access region queries, a recipe cache, XOR or Reed–Solomon
//!   parity self-healing (scrub/repair/repair-from-raw), and a
//!   crash-consistent writer (atomic persist + commit record).

pub use zmesh;
pub use zmesh_amr as amr;
pub use zmesh_bitstream as bitstream;
pub use zmesh_codecs as codecs;
pub use zmesh_metrics as metrics;
pub use zmesh_sfc as sfc;
pub use zmesh_store as store;

/// One-stop import for examples and tests.
pub mod prelude {
    pub use zmesh::{CompressionConfig, GroupingMode, OrderingPolicy, Pipeline, RestoreRecipe};
    pub use zmesh_amr::{datasets, AmrField, AmrTree, Dim, FieldFn, RefineCriterion, TreeBuilder};
    pub use zmesh_codecs::{Codec, CodecKind, CodecParams};
    pub use zmesh_metrics::{compression_ratio, max_abs_error, psnr, total_variation};
    pub use zmesh_sfc::{Curve, CurveKind};
    pub use zmesh_store::{
        persist_store, repair, repair_with, scrub, Parity, PipelineStoreExt, Query, RawSource,
        ReadPolicy, RecipeCache, RepairOutcome, SalvageFill, ScrubReport, StoreError, StoreReader,
        StoreWriteOptions, StoreWriter,
    };
}
